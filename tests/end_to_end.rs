//! Cross-crate integration tests: the full PANDA pipeline.

use panda::core::{
    audit_pglp, GraphCalibratedLaplace, GraphExponential, LocationPolicyGraph, Mechanism,
    PlanarIsotropic,
};
use panda::epidemic::{simulate_outbreak, OutbreakConfig};
use panda::geo::GridMap;
use panda::mobility::geolife_like::{beijing_grid, generate_geolife_like, GeoLifeLikeConfig};
use panda::mobility::Timestamp;
use panda::surveillance::analysis::compare_r0;
use panda::surveillance::monitoring::monitoring_utility;
use panda::surveillance::tracing::dynamic_trace;
use panda::surveillance::{
    Client, ClientConfig, ConsentRule, ContactRule, PolicyConfigurator, Server,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_population(seed: u64) -> (GridMap, panda::mobility::TrajectoryDb) {
    let grid = beijing_grid(12, 500.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let db = generate_geolife_like(
        &mut rng,
        &grid,
        &GeoLifeLikeConfig {
            n_users: 40,
            days: 3,
            ..Default::default()
        },
    );
    (grid, db)
}

fn make_clients(
    truth: &panda::mobility::TrajectoryDb,
    policy: &LocationPolicyGraph,
    eps: f64,
) -> Vec<Client> {
    truth
        .trajectories()
        .iter()
        .map(|tr| {
            let mut c = Client::new(
                tr.user,
                ClientConfig {
                    retention: 400,
                    budget: 500.0,
                    consent: ConsentRule::AlwaysAccept,
                },
                policy.clone(),
                Box::new(GraphExponential),
                eps,
            );
            for (t, &cell) in tr.cells.iter().enumerate() {
                c.observe(t as Timestamp, cell);
            }
            c
        })
        .collect()
}

#[test]
fn full_reporting_round_preserves_components() {
    let (grid, truth) = small_population(1);
    let policy = LocationPolicyGraph::partition(grid.clone(), 3, 3);
    let mut clients = make_clients(&truth, &policy, 1.0);
    let server = Server::new(grid);
    let mut rng = StdRng::seed_from_u64(2);
    for c in clients.iter_mut() {
        for t in 0..truth.horizon() {
            server.receive(c.report(t, &mut rng).expect("report"));
        }
    }
    assert_eq!(
        server.n_received(),
        truth.n_users() * truth.horizon() as usize
    );
    // Every stored report is in the same policy component as the truth.
    for tr in truth.trajectories() {
        for t in 0..truth.horizon() {
            let reported = server.reported_cell(tr.user, t).unwrap();
            assert!(policy.same_component(tr.at(t).unwrap(), reported));
        }
    }
}

#[test]
fn monitoring_utility_improves_with_epsilon_and_policy_coarseness() {
    let (grid, truth) = small_population(3);
    let run = |policy: &LocationPolicyGraph, eps: f64| {
        let mut rng = StdRng::seed_from_u64(4);
        let reported =
            truth.map_cells(|_, _, c| GraphExponential.perturb(policy, eps, c, &mut rng).unwrap());
        monitoring_utility(&truth, &reported, 4).mean_distance
    };
    let ga = LocationPolicyGraph::partition(grid.clone(), 4, 4);
    let g1 = LocationPolicyGraph::g1_geo_indistinguishability(grid.clone());
    // Error decreases in eps for a fixed policy.
    assert!(run(&g1, 4.0) < run(&g1, 0.25));
    // At low eps, the coarse partition bounds error by the block diameter
    // while G1 wanders across the grid.
    assert!(run(&ga, 0.25) < run(&g1, 0.25));
}

#[test]
fn r0_estimate_degrades_gracefully() {
    let (grid, truth) = small_population(5);
    let policy = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let mut rng = StdRng::seed_from_u64(6);
    let reported_hi =
        truth.map_cells(|_, _, c| GraphExponential.perturb(&policy, 8.0, c, &mut rng).unwrap());
    let reported_lo =
        truth.map_cells(|_, _, c| GraphExponential.perturb(&policy, 0.2, c, &mut rng).unwrap());
    let hi = compare_r0(&truth, &reported_hi, 0.35, 4.0);
    let lo = compare_r0(&truth, &reported_lo, 0.35, 4.0);
    assert!(hi.r0_true > 0.0);
    assert!(
        hi.abs_error <= lo.abs_error + 1e-9,
        "higher eps must not estimate worse: {} vs {}",
        hi.abs_error,
        lo.abs_error
    );
}

#[test]
fn outbreak_plus_dynamic_tracing_end_to_end() {
    let (grid, truth) = small_population(7);
    let mut rng = StdRng::seed_from_u64(8);
    let outbreak = simulate_outbreak(
        &mut rng,
        &truth,
        &OutbreakConfig {
            n_seeds: 3,
            diagnosis_delay: 12,
            p_transmit: 0.5,
            ..Default::default()
        },
    );
    let Some(&(patient, t_diag)) = outbreak.diagnoses.first() else {
        panic!("seeded outbreak must produce a diagnosis");
    };
    let configurator = PolicyConfigurator::new(grid.clone(), 4, 2);
    let mut clients = make_clients(&truth, &configurator.for_analysis(), 1.0);
    let server = Server::new(grid);
    let outcome = dynamic_trace(
        &mut clients,
        &server,
        &configurator,
        &truth,
        patient,
        (0, t_diag),
        4.0,
        ContactRule::default(),
        &mut rng,
    );
    // The dynamic protocol discloses infected-cell visits exactly, so every
    // ground-truth contact is recovered.
    assert_eq!(outcome.recall, 1.0, "outcome: {outcome:?}");
    assert!(server.n_resends() > 0);
    assert_eq!(server.diagnoses().len(), 1);
}

#[test]
fn all_mechanisms_pass_monte_carlo_audit_on_gc_policy() {
    // The contact-tracing policy (isolated cells + partition remainder) is
    // the structurally trickiest preset; audit all three PGLP mechanisms.
    let grid = GridMap::new(4, 4, 250.0);
    let base = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let gc = base.with_isolated(&[grid.cell(1, 1)]);
    let eps = 1.0;
    let report = audit_pglp(&GraphExponential, &gc, eps).unwrap();
    assert!(report.exact && report.satisfied, "{report:?}");
    let opts = panda::core::privacy::AuditOptions {
        mc_samples: 40_000,
        mc_slack: 1.5,
        mc_min_count: 200,
        seed: 11,
    };
    for mech in [
        Box::new(GraphCalibratedLaplace) as Box<dyn Mechanism>,
        Box::new(PlanarIsotropic::new()),
    ] {
        let report = panda::core::privacy::audit_pglp_with(mech.as_ref(), &gc, eps, &opts).unwrap();
        assert!(report.satisfied, "{}: {report:?}", mech.name());
    }
}

#[test]
fn budget_exhaustion_halts_release_pipeline() {
    let (grid, truth) = small_population(9);
    let policy = LocationPolicyGraph::partition(grid.clone(), 3, 3);
    let mut client = Client::new(
        truth.trajectories()[0].user,
        ClientConfig {
            retention: 400,
            budget: 2.0,
            consent: ConsentRule::AlwaysAccept,
        },
        policy,
        Box::new(GraphExponential),
        1.0,
    );
    for (t, &cell) in truth.trajectories()[0].cells.iter().enumerate() {
        client.observe(t as Timestamp, cell);
    }
    let mut rng = StdRng::seed_from_u64(10);
    let mut successes = 0;
    for t in 0..10 {
        if client.report(t, &mut rng).is_ok() {
            successes += 1;
        }
    }
    assert_eq!(successes, 2, "budget of 2.0 at eps 1.0 allows 2 releases");
}
