//! Failure injection and adversarial robustness tests.
//!
//! The privacy auditor must *catch* broken mechanisms, the protocol must
//! tolerate malformed traffic, and accounting must fail closed.

use panda::core::privacy::{audit_pglp_with, AuditOptions};
use panda::core::{GraphExponential, LocationPolicyGraph, Mechanism, PglpError};
use panda::geo::{CellId, GridMap};
use panda::mobility::UserId;
use panda::surveillance::{Client, ClientConfig, ConsentRule, LocationReport, Server};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deliberately broken "mechanism": releases the truth with probability
/// 0.9, otherwise a uniform component cell. Violates Def. 2.4 at small ε.
struct LeakyMechanism;

impl Mechanism for LeakyMechanism {
    fn name(&self) -> &'static str {
        "leaky"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        _eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        let cells = policy.component_cells(true_loc);
        if rng.gen_bool(0.9) {
            Ok(true_loc)
        } else {
            Ok(cells[(rng.next_u64() % cells.len() as u64) as usize])
        }
    }
}

#[test]
fn auditor_catches_leaky_mechanism() {
    let policy = LocationPolicyGraph::partition(GridMap::new(4, 2, 100.0), 2, 2);
    let opts = AuditOptions {
        mc_samples: 40_000,
        mc_slack: 1.3,
        mc_min_count: 200,
        seed: 1,
    };
    // At eps = 0.5, releasing the truth 90% of the time gives edge ratios
    // around 0.9/0.033 ≈ 27 ≫ e^0.5 ≈ 1.65: the audit must fail.
    let report = audit_pglp_with(&LeakyMechanism, &policy, 0.5, &opts).unwrap();
    assert!(
        !report.satisfied,
        "auditor must reject the leaky mechanism: {report:?}"
    );
    assert!(report.max_log_ratio > 1.0);
}

#[test]
fn auditor_accepts_honest_mechanism_same_settings() {
    // Control for the test above: same audit options, honest mechanism.
    let policy = LocationPolicyGraph::partition(GridMap::new(4, 2, 100.0), 2, 2);
    let report = panda::core::audit_pglp(&GraphExponential, &policy, 0.5).unwrap();
    assert!(report.satisfied);
}

#[test]
fn server_tolerates_duplicate_and_out_of_order_reports() {
    let grid = GridMap::new(4, 4, 100.0);
    let server = Server::new(grid);
    let mk = |epoch, cell: u32, resend| LocationReport {
        user: UserId(1),
        epoch,
        cell: CellId(cell),
        resend,
    };
    // Out of order, duplicated, then superseded.
    server.receive(mk(5, 3, false));
    server.receive(mk(2, 7, false));
    server.receive(mk(5, 3, false)); // exact duplicate
    server.receive(mk(5, 9, true)); // re-send supersedes
    assert_eq!(server.reported_cell(UserId(1), 5), Some(CellId(9)));
    assert_eq!(server.reported_cell(UserId(1), 2), Some(CellId(7)));
    assert_eq!(server.n_received(), 4);
    // The dense view holds the superseded value at epoch 5.
    let db = server.reported_db(6);
    assert_eq!(db.cell_of(UserId(1), 5), Some(CellId(9)));
}

#[test]
fn client_rejects_foreign_cells_at_report_time() {
    // The client's policy lives on a 4x4 grid; an observation outside the
    // domain must surface as LocationOutOfDomain, not corrupt state.
    let grid = GridMap::new(4, 4, 100.0);
    let mut client = Client::new(
        UserId(0),
        ClientConfig {
            retention: 10,
            budget: 10.0,
            consent: ConsentRule::AlwaysAccept,
        },
        LocationPolicyGraph::partition(grid, 2, 2),
        Box::new(GraphExponential),
        1.0,
    );
    client.observe(0, CellId(99)); // foreign cell id
    let mut rng = StdRng::seed_from_u64(1);
    let err = client.report(0, &mut rng).unwrap_err();
    assert!(matches!(err, PglpError::LocationOutOfDomain(CellId(99))));
    // Budget untouched by the failed release.
    assert!((client.budget_remaining() - 10.0).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "epoch order")]
fn client_rejects_time_travel_observations() {
    let grid = GridMap::new(4, 4, 100.0);
    let mut client = Client::new(
        UserId(0),
        ClientConfig::default(),
        LocationPolicyGraph::isolated(grid),
        Box::new(GraphExponential),
        1.0,
    );
    client.observe(5, CellId(0));
    client.observe(3, CellId(1)); // must panic in debug builds
}

#[test]
fn mechanisms_fail_closed_on_invalid_epsilon() {
    let policy = LocationPolicyGraph::partition(GridMap::new(4, 4, 100.0), 2, 2);
    let mut rng = StdRng::seed_from_u64(2);
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let result = GraphExponential.perturb(&policy, bad, CellId(0), &mut rng);
        assert!(
            matches!(result, Err(PglpError::InvalidEpsilon(_))),
            "eps {bad} must be rejected"
        );
    }
}

#[test]
fn posterior_survives_model_mismatch() {
    // Attacker models GEM but observes graph-Laplace releases: posteriors
    // must remain valid distributions (smoothing prevents zero evidence).
    use panda::attack::{posterior, LikelihoodModel, Prior};
    use panda::core::GraphCalibratedLaplace;
    let grid = GridMap::new(4, 4, 100.0);
    let policy = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let like = LikelihoodModel::build(&GraphExponential, &policy, 1.0, 0).unwrap();
    let prior = Prior::uniform(&grid);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..50 {
        let truth = CellId(rng.gen_range(0..16));
        let z = GraphCalibratedLaplace
            .perturb(&policy, 1.0, truth, &mut rng)
            .unwrap();
        let post = posterior(&prior, &like, z).expect("posterior must exist");
        let total: f64 = post.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(post.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

#[test]
fn consent_refusal_is_not_silent_downgrade() {
    // A refused assignment must leave the previous (stronger) policy in
    // force rather than silently switching.
    use panda::surveillance::PolicyAssignment;
    let grid = GridMap::new(4, 4, 100.0);
    let strong = LocationPolicyGraph::complete(grid.clone());
    let mut client = Client::new(
        UserId(0),
        ClientConfig {
            retention: 10,
            budget: 10.0,
            consent: ConsentRule::MinDensity(0.5),
        },
        strong,
        Box::new(GraphExponential),
        1.0,
    );
    client.observe(0, CellId(5));
    let weak = PolicyAssignment {
        user: UserId(0),
        policy: LocationPolicyGraph::isolated(grid),
        eps_per_epoch: 1.0,
        effective_from: 0,
    };
    assert!(!client.apply_assignment(weak));
    let mut rng = StdRng::seed_from_u64(4);
    let report = client.report(0, &mut rng).unwrap();
    // Under the retained complete policy the release is perturbed, not the
    // exact cell the refused isolated policy would have produced...
    // (statistically: over several trials at eps=1 on 16 cells, at least
    // one release differs from the truth).
    let mut any_different = report.cell != CellId(5);
    for t in 1..6 {
        client.observe(t, CellId(5));
        if client.report(t, &mut rng).unwrap().cell != CellId(5) {
            any_different = true;
        }
    }
    assert!(any_different, "strong policy must still be perturbing");
}
