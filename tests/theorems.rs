//! Executable checks of the paper's formal claims (§2): Lemma 2.1,
//! Theorem 2.1 (PGLP ⇒ Geo-Indistinguishability on G1) and Theorem 2.2
//! (PGLP ⇒ δ-Location Set Privacy on G2).

use panda::core::privacy::{
    audit_geo_indistinguishability, audit_lemma21, audit_pglp, AuditOptions,
};
use panda::core::{GraphExponential, LocationPolicyGraph};
use panda::geo::{CellId, GridMap};

fn grid() -> GridMap {
    GridMap::new(6, 6, 100.0)
}

#[test]
fn lemma_2_1_infinite_neighbors_scale_with_distance() {
    let policy = LocationPolicyGraph::grid4(grid());
    let g = policy.grid().clone();
    // Pairs at increasing d_G.
    let pairs: Vec<(CellId, CellId)> = vec![
        (g.cell(0, 0), g.cell(1, 0)), // d=1
        (g.cell(0, 0), g.cell(3, 0)), // d=3
        (g.cell(0, 0), g.cell(5, 5)), // d=10
    ];
    let report = audit_lemma21(
        &GraphExponential,
        &policy,
        0.6,
        &pairs,
        &AuditOptions::default(),
    )
    .unwrap();
    assert!(report.satisfied, "{report:?}");
    assert!(report.exact);
    assert_eq!(report.pairs_checked, 3);
}

#[test]
fn lemma_2_1_disconnected_pairs_are_unconstrained() {
    // In a partition policy, cross-block pairs have d_G = ∞ — the audit
    // must simply skip them (no constraint to violate).
    let policy = LocationPolicyGraph::partition(grid(), 3, 3);
    let g = policy.grid().clone();
    let pairs = vec![(g.cell(0, 0), g.cell(5, 5))];
    let report = audit_lemma21(
        &GraphExponential,
        &policy,
        0.6,
        &pairs,
        &AuditOptions::default(),
    )
    .unwrap();
    assert_eq!(report.pairs_checked, 0);
    assert!(report.satisfied);
}

#[test]
fn theorem_2_1_g1_policy_implies_geo_indistinguishability() {
    // {ε, G1}-location privacy ⇒ ε-geo-indistinguishability, because the
    // G1 graph distance (Chebyshev) never exceeds Euclidean distance in
    // cell units. Verified exhaustively on all same-component pairs.
    let policy = LocationPolicyGraph::g1_geo_indistinguishability(grid());
    let cells: Vec<CellId> = policy.grid().cells().collect();
    for eps in [0.5, 1.0, 2.0] {
        let report = audit_geo_indistinguishability(
            &GraphExponential,
            &policy,
            eps,
            &cells,
            &AuditOptions::default(),
        )
        .unwrap();
        assert!(report.satisfied, "eps {eps}: {report:?}");
        assert!(report.exact);
        assert_eq!(report.pairs_checked, (36 * 35) / 2);
    }
}

#[test]
fn theorem_2_1_distance_premise_holds() {
    // The proof hinges on d_G1 ≤ d_E (cell units): check it for all pairs.
    let policy = LocationPolicyGraph::g1_geo_indistinguishability(grid());
    let g = policy.grid().clone();
    for a in g.cells() {
        for b in g.cells() {
            let d_g = policy.distance(a, b).expect("G1 is connected") as f64;
            let d_e = g.distance(a, b) / g.cell_size();
            assert!(
                d_g <= d_e + 1e-9,
                "premise violated for {a},{b}: d_G {d_g} > d_E {d_e}"
            );
        }
    }
}

#[test]
fn theorem_2_2_g2_policy_gives_location_set_privacy() {
    // δ-location set privacy = ε-indistinguishability between ANY two
    // members of the set (complete graph ⇒ every pair is an edge, so the
    // standard PGLP audit covers exactly the required pairs).
    let g = grid();
    let delta_set: Vec<CellId> = vec![
        g.cell(1, 1),
        g.cell(2, 1),
        g.cell(1, 2),
        g.cell(2, 2),
        g.cell(3, 3),
    ];
    let policy = LocationPolicyGraph::g2_location_set(g.clone(), &delta_set).unwrap();
    for eps in [0.5, 1.0, 2.0] {
        let report = audit_pglp(&GraphExponential, &policy, eps).unwrap();
        assert!(report.satisfied, "eps {eps}: {report:?}");
        // Every pair in the set is a 1-neighbour: the audit checked both
        // directions of each of the C(5,2) edges.
        assert_eq!(report.pairs_checked, 5 * 4);
    }
    // Cells outside the δ-set are isolated: released exactly.
    assert!(policy.is_isolated_cell(g.cell(0, 5)));
}

#[test]
fn theorem_2_2_uniformity_inside_small_set_at_tiny_eps() {
    // As ε → 0 the release inside the δ-set approaches uniform — full
    // plausible deniability across the set.
    use panda::core::Mechanism;
    let g = grid();
    let set: Vec<CellId> = vec![g.cell(0, 0), g.cell(5, 0), g.cell(0, 5)];
    let policy = LocationPolicyGraph::g2_location_set(g, &set).unwrap();
    let dist = GraphExponential
        .output_distribution(&policy, 1e-6, set[0])
        .unwrap();
    for (_, p) in dist {
        assert!((p - 1.0 / 3.0).abs() < 1e-3, "p = {p}");
    }
}
