//! # PANDA — Policy-aware Location Privacy for Epidemic Surveillance
//!
//! A from-scratch Rust reproduction of *PANDA: Policy-aware Location
//! Privacy for Epidemic Surveillance* (Cao, Takagi, Xiao, Xiong,
//! Yoshikawa — PVLDB 12(12), VLDB 2020 demo) and the PGLP framework it
//! implements.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geo`] | `panda-geo` | grids, hulls, polygon sampling, 2×2 algebra |
//! | [`graph`] | `panda-graph` | policy-graph substrate: BFS, components, generators |
//! | [`core`] | `panda-core` | PGLP: policies, mechanisms, audits, budgets, repair |
//! | [`mobility`] | `panda-mobility` | GeoLife-like / Gowalla-like synthetic data |
//! | [`epidemic`] | `panda-epidemic` | SEIR, agent-based outbreaks, R0 estimation |
//! | [`attack`] | `panda-attack` | Bayesian inference attacks, empirical privacy |
//! | [`surveillance`] | `panda-surveillance` | clients, server, policy config, the three apps |
//! | [`net`] | `panda-net` | framed wire protocol, TCP ingest gateway, client SDK |
//! | [`obs`] | `panda-obs` | lock-free metrics registry, latency histograms, stats plane |
//! | [`check`] | `panda-check` | workspace lint + rank-ordered deadlock-checked locks |
//!
//! ## Quickstart
//!
//! ```
//! use panda::core::{GraphExponential, LocationPolicyGraph, Mechanism};
//! use panda::geo::GridMap;
//! use rand::SeedableRng;
//!
//! // An 8×8 city grid with 500 m cells and the paper's G1 policy.
//! let grid = GridMap::new(8, 8, 500.0);
//! let policy = LocationPolicyGraph::g1_geo_indistinguishability(grid);
//!
//! // Release a perturbed location under {ε, G1}-location privacy.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let true_loc = policy.grid().cell(3, 4);
//! let released = GraphExponential
//!     .perturb(&policy, 1.0, true_loc, &mut rng)
//!     .unwrap();
//! assert!(policy.grid().contains(released));
//!
//! // And audit the guarantee exactly (Def. 2.4 on every policy edge):
//! let report = panda::core::audit_pglp(&GraphExponential, &policy, 1.0).unwrap();
//! assert!(report.satisfied && report.exact);
//! ```

#![forbid(unsafe_code)]

pub use panda_attack as attack;
pub use panda_check as check;
pub use panda_core as core;
pub use panda_epidemic as epidemic;
pub use panda_geo as geo;
pub use panda_graph as graph;
pub use panda_mobility as mobility;
pub use panda_net as net;
pub use panda_obs as obs;
pub use panda_surveillance as surveillance;
