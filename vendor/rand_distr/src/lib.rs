//! Offline subset of `rand_distr`.
//!
//! The workspace samples its privacy-critical distributions from first
//! principles in `panda-core::mech::noise`; this crate exists so the
//! workspace-level dependency pin stays meaningful and common generic
//! distributions are available to future experiment code.

#![warn(missing_docs)]

pub use rand::distributions::{Distribution, Standard, Uniform};
use rand::RngCore;

/// Normal (Gaussian) distribution, sampled via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err("Normal: std_dev must be finite and non-negative")
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        use rand::Rng as _;
        // Box–Muller; u ∈ (0, 1] avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        let v: f64 = rng.gen();
        let r = (-2.0 * u.ln()).sqrt();
        self.mean + self.std_dev * r * (std::f64::consts::TAU * v).cos()
    }
}

/// Exponential distribution with the given rate λ.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// An exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Result<Self, &'static str> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err("Exp: lambda must be positive and finite")
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        use rand::Rng as _;
        -(1.0 - rng.gen::<f64>()).ln() / self.lambda
    }
}

/// Poisson distribution with the given mean λ, sampled as `f64` counts
/// (matching upstream `rand_distr::Poisson`).
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// A Poisson distribution with mean `lambda`.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Result<Self, &'static str> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Poisson { lambda })
        } else {
            Err("Poisson: lambda must be positive and finite")
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        use rand::Rng as _;
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method: exact, O(λ) draws.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        }
        // Large λ: normal approximation with continuity correction — the
        // regime where Knuth's method degrades and the approximation error
        // (O(1/√λ)) is already below simulation noise.
        let normal = Normal::new(self.lambda, self.lambda.sqrt()).expect("λ validated");
        normal.sample(rng).round().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.sample(d)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Exp::new(2.0).unwrap();
        let n = 100_000;
        let mean = (0..n).map(|_| rng.sample(d)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_moments_small_and_large_lambda() {
        let n = 100_000;
        for lambda in [0.3, 4.0, 80.0] {
            let mut rng = SmallRng::seed_from_u64(3);
            let d = Poisson::new(lambda).unwrap();
            let xs: Vec<f64> = (0..n).map(|_| rng.sample(d)).collect();
            assert!(xs.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            // Poisson: mean = var = λ.
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "λ {lambda}: mean {mean}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda.max(1.0),
                "λ {lambda}: var {var}"
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }
}
