//! Offline marker-trait subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so they
//! are serialization-ready, but nothing in-tree performs serialization yet
//! (no `serde_json` and no wire format). Since the build environment has no
//! crates.io access, this vendored stand-in keeps the derive surface
//! compiling: the traits are markers and the derive macros emit empty impls.
//!
//! When a real transport lands, replace this crate (and `serde_derive`) with
//! the upstream ones in `[workspace.dependencies]`; no call-site changes.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types with a stable serialized form.
pub trait Serialize {}

/// Marker for types reconstructible from a serialized form.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
