//! Derive macros emitting empty impls of the vendored `serde` marker traits.
//!
//! Token-level parsing only (no `syn`/`quote` available offline): the macro
//! skips attributes and visibility, reads the `struct`/`enum` name and any
//! generic parameter list, and emits
//! `impl<...> serde::Serialize for Name<...> {}` (resp. `Deserialize`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    let impl_generics = target.generics_with_bounds();
    let type_args = target.generic_args();
    format!(
        "impl{impl_generics} serde::Serialize for {}{type_args} {{}}",
        target.name
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    // Splice the 'de lifetime in front of any existing parameters.
    let impl_generics = match target.params_with_bounds.as_deref() {
        None | Some("") => "<'de>".to_string(),
        Some(params) => format!("<'de, {params}>"),
    };
    let type_args = target.generic_args();
    format!(
        "impl{impl_generics} serde::Deserialize<'de> for {}{type_args} {{}}",
        target.name
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

struct Target {
    name: String,
    /// Raw generic parameter list (with bounds), without the angle brackets.
    params_with_bounds: Option<String>,
    /// Parameter names only, for the type position.
    param_names: Vec<String>,
}

impl Target {
    fn generics_with_bounds(&self) -> String {
        match self.params_with_bounds.as_deref() {
            None | Some("") => String::new(),
            Some(p) => format!("<{p}>"),
        }
    }

    fn generic_args(&self) -> String {
        if self.param_names.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.param_names.join(", "))
        }
    }
}

fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (#[...]) and visibility (pub, pub(...)).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" || kw.to_string() == "enum" => {
            i += 1;
        }
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    // Optional generic parameter list: collect raw tokens between < and >.
    let mut params_with_bounds = None;
    let mut param_names = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut raw = String::new();
            let mut current = Vec::new();
            let mut at_param_start = true;
            let mut in_bounds = false;
            while depth > 0 {
                let tt = tokens
                    .get(i)
                    .unwrap_or_else(|| panic!("serde derive: unclosed generics on {name}"));
                i += 1;
                if let TokenTree::Punct(p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => {
                            if !current.is_empty() {
                                param_names.push(current.join(""));
                            }
                            current.clear();
                            at_param_start = true;
                            in_bounds = false;
                            raw.push(',');
                            continue;
                        }
                        ':' if depth == 1 => in_bounds = true,
                        '\'' if at_param_start => current.push("'".to_string()),
                        _ => {}
                    }
                } else if let TokenTree::Ident(id) = tt {
                    if !in_bounds && (at_param_start || current.last().is_some_and(|s| s == "'")) {
                        current.push(id.to_string());
                        at_param_start = false;
                    }
                }
                raw.push_str(&tt.to_string());
                raw.push(' ');
            }
            if !current.is_empty() {
                param_names.push(current.join(""));
            }
            params_with_bounds = Some(raw.trim().trim_end_matches(',').to_string());
        }
    }

    Target {
        name,
        params_with_bounds,
        param_names,
    }
}
