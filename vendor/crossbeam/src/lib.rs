//! Offline subset of `crossbeam`: scoped threads over `std::thread::scope`,
//! plus a bounded MPMC [`channel`].
//!
//! Matches the upstream call shape `crossbeam::scope(|s| { s.spawn(|_| …) })
//! .expect(…)`: the closure passed to `spawn` receives a `&Scope` (so nested
//! spawns compose), and `scope` returns `Err` when any spawned thread
//! panicked. `channel::bounded` mirrors `crossbeam-channel`'s bounded
//! queue — the work-distribution substrate of persistent worker pools.

#![warn(missing_docs)]

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Scope handle passed to [`scope`] and to every spawned closure.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope, so it can
    /// spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// spawned threads are joined before this returns. Returns `Err` with the
/// panic payload when any spawned (un-joined) thread panicked.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u32, 2, 3, 4];
        let total = scope(|s| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = s.spawn(move |_| a.iter().sum::<u32>());
            let hb = s.spawn(move |_| b.iter().sum::<u32>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panicking_child_surfaces_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u8).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
