//! Offline subset of `crossbeam-channel`: a **bounded MPMC queue**.
//!
//! Matches the upstream call shape — `let (tx, rx) = bounded(cap);` with
//! cloneable [`Sender`]/[`Receiver`] halves — on a `Mutex` + `Condvar`
//! core. Semantics mirror upstream where the workspace relies on them:
//!
//! * [`Sender::send`] blocks while the queue holds `cap` messages
//!   (backpressure); [`Sender::try_send`] fails fast with
//!   [`TrySendError::Full`] instead.
//! * [`Receiver::recv`] blocks on an empty queue — a worker parked in
//!   `recv` consumes no CPU between bursts — and keeps draining messages
//!   that were queued before the last [`Sender`] dropped; only an empty
//!   *and* disconnected queue yields [`RecvError`].
//! * Dropping every `Receiver` disconnects the senders: subsequent sends
//!   fail with [`SendError`] instead of blocking forever.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared queue state behind both halves.
struct Inner<T> {
    queue: Mutex<State<T>>,
    /// Signalled when a message is pushed or the channel disconnects.
    not_empty: Condvar,
    /// Signalled when a message is popped or the channel disconnects.
    not_full: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates a bounded MPMC channel holding at most `capacity` messages
/// (`capacity` ≥ 1 is enforced).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let capacity = capacity.max(1);
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            items: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// The channel is disconnected: every [`Receiver`] has been dropped. The
/// unsent message is returned.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// As upstream: `Debug` without a `T: Debug` bound, so channels of
// non-`Debug` payloads (boxed closures) still compose with `expect`.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Why a [`Sender::try_send`] did not enqueue.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue currently holds `capacity` messages.
    Full(T),
    /// Every [`Receiver`] has been dropped.
    Disconnected(T),
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// The channel is empty and every [`Sender`] has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Why a [`Receiver::recv_timeout`] returned without a message.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every [`Sender`] has been dropped.
    Disconnected,
}

/// The sending half; clone freely (MPMC).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] when every [`Receiver`] has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.items.len() < self.inner.capacity {
                state.items.push_back(msg);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Enqueues `msg` only if the queue has room right now.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
    /// when every [`Receiver`] has been dropped.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.items.len() >= self.inner.capacity {
            return Err(TrySendError::Full(msg));
        }
        state.items.push_back(msg);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues every message of `msgs`, blocking while the queue is full.
    ///
    /// Messages are pulled from the iterator only as slots open up, and a
    /// whole run of available slots is filled under **one lock
    /// acquisition** — a batch of `k` messages into an uncontended queue
    /// costs one lock round trip instead of `k`. FIFO order within the
    /// batch is preserved, and no other sender's messages interleave with
    /// a run pushed under one acquisition. Returns how many messages were
    /// enqueued (the iterator's length on success).
    ///
    /// This is a workspace extension over upstream `crossbeam-channel`
    /// (which has no batch send); the batched ingest paths are built on it.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the first unsent message when every
    /// [`Receiver`] has been dropped. Messages already enqueued (and any
    /// drained before the disconnect) are **not** returned; only the
    /// iterator's remaining tail after the carried message is dropped.
    pub fn send_batch<I: IntoIterator<Item = T>>(&self, msgs: I) -> Result<usize, SendError<T>> {
        let mut iter = msgs.into_iter();
        // Lookahead of one: the loop below only parks while a message is
        // actually pending, so an empty batch never blocks.
        let Some(mut next) = iter.next() else {
            return Ok(0);
        };
        let mut pushed_total = 0usize;
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(next));
            }
            let mut pushed_run = 0usize;
            while state.items.len() < self.inner.capacity {
                state.items.push_back(next);
                pushed_run += 1;
                match iter.next() {
                    Some(msg) => next = msg,
                    None => {
                        notify_pushed(&self.inner.not_empty, pushed_run);
                        return Ok(pushed_total + pushed_run);
                    }
                }
            }
            // Queue full with messages left: wake receivers for what we
            // pushed, then park until a slot opens.
            notify_pushed(&self.inner.not_empty, pushed_run);
            pushed_total += pushed_run;
            state = self.inner.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Enqueues the longest prefix of `msgs` that fits **right now**, under
    /// a single lock acquisition, and returns its length. A return shorter
    /// than the batch means the queue filled (backpressure); unconsumed
    /// messages stay in the iterator.
    ///
    /// This is a workspace extension over upstream `crossbeam-channel`.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the first message when every [`Receiver`]
    /// has been dropped (nothing is enqueued in that case).
    pub fn try_send_batch<I: IntoIterator<Item = T>>(
        &self,
        msgs: I,
    ) -> Result<usize, SendError<T>> {
        let mut iter = msgs.into_iter();
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return match iter.next() {
                Some(msg) => Err(SendError(msg)),
                None => Ok(0),
            };
        }
        let mut pushed = 0usize;
        while state.items.len() < self.inner.capacity {
            match iter.next() {
                Some(msg) => {
                    state.items.push_back(msg);
                    pushed += 1;
                }
                None => break,
            }
        }
        notify_pushed(&self.inner.not_empty, pushed);
        Ok(pushed)
    }

    /// Messages currently queued (racy by nature; for monitoring/tests).
    pub fn len(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("channel poisoned")
            .items
            .len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// Wakes as many parked receivers as there are new messages: one message
/// needs one receiver, a burst may satisfy several.
fn notify_pushed(not_empty: &Condvar, pushed: usize) {
    match pushed {
        0 => {}
        1 => not_empty.notify_one(),
        _ => not_empty.notify_all(),
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake parked receivers so they can observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

/// The receiving half; clone freely (MPMC).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues the oldest message, blocking (parked, zero CPU) while the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the queue is empty **and** every [`Sender`] has
    /// been dropped — queued messages are always drained first.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.items.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Like [`Receiver::recv`], but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when no message arrived in time;
    /// [`RecvTimeoutError::Disconnected`] on an empty, sender-less queue.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        // A timeout too large for `Instant` arithmetic (`Duration::MAX`)
        // degenerates to an untimed recv rather than panicking.
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return self
                .recv()
                .map_err(|RecvError| RecvTimeoutError::Disconnected);
        };
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.items.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
            if result.timed_out() && state.items.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued (racy by nature; for monitoring/tests).
    pub fn len(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("channel poisoned")
            .items
            .len()
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.queue.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake parked senders so they can observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn try_send_full_and_capacity_is_hard() {
        let (tx, rx) = bounded(3);
        for i in 0..3 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.try_send(9), Err(TrySendError::Full(9)));
        assert_eq!(tx.len(), 3);
        rx.recv().unwrap();
        tx.try_send(9).unwrap();
    }

    #[test]
    fn blocking_send_resumes_after_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let t = thread::spawn(move || tx.send(1).unwrap());
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
    }

    #[test]
    fn recv_drains_queue_after_sender_drop() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_all_messages_delivered_exactly_once() {
        let (tx, rx) = bounded(16);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250u32 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn send_batch_delivers_in_order_and_blocks_at_capacity() {
        let (tx, rx) = bounded(4);
        // Batch larger than capacity: the sender must park mid-batch and
        // resume as the consumer drains.
        let t = thread::spawn(move || tx.send_batch(0..20u32).unwrap());
        let mut got = Vec::new();
        while got.len() < 20 {
            got.push(rx.recv().unwrap());
        }
        assert_eq!(t.join().unwrap(), 20);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn send_batch_empty_is_a_no_op_even_when_full() {
        let (tx, _rx) = bounded(1);
        tx.send(7u32).unwrap();
        // Queue is full; an empty batch must return, not park forever.
        assert_eq!(tx.send_batch(std::iter::empty()), Ok(0));
    }

    #[test]
    fn try_send_batch_enqueues_the_fitting_prefix() {
        let (tx, rx) = bounded(3);
        tx.send(100u32).unwrap();
        // Room for 2 of the 5: the prefix goes in, the tail stays put.
        let mut iter = 0..5u32;
        assert_eq!(tx.try_send_batch(&mut iter), Ok(2));
        assert_eq!(
            iter.next(),
            Some(2),
            "unconsumed tail stays in the iterator"
        );
        assert_eq!(rx.recv(), Ok(100));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        // Drained: the whole batch fits now.
        assert_eq!(tx.try_send_batch(10..12u32), Ok(2));
    }

    #[test]
    fn batch_sends_fail_when_receivers_gone() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send_batch(0..3u32), Err(SendError(0)));
        assert_eq!(tx.try_send_batch(5..8u32), Err(SendError(5)));
        assert_eq!(tx.try_send_batch(std::iter::empty::<u32>()), Ok(0));
    }

    #[test]
    fn queue_never_exceeds_capacity_under_bursty_producers() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..200u32 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut seen = 0usize;
        let mut max_len = 0usize;
        loop {
            max_len = max_len.max(rx.len());
            match rx.recv() {
                Ok(_) => seen += 1,
                Err(RecvError) => break,
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(seen, 800);
        assert!(max_len <= 8, "queue grew past capacity: {max_len}");
    }
}
