//! Concrete generators: [`SmallRng`] and [`StdRng`].
//!
//! Both wrap a xoshiro256++ core — small, fast, and statistically strong for
//! everything a simulation workload needs. They are distinct types (as in
//! upstream `rand`) so call sites keep their documented intent: `SmallRng`
//! for cheap per-task streams, `StdRng` for the workhorse generator.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ core state. Never all-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; nudge it.
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! define_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                // Upper bits of xoshiro output have the best equidistribution.
                (self.0.next() >> 32) as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next()
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let x = self.0.next().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&x[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name(Xoshiro256::from_seed_bytes(seed))
            }
        }
    };
}

define_rng!(
    /// A small, fast generator for cheap per-task randomness.
    SmallRng
);
define_rng!(
    /// The workhorse generator for experiments and simulations.
    StdRng
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn mean_of_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
