//! Offline, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! This workspace builds in an environment without crates.io access, so the
//! pieces of `rand` the codebase actually uses are vendored here: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, the [`rngs::SmallRng`] and
//! [`rngs::StdRng`] generators (xoshiro256++ cores), unbiased integer and
//! float range sampling, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is part of the contract: every generator is seeded explicitly
//! and produces the same stream on every platform. The streams do **not**
//! match upstream `rand` bit-for-bit — tests in this workspace only rely on
//! same-seed reproducibility and distributional properties, never on the
//! exact upstream byte stream.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
///
/// Object-safe, so mechanisms can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements the [`Standard`] distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`s).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range. Integer ranges use Lemire's unbiased
    /// multiply-shift rejection method — **no modulo bias**.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution object.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded through SplitMix64 so
    /// nearby seeds give unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (used for seed expansion).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `u64` in `[0, n)` via Lemire's multiply-shift with rejection:
/// exactly uniform, no modulo bias.
#[inline]
pub(crate) fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // 2^64 mod n; values of `lo` below this threshold are over-represented.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: f64 = Standard.sample(rng); // [0, 1)
                let v = (self.start as f64
                    + (self.end as f64 - self.start as f64) * unit) as $t;
                // Guard against rounding up to the excluded endpoint: step
                // to the largest representable value below `end`. Bit
                // arithmetic differs by sign (negative floats order with
                // *larger* bit patterns further from zero).
                if v >= self.end {
                    if self.end == 0.0 {
                        -<$t>::from_bits(1) // largest value below 0
                    } else if self.end > 0.0 {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else {
                        <$t>::from_bits(self.end.to_bits() + 1)
                    }
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: f64 = Standard.sample(rng);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(0u32..7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues must appear");
        for _ in 0..1000 {
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0f64..3.5);
            assert!((2.0..3.5).contains(&x));
        }
        // Non-positive upper bounds: the excluded-endpoint guard must step
        // downward, not wrap (end == 0.0) or step upward (end < 0).
        for _ in 0..10_000 {
            let x = rng.gen_range(-5.0f64..0.0);
            assert!((-5.0..0.0).contains(&x), "got {x}");
            let y = rng.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&y), "got {y}");
        }
        // Denormal-narrow range exercises the guard branch directly.
        let lo = -1.0f64;
        let hi = -1.0f64 + f64::EPSILON;
        for _ in 0..1000 {
            let z = rng.gen_range(lo..hi);
            assert!((lo..hi).contains(&z), "got {z}");
        }
    }

    #[test]
    fn gen_range_is_unbiased_chi_square() {
        // 16 buckets over a non-power-of-two span; the old `% len` pattern
        // would skew low buckets. χ² with 15 dof: reject above ~37.7 (1%).
        let mut rng = SmallRng::seed_from_u64(6);
        let n_buckets = 13u64;
        let n = 130_000u64;
        let mut counts = vec![0f64; n_buckets as usize];
        for _ in 0..n {
            counts[rng.gen_range(0..n_buckets) as usize] += 1.0;
        }
        let expect = n as f64 / n_buckets as f64;
        let chi2: f64 = counts.iter().map(|c| (c - expect).powi(2) / expect).sum();
        assert!(chi2 < 40.0, "chi2 {chi2} too large for uniform");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = SmallRng::seed_from_u64(8);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
