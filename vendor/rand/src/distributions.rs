//! Distribution trait and the [`Standard`] distribution.

use crate::{uniform_u64_below, RngCore};

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: `f64`/`f32` uniform in `[0, 1)`,
/// integers over their full range, fair `bool`s.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → every representable multiple of 2⁻⁵³.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty : $next:ident),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$next() as $t
            }
        }
    )*};
}

standard_int!(
    u8: next_u32,
    u16: next_u32,
    u32: next_u32,
    u64: next_u64,
    usize: next_u64,
    i8: next_u32,
    i16: next_u32,
    i32: next_u32,
    i64: next_u64,
    isize: next_u64
);

/// A uniform distribution over `[low, high)`, reusable across samples.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit: f64 = Standard.sample(rng);
        self.low + (self.high - self.low) * unit
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Uniform<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let span = (self.high as i128 - self.low as i128) as u64;
                assert!(span > 0, "Uniform: empty range");
                self.low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

uniform_int!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn uniform_struct_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Uniform::new(10u32, 20u32);
        for _ in 0..1000 {
            let x = rng.sample(d);
            assert!((10..20).contains(&x));
        }
        let f = Uniform::new(-1.0f64, 1.0);
        for _ in 0..1000 {
            let x = rng.sample(f);
            assert!((-1.0..1.0).contains(&x));
        }
    }
}
