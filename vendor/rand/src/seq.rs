//! Sequence helpers: shuffling and random element choice.

use crate::{Rng, RngCore};

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, unbiased).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::uniform_u64_below(rng, self.len() as u64) as usize])
        }
    }
}

// Suppress an unused-import lint trap: Rng is intentionally part of the
// public bounds so callers can pass any Rng.
const _: fn(&mut dyn RngCore) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay sorted");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SmallRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
