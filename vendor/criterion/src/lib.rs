//! Offline micro-benchmark harness with a `criterion`-compatible surface.
//!
//! Implements the subset this workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `BenchmarkId` — and *really measures*:
//! each benchmark is warmed up, iteration count is calibrated to a target
//! measurement window, and the mean/min per-iteration time is printed as
//!
//! ```text
//! bench group/id ... mean 123.4 ns/iter (min 119.0 ns, 10 samples)
//! ```
//!
//! No HTML reports, statistics beyond mean/min, or outlier analysis — the
//! numbers are honest wall-clock measurements suitable for A/B comparisons
//! within one run (e.g. indexed vs. naive sampling paths).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Measurement settings shared by a group.
#[derive(Debug, Clone)]
struct Settings {
    sample_count: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_count: 10,
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(200),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", &id.into().label, &Settings::default(), |b| f(b));
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measure = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into().label, &self.settings, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.label, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (cosmetic; measurements print as they complete).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    settings: Settings,
}

impl Bencher {
    /// Measures `f`, calling it repeatedly. The return value is passed
    /// through [`black_box`] so the computation cannot be optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~1/sample_count of the
        // measurement window?
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.settings.warm_up {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = self.settings.warm_up.as_secs_f64() / calib_iters.max(1) as f64;
        let per_sample = self.settings.measure.as_secs_f64() / self.settings.sample_count as f64;
        self.iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 28);

        self.samples = (0..self.settings.sample_count)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(f());
                }
                start.elapsed()
            })
            .collect();
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, settings: &Settings, mut f: F) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        settings: settings.clone(),
    };
    f(&mut bencher);
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("bench {name} ... no measurement (Bencher::iter never called)");
        return;
    }
    let per_iter_ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!(
        "bench {name} ... mean {} /iter (min {}, {} samples x {} iters)",
        format_ns(mean),
        format_ns(min),
        per_iter_ns.len(),
        bencher.iters_per_sample
    );
}

/// Declares a benchmark group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
