//! Offline subset of `parking_lot`, backed by `std::sync` primitives.
//!
//! API shape matches upstream where the workspace uses it: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a poisoned
//! lock — only possible if a holder panicked — panics on the next access
//! rather than returning an error.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-on-poison API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned by a panicking holder")
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(_)) => {
                panic!("mutex poisoned by a panicking holder")
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A readers-writer lock with `parking_lot`'s panic-on-poison API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .expect("rwlock poisoned by a panicking holder")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .expect("rwlock poisoned by a panicking holder")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
