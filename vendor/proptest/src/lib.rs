//! Offline property-testing harness with a `proptest`-compatible surface.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range and
//! tuple strategies (up to 8 elements), [`Strategy::prop_map`],
//! [`Strategy::boxed`] / [`prop_oneof!`] unions, [`any`], [`Just`], and
//! `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: case `i` of test run uses a seed derived from `i`,
//!   so failures reproduce without a persistence file.
//! * **No shrinking**: a failing case reports its inputs via the panic
//!   message (`Debug`-formatted) instead of a minimized counterexample.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Items commonly imported by property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Namespace mirror of upstream's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this suite leans on exhaustive checks
        // inside each case, so a smaller default keeps `cargo test` snappy.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Deterministic per case index.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for case number `case` of a named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name decorrelates same-index cases of
        // different tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy by mapping generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type so differently-shaped strategies over
    /// one value type can share a collection (the building block of
    /// [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Picks uniformly among type-erased alternatives (built by
/// [`prop_oneof!`]). Upstream supports per-arm weights; this subset is
/// uniform.
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.gen_range(0..self.0.len());
        self.0[pick].generate(rng)
    }
}

/// A strategy choosing uniformly among the given alternative strategies,
/// which may be of different types but must generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. An optional `#![proptest_config(expr)]` header sets the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for __case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __dbg = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), " = {:?}",)* ""),
                    __case $(, &$arg)*
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(err) = __result {
                    eprintln!("proptest failure in {}: {}", stringify!($name), __dbg);
                    ::std::panic::resume_unwind(err);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_picks_only_from_its_arms(v in prop_oneof![
            Just(3u32),
            7u32..9,
            (0u32..1).prop_map(|_| 11),
        ]) {
            prop_assert!(v == 3 || v == 7 || v == 8 || v == 11);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("other", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
