//! Networked ingest quickstart: the full client/server split over
//! loopback TCP — gateway in front of the streaming pipeline, clients
//! submitting through the framed wire protocol, an in-band policy switch,
//! and a graceful drain.
//!
//! ```text
//! cargo run --release --example networked_ingest
//! ```

use panda::core::{GraphExponential, LocationPolicyGraph, PolicyIndex};
use panda::geo::{CellId, GridMap};
use panda::mobility::{Timestamp, UserId};
use panda::net::{GatewayClient, GatewayConfig, IngestGateway};
use panda::surveillance::ingest::{IngestConfig, IngestPipeline, PendingReport};
use panda::surveillance::Server;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // --- 1. Server side: sharded server, streaming pipeline, gateway. ---
    let grid = GridMap::new(16, 16, 250.0);
    let server = Arc::new(Server::with_shards(grid.clone(), 16));
    let coarse = LocationPolicyGraph::partition(grid.clone(), 4, 4);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        Arc::new(PolicyIndex::new(coarse)),
        Arc::new(GraphExponential),
        IngestConfig {
            max_batch: 256,
            eps: 1.0,
            seed: 7,
            ..Default::default()
        },
    );
    // Port 0 = any free port; production binds a well-known one. The
    // data plane refuses wire policy switches (untrusted reporters); the
    // operator plane is a second listener that allows them — in
    // production it would be loopback-only or authenticated.
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).expect("bind gateway");
    let operator_gateway =
        IngestGateway::bind_with("127.0.0.1:0", pipeline.handle(), GatewayConfig::operator())
            .expect("bind operator gateway");
    let addr = gateway.local_addr();
    println!(
        "gateway listening on {addr} (operator plane on {})",
        operator_gateway.local_addr()
    );

    // --- 2. Client side: concurrent reporters over TCP. ------------------
    let t0 = Instant::now();
    let reporters: Vec<_> = (0..3u32)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = GatewayClient::connect(addr).expect("connect");
                let reports: Vec<PendingReport> = (0..2_000u32)
                    .map(|i| PendingReport {
                        user: UserId(c * 10_000 + i % 400),
                        epoch: (i / 400) as Timestamp,
                        cell: CellId(i % 256),
                        resend: false,
                    })
                    .collect();
                // Batched frames: one ack per 128 reports; the SDK rides
                // out any Nack{Backpressure} internally.
                for chunk in reports.chunks(128) {
                    client.submit_batch(chunk).expect("submit");
                }
                client.shutdown().expect("clean shutdown");
            })
        })
        .collect();
    for r in reporters {
        r.join().unwrap();
    }
    let elapsed = t0.elapsed();

    // --- 3. An in-band policy switch over the operator plane. ------------
    // After a diagnosis the configurator would push Gc; here we switch the
    // whole stream to an isolated (exact-release) policy and submit one
    // more epoch.
    let mut operator =
        GatewayClient::connect(operator_gateway.local_addr()).expect("connect operator");
    operator
        .switch_policy(&LocationPolicyGraph::isolated(grid.clone()))
        .expect("switch policy");
    for i in 0..400u32 {
        operator
            .submit(PendingReport {
                user: UserId(i),
                epoch: 99,
                cell: CellId(i % 256),
                resend: false,
            })
            .expect("submit");
    }
    operator.shutdown().expect("clean shutdown");

    // --- 4. Scrape the stats plane, then drain gracefully. ---------------
    // The same telemetry is live on the wire (operator plane) and
    // in-process; production would point a collector at the former.
    let mut scraper =
        GatewayClient::connect(operator_gateway.local_addr()).expect("connect scraper");
    let exposition = scraper.stats().expect("wire scrape");
    scraper.shutdown().expect("clean shutdown");
    println!(
        "--- final stats snapshot ({} exposition lines; counters shown) ---",
        exposition.lines().count()
    );
    for line in exposition.lines().filter(|l| {
        !l.starts_with('#')
            && !l.contains("_bucket{")
            && (l.starts_with("panda_ingest_") || l.starts_with("panda_pool_"))
    }) {
        println!("  {line}");
    }
    // Each gateway also serves its own exposition in-process; the data
    // plane's frame counters live there (scraping it over the wire is an
    // operator-plane privilege the data plane refuses).
    for line in gateway.metrics_dump().lines().filter(|l| {
        !l.starts_with('#') && !l.contains("_bucket{") && l.starts_with("panda_gateway_")
    }) {
        println!("  {line}");
    }

    // --- 5. Graceful drain: gateways first, then the pipeline. -----------
    let gw_stats = gateway.shutdown();
    let op_stats = operator_gateway.shutdown();
    let stats = pipeline.shutdown();
    println!(
        "{} data-plane connections, {} frames, {} reports acked in {:.1} ms \
         ({:.0} reports/s submit-side); operator plane acked {} + 1 switch",
        gw_stats.connections,
        gw_stats.frames,
        gw_stats.reports_enqueued,
        elapsed.as_secs_f64() * 1e3,
        6_000.0 / elapsed.as_secs_f64(),
        op_stats.reports_enqueued,
    );
    println!(
        "pipeline landed {} in {} flushes (p50 flush {:.2} ms); server holds {}",
        stats.landed,
        stats.batches,
        stats.flush_ms_percentile(0.5),
        server.n_received(),
    );
    // Epoch 99 ran under the isolated policy: released exactly.
    let exact = (0..400u32)
        .filter(|&i| server.reported_cell(UserId(i), 99) == Some(CellId(i % 256)))
        .count();
    println!("epoch 99 under the isolated policy: {exact}/400 exact releases");
    assert_eq!(exact, 400);
    assert_eq!(stats.landed, 6_400);
}
