//! The Fig. 5 "PANDA Demonstration" panel as a CLI: choose a policy graph
//! (preset or random with Size/Density knobs), choose ε and a PGLP
//! mechanism, and read the resulting privacy-utility numbers.
//!
//! ```text
//! cargo run --example policy_explorer [size] [density] [eps]
//! # e.g. the Fig. 5 screenshot settings:
//! cargo run --example policy_explorer 50 0.1 1.0
//! ```

use panda::attack::{expected_inference_error, BayesEstimator, Prior};
use panda::core::{
    GraphCalibratedLaplace, GraphExponential, LocationPolicyGraph, Mechanism, PlanarIsotropic,
};
use panda::geo::GridMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let density: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let eps: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1.0);

    let grid = GridMap::new(10, 10, 200.0);
    let mut rng = StdRng::seed_from_u64(5);

    // The policy menu of the demo UI: three presets plus the random graph.
    let policies = vec![
        LocationPolicyGraph::partition(grid.clone(), 5, 5), // Ga
        LocationPolicyGraph::partition(grid.clone(), 2, 2), // Gb
        LocationPolicyGraph::g1_geo_indistinguishability(grid.clone()), // G1
        LocationPolicyGraph::random(grid.clone(), size, density, &mut rng),
    ];

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(GraphExponential),
        Box::new(GraphCalibratedLaplace),
        Box::new(PlanarIsotropic::new()),
    ];

    let prior = Prior::uniform(&grid);
    println!("epsilon = {eps}; random graph: size {size}, density {density}");
    println!(
        "\n{:<24} {:<18} {:>12} {:>12} {:>9}",
        "policy", "mechanism", "utility (m)", "adv err (m)", "hit rate"
    );
    println!("{}", "-".repeat(80));
    for policy in &policies {
        for mech in &mechanisms {
            let mut trial_rng = StdRng::seed_from_u64(17);
            let report = expected_inference_error(
                mech.as_ref(),
                policy,
                eps,
                &prior,
                BayesEstimator::MinExpectedDistance,
                200,
                10_000,
                &mut trial_rng,
            )
            .expect("attack run failed");
            println!(
                "{:<24} {:<18} {:>12.1} {:>12.1} {:>9.3}",
                policy.name(),
                report.mechanism,
                report.mean_utility_error,
                report.mean_error,
                report.hit_rate
            );
        }
    }
    println!(
        "\nReading the table the way the demo intends: utility error is what\n\
         the server loses, adversary error is what the attacker cannot\n\
         recover. Ga gives the attacker little room inside small cliques but\n\
         also loses little utility; G1 protects everywhere and costs the\n\
         most; the random graph sits wherever its density puts it — the\n\
         'new dimension' of the privacy-utility trade-off."
    );
}
