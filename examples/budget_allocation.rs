//! Policy-aware privacy-budget allocation over a two-week window.
//!
//! A user's client releases one location per epoch from a fixed lifetime
//! budget. When the policy schedule is heterogeneous — fine-grained `Gb`
//! cliques on weekdays, the full `G1` graph on weekends — sizing each
//! epoch's ε to the policy's component *diameter* spends the same budget
//! for visibly lower error than flat allocation: weekday releases are cheap
//! (1-hop cliques) and the saved budget buys down the expensive weekend
//! noise. This is the "policy-aware" dimension PANDA adds over plain
//! geo-indistinguishability.
//!
//! ```text
//! cargo run --example budget_allocation
//! ```

use panda::core::budget::{
    BudgetAllocator, BudgetLedger, DiameterProportional, EvenSplit, FixedPerEpoch,
};
use panda::core::{GraphExponential, LocationPolicyGraph, Mechanism};
use panda::geo::GridMap;
use panda::mobility::markov::{generate_markov, MarkovConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let grid = GridMap::new(12, 12, 500.0);
    let mut rng = StdRng::seed_from_u64(99);
    let db = generate_markov(
        &mut rng,
        &grid,
        &MarkovConfig {
            n_users: 1,
            horizon: 336, // 14 days, hourly
            p_stay: 0.7,
        },
    );
    let trajectory = &db.trajectories()[0].cells;
    let horizon = trajectory.len() as u32;

    // Weekday policy: 2x2 cliques (Gb). Weekend policy: full G1 graph.
    let gb = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let g1 = LocationPolicyGraph::g1_geo_indistinguishability(grid.clone());
    let policy_at = |t: u32| if (t / 24) % 7 >= 5 { &g1 } else { &gb };

    let budget = 120.0;
    println!(
        "one user, {horizon} epochs, lifetime budget {budget} eps\n\
         schedule: weekdays Gb (diameter 1), weekends G1 (diameter 11)\n"
    );
    println!(
        "{:<24} {:>9} {:>10} {:>13} {:>15}",
        "allocator", "released", "spent", "mean err (m)", "weekend err (m)"
    );

    let allocators: Vec<(&str, Box<dyn BudgetAllocator>)> = vec![
        ("fixed 0.35/epoch", Box::new(FixedPerEpoch { eps: 0.35 })),
        ("even split", Box::new(EvenSplit)),
        (
            "diameter proportional",
            Box::new(DiameterProportional {
                base: 1.1,
                reference_diameter: 11.0,
            }),
        ),
    ];
    for (label, alloc) in allocators {
        let mut ledger = BudgetLedger::new(budget);
        let mut rng = StdRng::seed_from_u64(7);
        let (mut err, mut weekend_err) = (0.0, 0.0);
        let (mut n, mut n_weekend, mut released) = (0usize, 0usize, 0usize);
        for (t, &truth) in trajectory.iter().enumerate() {
            let t = t as u32;
            let policy = policy_at(t);
            let eps = alloc.allocate(t as u64, ledger.remaining(), horizon - t, policy);
            if eps <= 0.0 || !ledger.can_afford(eps) {
                continue;
            }
            if !policy.is_isolated_cell(truth) {
                ledger.charge(t as u64, policy.name(), eps).unwrap();
            }
            let z = GraphExponential
                .perturb(policy, eps, truth, &mut rng)
                .unwrap();
            let d = grid.distance(truth, z);
            err += d;
            n += 1;
            released += 1;
            if (t / 24) % 7 >= 5 {
                weekend_err += d;
                n_weekend += 1;
            }
        }
        println!(
            "{:<24} {:>9} {:>10.1} {:>13.1} {:>15.1}",
            label,
            released,
            ledger.spent(),
            err / n.max(1) as f64,
            weekend_err / n_weekend.max(1) as f64
        );
    }
    println!(
        "\nSame lifetime budget, same mechanism: shifting eps toward the\n\
         large-diameter weekend policy cuts both mean and weekend error.\n\
         The ledger guarantees the total can never be exceeded."
    );
}
