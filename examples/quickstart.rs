//! Quickstart: define a policy graph, release a private location, audit the
//! guarantee.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use panda::core::{
    audit_pglp, GraphCalibratedLaplace, GraphExponential, LocationPolicyGraph, Mechanism,
    PlanarIsotropic,
};
use panda::geo::GridMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. The location domain: an 8×8 grid of 500 m cells. ------------
    let grid = GridMap::new(8, 8, 500.0);
    println!("domain: {} cells of {} m", grid.n_cells(), grid.cell_size());

    // --- 2. Policy graphs from the paper's figures. ----------------------
    let g1 = LocationPolicyGraph::g1_geo_indistinguishability(grid.clone());
    let ga = LocationPolicyGraph::partition(grid.clone(), 4, 4); // coarse areas
    let gc = ga.with_isolated(&[grid.cell(2, 2)]); // cell (2,2) is infected

    for policy in [&g1, &ga, &gc] {
        println!(
            "policy {:<22} density {:.4}  components {}",
            policy.name(),
            policy.density(),
            policy.n_components()
        );
    }

    // --- 3. Release perturbed locations under {ε, G}. --------------------
    let mut rng = StdRng::seed_from_u64(42);
    let truth = grid.cell(3, 4);
    let eps = 1.0;
    for mech in [
        Box::new(GraphExponential) as Box<dyn Mechanism>,
        Box::new(GraphCalibratedLaplace),
        Box::new(PlanarIsotropic::new()),
    ] {
        let z = mech.perturb(&g1, eps, truth, &mut rng).unwrap();
        println!(
            "{:<18} true {truth} -> released {z} (error {:.0} m)",
            mech.name(),
            grid.distance(truth, z)
        );
    }

    // --- 4. The infected cell of Gc is disclosed exactly. ----------------
    let z_infected = GraphExponential
        .perturb(&gc, eps, grid.cell(2, 2), &mut rng)
        .unwrap();
    println!(
        "under Gc the infected cell releases exactly: {} -> {}",
        grid.cell(2, 2),
        z_infected
    );
    assert_eq!(z_infected, grid.cell(2, 2));

    // --- 5. Audit Def. 2.4 exactly, edge by edge. -------------------------
    let report = audit_pglp(&GraphExponential, &g1, eps).unwrap();
    println!(
        "audit: {} pairs checked, max log-ratio {:.4} <= eps {:.4} ? {}",
        report.pairs_checked, report.max_log_ratio, eps, report.satisfied
    );
    assert!(report.satisfied && report.exact);
    println!("{{ε,G}}-location privacy verified.");
}
