//! The §3.2 contact-tracing demonstration, end to end:
//! synthetic GeoLife-like mobility → outbreak → diagnosis → dynamic policy
//! update → re-send round → contact flags → health codes.
//!
//! ```text
//! cargo run --example contact_tracing
//! ```

use panda::core::GraphExponential;
use panda::epidemic::{simulate_outbreak, OutbreakConfig};
use panda::mobility::geolife_like::{beijing_grid, generate_geolife_like, GeoLifeLikeConfig};
use panda::mobility::Timestamp;
use panda::surveillance::health_code::{assign_codes, code_census, HealthCodeRules};
use panda::surveillance::tracing::dynamic_trace;
use panda::surveillance::{
    Client, ClientConfig, ConsentRule, ContactRule, PolicyConfigurator, Server,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);

    // --- 1. Population: one week of hourly GeoLife-like data. -----------
    let grid = beijing_grid(16, 500.0);
    let truth = generate_geolife_like(
        &mut rng,
        &grid,
        &GeoLifeLikeConfig {
            n_users: 60,
            days: 7,
            ..Default::default()
        },
    );
    println!(
        "population: {} users x {} epochs on a {}x{} grid",
        truth.n_users(),
        truth.horizon(),
        grid.width(),
        grid.height()
    );

    // --- 2. An outbreak spreads through co-location. ---------------------
    let outbreak = simulate_outbreak(
        &mut rng,
        &truth,
        &OutbreakConfig {
            n_seeds: 2,
            diagnosis_delay: 24,
            ..Default::default()
        },
    );
    println!(
        "outbreak: {} infected ({:.0}% attack rate), {} diagnoses",
        outbreak.total_infected(),
        100.0 * outbreak.attack_rate(),
        outbreak.diagnoses.len()
    );
    let Some(&(patient, t_diag)) = outbreak.diagnoses.first() else {
        println!("no diagnosis in this run; nothing to trace");
        return;
    };

    // --- 3. PANDA clients under the Gb analysis policy. ------------------
    let configurator = PolicyConfigurator::new(grid.clone(), 8, 2);
    let base_policy = configurator.for_analysis();
    let mut clients: Vec<Client> = truth
        .trajectories()
        .iter()
        .map(|tr| {
            let mut c = Client::new(
                tr.user,
                ClientConfig {
                    retention: 336,
                    budget: 400.0,
                    consent: ConsentRule::AlwaysAccept,
                },
                base_policy.clone(),
                Box::new(GraphExponential),
                1.0,
            );
            for (t, &cell) in tr.cells.iter().enumerate() {
                c.observe(t as Timestamp, cell);
            }
            c
        })
        .collect();
    let server = Server::new(grid.clone());

    // Routine reporting for the look-back window.
    let window_start = t_diag.saturating_sub(14 * 24);
    for client in clients.iter_mut() {
        for t in window_start..t_diag {
            if let Ok(report) = client.report(t, &mut rng) {
                server.receive(report);
            }
        }
    }
    println!(
        "server holds {} perturbed reports before tracing",
        server.n_received()
    );

    // --- 4. Diagnosis: dynamic policy update + re-send round. ------------
    println!("patient {patient} diagnosed at epoch {t_diag}; starting dynamic trace");
    let outcome = dynamic_trace(
        &mut clients,
        &server,
        &configurator,
        &truth,
        patient,
        (window_start, t_diag),
        2.0,
        ContactRule::default(),
        &mut rng,
    );
    println!(
        "tracing: {} flagged / {} true contacts — precision {:.2}, recall {:.2} ({} re-sent reports)",
        outcome.flagged.len(),
        outcome.ground_truth.len(),
        outcome.precision,
        outcome.recall,
        outcome.resend_count,
    );

    // --- 5. Health codes from server-visible facts. ----------------------
    let reported = server.reported_db(t_diag);
    let codes = assign_codes(
        &reported,
        &server.diagnoses(),
        &outcome.flagged,
        &server.infected_visits(),
        t_diag,
        &HealthCodeRules::default(),
    );
    let (green, yellow, red) = code_census(&codes);
    println!("health codes: {green} green / {yellow} yellow / {red} red");

    // The policy graph acted as the information filter: only the patient's
    // disclosed cells ever left a client exactly; everything else stayed
    // indistinguishable within its policy component.
    let avg_budget: f64 =
        clients.iter().map(|c| c.budget_remaining()).sum::<f64>() / clients.len() as f64;
    println!("average remaining privacy budget: {avg_budget:.1}");
}
