//! Location monitoring and epidemic analysis under different policy graphs
//! (the first two PANDA applications, §3.1).
//!
//! Shows the paper's central trade-off: the coarse `Ga` policy keeps
//! area-level monitoring essentially exact while hiding within-area detail;
//! the finer `Gb` policy costs more utility at area level but supports
//! better R0 estimation; `G1` (geo-indistinguishability) protects the most
//! and measures the worst. "No policy could be the best for all." (§1.1)
//!
//! ```text
//! cargo run --example epidemic_monitoring
//! ```

use panda::core::{GraphExponential, LocationPolicyGraph, Mechanism};
use panda::epidemic::{simulate_outbreak, OutbreakConfig};
use panda::mobility::geolife_like::{beijing_grid, generate_geolife_like, GeoLifeLikeConfig};
use panda::surveillance::analysis::{compare_r0, contact_rate};
use panda::surveillance::monitoring::{monitoring_utility, movement_matrix, outflow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let grid = beijing_grid(16, 500.0);
    let truth = generate_geolife_like(
        &mut rng,
        &grid,
        &GeoLifeLikeConfig {
            n_users: 80,
            days: 7,
            ..Default::default()
        },
    );

    // Ground-truth epidemic quantities for reference.
    let outbreak = simulate_outbreak(&mut rng, &truth, &OutbreakConfig::default());
    println!(
        "ground truth: contact rate {:.3}/user/epoch, attack rate {:.0}%",
        contact_rate(&truth),
        100.0 * outbreak.attack_rate()
    );

    let eps = 1.0;
    let coarse_block = 4;
    let policies = [
        LocationPolicyGraph::partition(grid.clone(), 4, 4), // Ga
        LocationPolicyGraph::partition(grid.clone(), 2, 2), // Gb
        LocationPolicyGraph::g1_geo_indistinguishability(grid.clone()), // G1
    ];

    println!(
        "\n{:<18} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "policy", "mean err (m)", "area acc", "occupancy L1", "R0 true", "R0 est"
    );
    for policy in &policies {
        let mut rng_rel = StdRng::seed_from_u64(99);
        let reported = truth.map_cells(|_, _, c| {
            GraphExponential
                .perturb(policy, eps, c, &mut rng_rel)
                .expect("perturbation cannot fail")
        });
        let util = monitoring_utility(&truth, &reported, coarse_block);
        let r0 = compare_r0(&truth, &reported, 0.35, 4.0);
        println!(
            "{:<18} {:>12.1} {:>10.3} {:>12.4} {:>10.3} {:>10.3}",
            policy.name(),
            util.mean_distance,
            util.area_accuracy,
            util.occupancy_l1,
            r0.r0_true,
            r0.r0_perturbed
        );
    }

    // Movement dashboard under Ga: flows between coarse areas survive
    // perturbation because Ga components never cross areas.
    let ga = &policies[0];
    let mut rng_rel = StdRng::seed_from_u64(100);
    let reported = truth.map_cells(|_, _, c| {
        GraphExponential
            .perturb(ga, eps, c, &mut rng_rel)
            .expect("perturbation cannot fail")
    });
    let flows_true = movement_matrix(&truth, coarse_block);
    let flows_priv = movement_matrix(&reported, coarse_block);
    println!("\narea outflows (true vs private under Ga):");
    let (ot, op) = (outflow(&flows_true), outflow(&flows_priv));
    for (area, (t, p)) in ot.iter().zip(op.iter()).enumerate() {
        if *t > 0 || *p > 0 {
            println!("  area {area:>2}: true {t:>5}  private {p:>5}");
        }
    }
    println!("\n(under Ga the two columns match exactly: components = areas)");

    // The demo's visualization panel: midday occupancy heatmaps, true vs
    // what the server sees.
    use panda::surveillance::dashboard::render_heatmap;
    let noon = 36; // day 2, 12:00
    let to_f64 = |counts: Vec<u32>| counts.into_iter().map(f64::from).collect::<Vec<_>>();
    println!("\nmidday occupancy — ground truth:");
    print!(
        "{}",
        render_heatmap(&grid, &to_f64(truth.occupancy_at(noon)))
    );
    println!("midday occupancy — server view under Ga (eps = {eps}):");
    print!(
        "{}",
        render_heatmap(&grid, &to_f64(reported.occupancy_at(noon)))
    );
    println!("(mass stays in the right coarse areas; within-area detail is noise)");
}
