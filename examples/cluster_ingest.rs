//! Sharded ingest tier quickstart: the three-tier topology over loopback
//! TCP — a routing tier in front of N shard nodes, each a full
//! gateway → pipeline → server slice, with an operator-plane policy
//! broadcast and a merged final database.
//!
//! ```text
//! cargo run --release --example cluster_ingest
//! ```
//!
//! ```text
//!                        ┌────────────┐
//!   reporters ── TCP ──▶ │ ShardRouter│── TCP ──▶ gateway ▶ ShardNode 0
//!                        │  (stamps,  │── TCP ──▶ gateway ▶ ShardNode 1
//!   operator ─── TCP ──▶ │  fans out) │── TCP ──▶ gateway ▶ ShardNode 2
//!                        └────────────┘── TCP ──▶ gateway ▶ ShardNode 3
//! ```
//!
//! The router stamps every report with a global arrival sequence number
//! before fan-out, and each pending report is perturbed from an RNG
//! stream keyed by that stamp — so the merged N-node database is
//! byte-identical to a single-process pipeline fed the same order
//! (CI-enforced; see `crates/net/tests/cluster.rs`).

use panda::core::{GraphExponential, LocationPolicyGraph, PolicyIndex};
use panda::geo::{CellId, GridMap};
use panda::mobility::{Timestamp, UserId};
use panda::net::{
    GatewayClient, GatewayConfig, IngestGateway, RouterConfig, ShardBackend, ShardRouter,
};
use panda::surveillance::ingest::{IngestConfig, PendingReport};
use panda::surveillance::node::{merge_reported_dbs, ShardNode};
use panda::surveillance::{shard_of, Server};
use std::sync::Arc;
use std::time::Instant;

const NODES: usize = 4;
const HORIZON: Timestamp = 16;

fn main() {
    // --- 1. Shard tier: N independent gateway → pipeline → server slices.
    let grid = GridMap::new(16, 16, 250.0);
    let policy = LocationPolicyGraph::partition(grid.clone(), 4, 4);
    let config = IngestConfig {
        max_batch: 256,
        eps: 1.0,
        seed: 7,
        ..Default::default()
    };
    let nodes: Vec<ShardNode> = (0..NODES)
        .map(|_| {
            ShardNode::spawn(
                Arc::new(Server::new(grid.clone())),
                Arc::new(PolicyIndex::new(policy.clone())),
                Arc::new(GraphExponential),
                config.clone(),
            )
        })
        .collect();
    // Each node sits behind its own shard-plane gateway: a listener that
    // accepts the router's pre-stamped `SubmitSequenced` frames (which a
    // public data plane must refuse — reporters don't pick their own
    // noise streams).
    let gateways: Vec<IngestGateway> = nodes
        .iter()
        .map(|node| {
            IngestGateway::bind_with("127.0.0.1:0", node.handle(), GatewayConfig::shard_plane())
                .expect("bind shard gateway")
        })
        .collect();

    // --- 2. Routing tier: one public address in front of the shards. ----
    // The router stamps arrival sequence numbers, splits each frame by
    // `shard_of(user)`, fans sub-batches to the shard links, and acks the
    // client only the contiguous prefix every shard actually accepted.
    let backends: Vec<ShardBackend> = gateways
        .iter()
        .map(|gw| {
            ShardBackend::remote(
                GatewayClient::connect(gw.local_addr()).expect("connect shard link"),
            )
        })
        .collect();
    let mut router =
        ShardRouter::bind("127.0.0.1:0", backends, RouterConfig::default()).expect("bind router");
    let operator_addr = router.bind_operator("127.0.0.1:0").expect("bind operator");
    let addr = router.local_addr();
    println!("router listening on {addr} (operator plane on {operator_addr}), {NODES} shard nodes");

    // --- 3. Reporters see one server; the shards are invisible. ----------
    let t0 = Instant::now();
    let mut client = GatewayClient::connect(addr).expect("connect");
    let reports: Vec<PendingReport> = (0..20_000u32)
        .map(|i| PendingReport {
            user: UserId(i % 1_000),
            epoch: (i / 1_000) as Timestamp,
            cell: CellId(i % 256),
            resend: false,
        })
        .collect();
    for chunk in reports.chunks(256) {
        client.submit_batch(chunk).expect("submit");
    }
    client.shutdown().expect("clean shutdown");
    let elapsed = t0.elapsed();

    // --- 4. An all-or-nothing policy broadcast over the operator plane. --
    // One switch frame lands on every shard or on none (failed shards
    // trigger rollback of the ones that already switched) — the cluster
    // never runs a split policy.
    let mut operator = GatewayClient::connect(operator_addr).expect("connect operator");
    operator
        .switch_policy(&LocationPolicyGraph::isolated(grid.clone()))
        .expect("broadcast switch");
    for i in 0..1_000u32 {
        operator
            .submit(PendingReport {
                user: UserId(i),
                epoch: 15,
                cell: CellId(i % 256),
                resend: false,
            })
            .expect("submit");
    }
    operator.shutdown().expect("clean shutdown");

    // --- 5. Scrape the stats planes, then drain top-down. ----------------
    // The router's operator plane serves the routing tier's exposition
    // over the wire; each shard gateway serves its node's merged one.
    let mut scraper = GatewayClient::connect(operator_addr).expect("connect scraper");
    let exposition = scraper.stats().expect("wire scrape");
    scraper.shutdown().expect("clean shutdown");
    println!("--- final router snapshot (wire scrape; counters shown) ---");
    for line in exposition.lines().filter(|l| {
        !l.starts_with('#') && !l.contains("_bucket{") && l.ends_with(|c: char| c.is_ascii_digit())
    }) {
        println!("  {line}");
    }
    for (i, gw) in gateways.iter().enumerate() {
        let mut shard_scraper =
            GatewayClient::connect(gw.local_addr()).expect("connect shard scraper");
        let text = shard_scraper.stats().expect("shard scrape");
        shard_scraper.shutdown().expect("clean shutdown");
        let landed = text
            .lines()
            .find_map(|l| l.strip_prefix("panda_ingest_landed_reports_total "))
            .unwrap_or("0");
        println!("  shard {i}: panda_ingest_landed_reports_total {landed}");
    }

    // --- 6. Drain top-down, then merge the shard databases. --------------
    let router_stats = router.stats();
    router.shutdown();
    for gw in gateways {
        gw.shutdown();
    }
    let servers: Vec<Arc<Server>> = nodes.iter().map(|n| Arc::clone(n.server())).collect();
    let landed: usize = nodes.into_iter().map(|n| n.shutdown().landed).sum();
    let merged = merge_reported_dbs(grid.clone(), &servers, HORIZON);
    println!(
        "routed {} reports in {} fan-out batches ({:.0} reports/s submit-side, \
         {} switch broadcast); {} landed across {NODES} shards, merged {} trajectories",
        router_stats.reports_routed,
        router_stats.fanout_batches,
        20_000.0 / elapsed.as_secs_f64(),
        router_stats.policy_switches,
        landed,
        merged.trajectories().len(),
    );

    // Every user's trajectory lives on exactly the shard `shard_of` says,
    // and epoch 15 ran under the isolated policy: released exactly.
    let user = UserId(123);
    let home = shard_of(user, NODES);
    assert!(servers[home].reported_cell(user, 0).is_some());
    let exact = (0..1_000u32)
        .filter(|&i| {
            servers[shard_of(UserId(i), NODES)].reported_cell(UserId(i), 15)
                == Some(CellId(i % 256))
        })
        .count();
    println!("epoch 15 under the broadcast isolated policy: {exact}/1000 exact releases");
    assert_eq!(exact, 1_000);
    assert_eq!(landed, 21_000);
}
