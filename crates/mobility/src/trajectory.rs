//! Dense trajectory storage and co-location queries.
//!
//! PANDA's clients keep "all locations in the past two weeks" in a local
//! database (Fig. 1); the server-side analyses consume `(user, epoch, cell)`
//! triples. [`TrajectoryDb`] is that store: every user has one cell per
//! epoch over a shared horizon, which makes co-location — the substrate of
//! contact tracing — a per-epoch grouping query.

use panda_geo::{CellId, GridMap};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Discrete release epoch (e.g. one per hour). Epoch 0 is the start of the
/// observation window.
pub type Timestamp = u32;

/// User identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One user's dense cell-per-epoch trajectory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Owner.
    pub user: UserId,
    /// Cell occupied at each epoch `0..horizon`.
    pub cells: Vec<CellId>,
}

impl Trajectory {
    /// Number of epochs covered.
    pub fn horizon(&self) -> Timestamp {
        self.cells.len() as Timestamp
    }

    /// Cell at epoch `t`, or `None` past the horizon.
    pub fn at(&self, t: Timestamp) -> Option<CellId> {
        self.cells.get(t as usize).copied()
    }

    /// The sub-trajectory covering `[from, to)`, clamped to the horizon.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> &[CellId] {
        let from = (from as usize).min(self.cells.len());
        let to = (to as usize).clamp(from, self.cells.len());
        &self.cells[from..to]
    }

    /// Distinct cells visited, sorted.
    pub fn distinct_cells(&self) -> Vec<CellId> {
        let mut cells = self.cells.clone();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Number of epochs spent in `cell`.
    pub fn occupancy(&self, cell: CellId) -> usize {
        self.cells.iter().filter(|&&c| c == cell).count()
    }
}

/// A population of dense trajectories over a shared grid and horizon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryDb {
    grid: GridMap,
    horizon: Timestamp,
    trajectories: Vec<Trajectory>,
}

impl TrajectoryDb {
    /// Builds a database, validating that every trajectory covers the same
    /// horizon and stays inside the grid.
    ///
    /// # Panics
    ///
    /// Panics on ragged horizons, foreign cells, or duplicate user ids.
    pub fn new(grid: GridMap, trajectories: Vec<Trajectory>) -> Self {
        let horizon = trajectories
            .first()
            .map(|t| t.horizon())
            .unwrap_or_default();
        let mut seen = std::collections::HashSet::new();
        for t in &trajectories {
            assert_eq!(t.horizon(), horizon, "ragged trajectory horizons");
            assert!(seen.insert(t.user), "duplicate user id {}", t.user);
            for &c in &t.cells {
                assert!(grid.contains(c), "trajectory leaves the grid");
            }
        }
        TrajectoryDb {
            grid,
            horizon,
            trajectories,
        }
    }

    /// The shared grid domain.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// Number of epochs.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.trajectories.len()
    }

    /// All trajectories.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The trajectory of `user`, if present.
    pub fn trajectory(&self, user: UserId) -> Option<&Trajectory> {
        self.trajectories.iter().find(|t| t.user == user)
    }

    /// Cell of `user` at epoch `t`.
    pub fn cell_of(&self, user: UserId, t: Timestamp) -> Option<CellId> {
        self.trajectory(user).and_then(|tr| tr.at(t))
    }

    /// Users present in `cell` at epoch `t`.
    pub fn users_at(&self, cell: CellId, t: Timestamp) -> Vec<UserId> {
        self.trajectories
            .iter()
            .filter(|tr| tr.at(t) == Some(cell))
            .map(|tr| tr.user)
            .collect()
    }

    /// Occupancy count per cell at epoch `t` (dense, indexed by cell id).
    pub fn occupancy_at(&self, t: Timestamp) -> Vec<u32> {
        let mut counts = vec![0u32; self.grid.n_cells() as usize];
        for tr in &self.trajectories {
            if let Some(c) = tr.at(t) {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// Co-location events of `user` within `[from, to)`: for each epoch,
    /// the other users sharing the same cell.
    ///
    /// Returns `(epoch, cell, other_user)` triples — the raw material of
    /// the paper's contact rule ("same location at the same time").
    pub fn co_locations(
        &self,
        user: UserId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<(Timestamp, CellId, UserId)> {
        let Some(tr) = self.trajectory(user) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for t in from..to.min(self.horizon) {
            let Some(cell) = tr.at(t) else { continue };
            for other in &self.trajectories {
                if other.user != user && other.at(t) == Some(cell) {
                    out.push((t, cell, other.user));
                }
            }
        }
        out
    }

    /// Counts co-location epochs per user pair across the whole horizon.
    /// Key is `(min_user, max_user)`.
    pub fn co_location_counts(&self) -> HashMap<(UserId, UserId), u32> {
        let mut counts: HashMap<(UserId, UserId), u32> = HashMap::new();
        for t in 0..self.horizon {
            // Group users by cell at epoch t.
            let mut by_cell: HashMap<CellId, Vec<UserId>> = HashMap::new();
            for tr in &self.trajectories {
                if let Some(c) = tr.at(t) {
                    by_cell.entry(c).or_default().push(tr.user);
                }
            }
            for users in by_cell.values() {
                for i in 0..users.len() {
                    for j in (i + 1)..users.len() {
                        let key = if users[i] < users[j] {
                            (users[i], users[j])
                        } else {
                            (users[j], users[i])
                        };
                        *counts.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        counts
    }

    /// Empirical visit distribution over cells (all users, all epochs),
    /// normalised to sum to 1. The adversary's background knowledge in the
    /// Shokri-style inference attack.
    pub fn empirical_distribution(&self) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.grid.n_cells() as usize];
        let mut total = 0.0;
        for tr in &self.trajectories {
            for &c in &tr.cells {
                counts[c.index()] += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    /// Maps every trajectory as a whole through `f` (e.g. a privacy
    /// mechanism's bulk-release path), producing the perturbed database the
    /// server sees. `f` must return one cell per input epoch.
    ///
    /// # Panics
    ///
    /// Panics when `f` returns a different number of cells than it was
    /// given.
    pub fn map_trajectories<F>(&self, mut f: F) -> TrajectoryDb
    where
        F: FnMut(UserId, &[CellId]) -> Vec<CellId>,
    {
        let trajectories = self
            .trajectories
            .iter()
            .map(|tr| {
                let cells = f(tr.user, &tr.cells);
                assert_eq!(
                    cells.len(),
                    tr.cells.len(),
                    "trajectory map must preserve the horizon"
                );
                Trajectory {
                    user: tr.user,
                    cells,
                }
            })
            .collect();
        TrajectoryDb::new(self.grid.clone(), trajectories)
    }

    /// Maps every trajectory through a per-epoch transformation (e.g. a
    /// privacy mechanism), producing the perturbed database the server sees.
    pub fn map_cells<F>(&self, mut f: F) -> TrajectoryDb
    where
        F: FnMut(UserId, Timestamp, CellId) -> CellId,
    {
        let trajectories = self
            .trajectories
            .iter()
            .map(|tr| Trajectory {
                user: tr.user,
                cells: tr
                    .cells
                    .iter()
                    .enumerate()
                    .map(|(t, &c)| f(tr.user, t as Timestamp, c))
                    .collect(),
            })
            .collect();
        TrajectoryDb::new(self.grid.clone(), trajectories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    fn db() -> TrajectoryDb {
        let g = grid();
        let t0 = Trajectory {
            user: UserId(0),
            cells: vec![g.cell(0, 0), g.cell(1, 0), g.cell(1, 1), g.cell(1, 1)],
        };
        let t1 = Trajectory {
            user: UserId(1),
            cells: vec![g.cell(3, 3), g.cell(1, 0), g.cell(1, 1), g.cell(2, 1)],
        };
        let t2 = Trajectory {
            user: UserId(2),
            cells: vec![g.cell(0, 0), g.cell(0, 0), g.cell(0, 0), g.cell(0, 0)],
        };
        TrajectoryDb::new(g, vec![t0, t1, t2])
    }

    #[test]
    fn basic_accessors() {
        let db = db();
        assert_eq!(db.n_users(), 3);
        assert_eq!(db.horizon(), 4);
        assert_eq!(db.cell_of(UserId(0), 2), Some(db.grid().cell(1, 1)));
        assert_eq!(db.cell_of(UserId(9), 0), None);
        assert_eq!(db.cell_of(UserId(0), 99), None);
    }

    #[test]
    fn trajectory_window_and_occupancy() {
        let db = db();
        let tr = db.trajectory(UserId(0)).unwrap();
        assert_eq!(tr.window(1, 3).len(), 2);
        assert_eq!(tr.window(3, 99).len(), 1);
        assert_eq!(tr.occupancy(db.grid().cell(1, 1)), 2);
        assert_eq!(tr.distinct_cells().len(), 3);
    }

    #[test]
    fn users_at_and_occupancy() {
        let db = db();
        let g = db.grid().clone();
        let at = db.users_at(g.cell(1, 0), 1);
        assert_eq!(at.len(), 2);
        assert!(at.contains(&UserId(0)) && at.contains(&UserId(1)));
        let occ = db.occupancy_at(0);
        assert_eq!(occ[g.cell(0, 0).index()], 2);
        assert_eq!(occ[g.cell(3, 3).index()], 1);
        assert_eq!(occ.iter().sum::<u32>(), 3);
    }

    #[test]
    fn co_locations_of_user() {
        let db = db();
        let g = db.grid().clone();
        let cos = db.co_locations(UserId(0), 0, 4);
        // epochs 1 and 2 share cells with user 1; epoch 0 with user 2.
        assert_eq!(cos.len(), 3);
        assert!(cos.contains(&(1, g.cell(1, 0), UserId(1))));
        assert!(cos.contains(&(2, g.cell(1, 1), UserId(1))));
        assert!(cos.contains(&(0, g.cell(0, 0), UserId(2))));
    }

    #[test]
    fn co_location_counts_symmetric_key() {
        let db = db();
        let counts = db.co_location_counts();
        assert_eq!(counts.get(&(UserId(0), UserId(1))), Some(&2));
        assert_eq!(counts.get(&(UserId(0), UserId(2))), Some(&1));
        assert_eq!(counts.get(&(UserId(1), UserId(2))), None);
    }

    #[test]
    fn empirical_distribution_normalises() {
        let db = db();
        let dist = db.empirical_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let g = db.grid().clone();
        // Cell (0,0) holds 1 (user 0, epoch 0) + 4 (user 2) = 5 of 12 visits.
        assert!((dist[g.cell(0, 0).index()] - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn map_cells_perturbs_all_epochs() {
        let db = db();
        let g = db.grid().clone();
        let shifted = db.map_cells(|_, _, _| g.cell(2, 2));
        assert!(shifted
            .trajectories()
            .iter()
            .all(|tr| tr.cells.iter().all(|&c| c == g.cell(2, 2))));
        // Original untouched.
        assert_eq!(db.cell_of(UserId(0), 0), Some(g.cell(0, 0)));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_horizons_rejected() {
        let g = grid();
        TrajectoryDb::new(
            g.clone(),
            vec![
                Trajectory {
                    user: UserId(0),
                    cells: vec![g.cell(0, 0)],
                },
                Trajectory {
                    user: UserId(1),
                    cells: vec![g.cell(0, 0), g.cell(1, 1)],
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate user")]
    fn duplicate_users_rejected() {
        let g = grid();
        TrajectoryDb::new(
            g.clone(),
            vec![
                Trajectory {
                    user: UserId(0),
                    cells: vec![g.cell(0, 0)],
                },
                Trajectory {
                    user: UserId(0),
                    cells: vec![g.cell(1, 1)],
                },
            ],
        );
    }

    #[test]
    fn empty_db() {
        let db = TrajectoryDb::new(grid(), vec![]);
        assert_eq!(db.n_users(), 0);
        assert_eq!(db.horizon(), 0);
        assert!(db.co_location_counts().is_empty());
    }
}
