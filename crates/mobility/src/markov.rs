//! First-order Markov mobility on grid cells.
//!
//! Besides generating trajectories, the Markov kernel doubles as the
//! adversary's *mobility prior* in the inference attack (`panda-attack`) and
//! as the reachability model behind policy feasibility (`panda-core::repair`):
//! from cell `c`, one epoch later the user is in `c` (stay) or one of its
//! 8 neighbours.

use crate::trajectory::{Timestamp, Trajectory, TrajectoryDb, UserId};
use panda_geo::{CellId, GridMap};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sparse row-stochastic transition kernel over grid cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MobilityKernel {
    n_cells: u32,
    /// Per-cell `(target, probability)` rows, probabilities summing to 1.
    rows: Vec<Vec<(CellId, f64)>>,
}

impl MobilityKernel {
    /// The lazy-random-walk kernel: stay with probability `p_stay`,
    /// otherwise move to a uniformly-chosen 8-neighbour.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p_stay ≤ 1`.
    pub fn lazy_walk(grid: &GridMap, p_stay: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_stay), "p_stay must be in [0,1]");
        let mut rows = Vec::with_capacity(grid.n_cells() as usize);
        for cell in grid.cells() {
            let nbrs = grid.neighbors8(cell);
            let mut row = Vec::with_capacity(nbrs.len() + 1);
            if nbrs.is_empty() {
                row.push((cell, 1.0));
            } else {
                row.push((cell, p_stay));
                let p_move = (1.0 - p_stay) / nbrs.len() as f64;
                for n in nbrs {
                    row.push((n, p_move));
                }
            }
            rows.push(row);
        }
        MobilityKernel {
            n_cells: grid.n_cells(),
            rows,
        }
    }

    /// Builds a kernel from empirical transition counts of a trajectory
    /// database (add-one smoothing over the observed support; unseen cells
    /// fall back to self-loops). This is how the adversary learns a prior
    /// from public mobility data.
    pub fn from_trajectories(db: &TrajectoryDb) -> Self {
        let n = db.grid().n_cells();
        let mut counts: Vec<std::collections::HashMap<CellId, f64>> =
            vec![std::collections::HashMap::new(); n as usize];
        for tr in db.trajectories() {
            for w in tr.cells.windows(2) {
                *counts[w[0].index()].entry(w[1]).or_insert(0.0) += 1.0;
            }
        }
        let rows = counts
            .into_iter()
            .enumerate()
            .map(|(i, mut row)| {
                if row.is_empty() {
                    return vec![(CellId(i as u32), 1.0)];
                }
                // Add-one smoothing over observed targets.
                for v in row.values_mut() {
                    *v += 1.0;
                }
                let total: f64 = row.values().sum();
                let mut out: Vec<(CellId, f64)> =
                    row.into_iter().map(|(c, v)| (c, v / total)).collect();
                out.sort_by_key(|&(c, _)| c);
                out
            })
            .collect();
        MobilityKernel { n_cells: n, rows }
    }

    /// Number of cells.
    pub fn n_cells(&self) -> u32 {
        self.n_cells
    }

    /// The transition row of `cell`.
    pub fn row(&self, cell: CellId) -> &[(CellId, f64)] {
        &self.rows[cell.index()]
    }

    /// Transition probability `P(to | from)`.
    pub fn prob(&self, from: CellId, to: CellId) -> f64 {
        self.rows[from.index()]
            .iter()
            .find(|&&(c, _)| c == to)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Samples the next cell.
    pub fn step<R: Rng + ?Sized>(&self, rng: &mut R, from: CellId) -> CellId {
        let row = &self.rows[from.index()];
        let mut u: f64 = rng.gen();
        for &(c, p) in row {
            if u < p {
                return c;
            }
            u -= p;
        }
        row.last().expect("rows are never empty").0
    }

    /// The set of cells reachable from `from` within `steps` transitions —
    /// the feasibility constraint used for policy repair.
    pub fn reachable(&self, from: CellId, steps: u32) -> Vec<CellId> {
        let mut frontier = vec![from];
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(from);
        for _ in 0..steps {
            let mut next = Vec::new();
            for &c in &frontier {
                for &(t, p) in self.row(c) {
                    if p > 0.0 && seen.insert(t) {
                        next.push(t);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        seen.into_iter().collect()
    }

    /// Evolves a distribution over cells by one step: `next = dist · P`.
    pub fn evolve(&self, dist: &[f64]) -> Vec<f64> {
        assert_eq!(dist.len(), self.n_cells as usize);
        let mut next = vec![0.0; dist.len()];
        for (i, row) in self.rows.iter().enumerate() {
            let mass = dist[i];
            if mass == 0.0 {
                continue;
            }
            for &(c, p) in row {
                next[c.index()] += mass * p;
            }
        }
        next
    }
}

/// Parameters for [`generate_markov`].
#[derive(Debug, Clone, Copy)]
pub struct MarkovConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of epochs.
    pub horizon: Timestamp,
    /// Stay probability of the lazy walk.
    pub p_stay: f64,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            n_users: 50,
            horizon: 100,
            p_stay: 0.5,
        }
    }
}

/// Generates trajectories by running the lazy-walk kernel from uniform
/// starting cells.
pub fn generate_markov<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &GridMap,
    config: &MarkovConfig,
) -> TrajectoryDb {
    let kernel = MobilityKernel::lazy_walk(grid, config.p_stay);
    let mut trajectories = Vec::with_capacity(config.n_users as usize);
    for uid in 0..config.n_users {
        let mut cell = CellId(rng.gen_range(0..grid.n_cells()));
        let mut cells = Vec::with_capacity(config.horizon as usize);
        for _ in 0..config.horizon {
            cells.push(cell);
            cell = kernel.step(rng, cell);
        }
        trajectories.push(Trajectory {
            user: UserId(uid),
            cells,
        });
    }
    TrajectoryDb::new(grid.clone(), trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(5, 5, 100.0)
    }

    #[test]
    fn lazy_walk_rows_are_stochastic() {
        let k = MobilityKernel::lazy_walk(&grid(), 0.4);
        for cell in grid().cells() {
            let total: f64 = k.row(cell).iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "row {cell} sums to {total}");
        }
    }

    #[test]
    fn lazy_walk_moves_to_neighbors_only() {
        let g = grid();
        let k = MobilityKernel::lazy_walk(&g, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        let c = g.cell(2, 2);
        for _ in 0..500 {
            let next = k.step(&mut rng, c);
            assert!(g.chebyshev_cells(c, next) <= 1);
        }
    }

    #[test]
    fn prob_lookup() {
        let g = grid();
        let k = MobilityKernel::lazy_walk(&g, 0.2);
        assert!((k.prob(g.cell(2, 2), g.cell(2, 2)) - 0.2).abs() < 1e-12);
        assert!((k.prob(g.cell(2, 2), g.cell(3, 2)) - 0.1).abs() < 1e-12);
        assert_eq!(k.prob(g.cell(0, 0), g.cell(4, 4)), 0.0);
    }

    #[test]
    fn reachable_grows_like_chebyshev_balls() {
        let g = grid();
        let k = MobilityKernel::lazy_walk(&g, 0.5);
        let r1 = k.reachable(g.cell(2, 2), 1);
        assert_eq!(r1.len(), 9);
        let r2 = k.reachable(g.cell(2, 2), 2);
        assert_eq!(r2.len(), 25);
        let r0 = k.reachable(g.cell(2, 2), 0);
        assert_eq!(r0, vec![g.cell(2, 2)]);
    }

    #[test]
    fn evolve_preserves_mass() {
        let g = grid();
        let k = MobilityKernel::lazy_walk(&g, 0.3);
        let mut dist = vec![0.0; g.n_cells() as usize];
        dist[g.cell(2, 2).index()] = 1.0;
        for _ in 0..5 {
            dist = k.evolve(&dist);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        // After 5 steps mass has spread beyond the centre cell.
        assert!(dist[g.cell(2, 2).index()] < 0.9);
    }

    #[test]
    fn empirical_kernel_matches_behaviour() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(2);
        let db = generate_markov(
            &mut rng,
            &g,
            &MarkovConfig {
                n_users: 40,
                horizon: 200,
                p_stay: 0.7,
            },
        );
        let k = MobilityKernel::from_trajectories(&db);
        // Self-transition should dominate for a sticky walk.
        let c = g.cell(2, 2);
        let p_self = k.prob(c, c);
        assert!(p_self > 0.4, "learned p_stay {p_self}");
        // Rows normalise.
        let total: f64 = k.row(c).iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn markov_trajectories_are_step_bounded() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(3);
        let db = generate_markov(&mut rng, &g, &MarkovConfig::default());
        for tr in db.trajectories() {
            for w in tr.cells.windows(2) {
                assert!(g.chebyshev_cells(w[0], w[1]) <= 1);
            }
        }
    }
}
