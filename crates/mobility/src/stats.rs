//! Mobility statistics: the measurable signatures behind the dataset
//! substitution argument (DESIGN.md §3).
//!
//! The claim that the synthetic generators stand in for GeoLife/Gowalla
//! rests on matching the statistics the evaluation consumes. This module
//! makes those statistics first-class so the claim is *testable*:
//!
//! * [`radius_of_gyration`] — the classic human-mobility localisation
//!   measure; commuters have small, stable radii.
//! * [`revisit_ratio`] — fraction of epochs spent in previously-visited
//!   cells; routine-driven data revisits heavily.
//! * [`hop_lengths`] — per-epoch displacement distribution; Lévy data is
//!   heavy-tailed, commuter data is bimodal (dwell + commute).
//! * [`top_k_share`] — visit concentration in the k most-visited cells
//!   (check-in data is Zipf-concentrated).

use crate::trajectory::{Trajectory, TrajectoryDb};
use panda_geo::{GridMap, Point};
use std::collections::HashMap;

/// Radius of gyration of one trajectory: RMS distance of visited positions
/// from their centre of mass (grid length units).
pub fn radius_of_gyration(grid: &GridMap, tr: &Trajectory) -> f64 {
    if tr.cells.is_empty() {
        return 0.0;
    }
    let n = tr.cells.len() as f64;
    let mut com = Point::ORIGIN;
    for &c in &tr.cells {
        com += grid.center(c) / n;
    }
    let ms = tr
        .cells
        .iter()
        .map(|&c| grid.center(c).distance_sq(com))
        .sum::<f64>()
        / n;
    ms.sqrt()
}

/// Mean radius of gyration over all users.
pub fn mean_radius_of_gyration(db: &TrajectoryDb) -> f64 {
    if db.n_users() == 0 {
        return 0.0;
    }
    db.trajectories()
        .iter()
        .map(|tr| radius_of_gyration(db.grid(), tr))
        .sum::<f64>()
        / db.n_users() as f64
}

/// Fraction of epochs (after the first) spent in a cell the user had
/// already visited.
pub fn revisit_ratio(tr: &Trajectory) -> f64 {
    if tr.cells.len() <= 1 {
        return 0.0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut revisits = 0usize;
    for (i, &c) in tr.cells.iter().enumerate() {
        if !seen.insert(c) && i > 0 {
            revisits += 1;
        }
    }
    revisits as f64 / (tr.cells.len() - 1) as f64
}

/// Mean revisit ratio over all users.
pub fn mean_revisit_ratio(db: &TrajectoryDb) -> f64 {
    if db.n_users() == 0 {
        return 0.0;
    }
    db.trajectories().iter().map(revisit_ratio).sum::<f64>() / db.n_users() as f64
}

/// All per-epoch displacement lengths (grid length units), pooled over
/// users. Zero-length dwells are included — their share is itself a
/// signature (commuters dwell most of the day).
pub fn hop_lengths(db: &TrajectoryDb) -> Vec<f64> {
    let grid = db.grid();
    let mut out = Vec::new();
    for tr in db.trajectories() {
        for w in tr.cells.windows(2) {
            out.push(grid.distance(w[0], w[1]));
        }
    }
    out
}

/// Share of all visits captured by the `k` most-visited cells, in `[0, 1]`.
pub fn top_k_share(db: &TrajectoryDb, k: usize) -> f64 {
    let mut counts: HashMap<panda_geo::CellId, usize> = HashMap::new();
    let mut total = 0usize;
    for tr in db.trajectories() {
        for &c in &tr.cells {
            *counts.entry(c).or_insert(0) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = counts.into_values().collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted.iter().take(k).sum::<usize>() as f64 / total as f64
}

/// Summary bundle for one database — what the substitution tests compare.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilitySignature {
    /// Mean radius of gyration (length units).
    pub radius_of_gyration: f64,
    /// Mean revisit ratio.
    pub revisit_ratio: f64,
    /// Fraction of epoch transitions that are dwells (zero displacement).
    pub dwell_fraction: f64,
    /// Share of visits in the 5 hottest cells.
    pub top5_share: f64,
}

/// Computes the [`MobilitySignature`] of a database.
pub fn signature(db: &TrajectoryDb) -> MobilitySignature {
    let hops = hop_lengths(db);
    let dwell_fraction = if hops.is_empty() {
        0.0
    } else {
        hops.iter().filter(|&&h| h == 0.0).count() as f64 / hops.len() as f64
    };
    MobilitySignature {
        radius_of_gyration: mean_radius_of_gyration(db),
        revisit_ratio: mean_revisit_ratio(db),
        dwell_fraction,
        top5_share: top_k_share(db, 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geolife_like::{beijing_grid, generate_geolife_like, GeoLifeLikeConfig};
    use crate::levy::{generate_levy, LevyConfig};
    use crate::trajectory::UserId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(8, 8, 100.0)
    }

    #[test]
    fn gyration_of_stationary_user_is_zero() {
        let g = grid();
        let tr = Trajectory {
            user: UserId(0),
            cells: vec![g.cell(3, 3); 10],
        };
        assert_eq!(radius_of_gyration(&g, &tr), 0.0);
        assert_eq!(revisit_ratio(&tr), 1.0);
    }

    #[test]
    fn gyration_of_two_point_commuter() {
        let g = grid();
        // Half the time at (0,3), half at (4,3): rg = distance/2 = 200.
        let tr = Trajectory {
            user: UserId(0),
            cells: vec![g.cell(0, 3), g.cell(4, 3), g.cell(0, 3), g.cell(4, 3)],
        };
        assert!((radius_of_gyration(&g, &tr) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn revisit_ratio_of_explorer_is_zero() {
        let g = grid();
        let tr = Trajectory {
            user: UserId(0),
            cells: (0..8).map(|i| g.cell(i, 0)).collect(),
        };
        assert_eq!(revisit_ratio(&tr), 0.0);
    }

    #[test]
    fn top_k_share_bounds() {
        let g = grid();
        let db = TrajectoryDb::new(
            g.clone(),
            vec![Trajectory {
                user: UserId(0),
                cells: vec![g.cell(0, 0), g.cell(0, 0), g.cell(1, 1), g.cell(2, 2)],
            }],
        );
        assert!((top_k_share(&db, 1) - 0.5).abs() < 1e-12);
        assert!((top_k_share(&db, 10) - 1.0).abs() < 1e-12);
        let empty = TrajectoryDb::new(g, vec![]);
        assert_eq!(top_k_share(&empty, 3), 0.0);
    }

    /// The substitution claim, as a test: the GeoLife stand-in is
    /// routine-driven (high revisits, many dwells) while Lévy flights are
    /// exploratory (few revisits, no dwells) — the generators really do
    /// produce distinguishable mobility classes.
    #[test]
    fn geolife_like_is_routine_levy_is_exploratory() {
        let g = beijing_grid(12, 500.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let commuters = generate_geolife_like(
            &mut rng,
            &g,
            &GeoLifeLikeConfig {
                n_users: 30,
                days: 5,
                ..Default::default()
            },
        );
        // Lévy steps must be cell-scale to register at grid resolution
        // (median step ≈ 1.5 cells here; the default 20 m min-step would
        // rarely leave a 500 m cell and look sedentary).
        let levy = generate_levy(
            &mut rng,
            &g,
            &LevyConfig {
                n_users: 30,
                horizon: 120,
                alpha: 1.6,
                step_min: 500.0,
                step_max: 6_000.0,
            },
        );
        let sig_c = signature(&commuters);
        let sig_l = signature(&levy);
        assert!(
            sig_c.revisit_ratio > 0.8,
            "commuters must revisit heavily: {sig_c:?}"
        );
        assert!(
            sig_c.revisit_ratio > sig_l.revisit_ratio + 0.1,
            "commuters {sig_c:?} vs levy {sig_l:?}"
        );
        assert!(
            sig_c.dwell_fraction > sig_l.dwell_fraction,
            "commuters dwell more: {sig_c:?} vs {sig_l:?}"
        );
        assert!(sig_c.top5_share > 0.2, "routines concentrate visits");
    }
}
