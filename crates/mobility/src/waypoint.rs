//! The random-waypoint mobility model.
//!
//! The classic synthetic mobility baseline: pick a uniform destination,
//! travel toward it at a sampled speed, pause, repeat. Continuous positions
//! are sampled once per epoch and discretised to grid cells.

use crate::trajectory::{Timestamp, Trajectory, TrajectoryDb, UserId};
use panda_geo::{sample, GridMap, Point};
use rand::Rng;

/// Parameters for [`generate_waypoint`].
#[derive(Debug, Clone, Copy)]
pub struct WaypointConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of epochs.
    pub horizon: Timestamp,
    /// Minimum speed in length units per epoch.
    pub speed_min: f64,
    /// Maximum speed in length units per epoch.
    pub speed_max: f64,
    /// Maximum pause, in whole epochs, after reaching a waypoint.
    pub pause_max: u32,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig {
            n_users: 50,
            horizon: 100,
            speed_min: 50.0,
            speed_max: 400.0,
            pause_max: 3,
        }
    }
}

/// State of one walker.
struct Walker {
    pos: Point,
    target: Point,
    speed: f64,
    pause_left: u32,
}

/// Generates a random-waypoint [`TrajectoryDb`] on `grid`.
///
/// # Panics
///
/// Panics when speeds are non-positive or inverted.
pub fn generate_waypoint<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &GridMap,
    config: &WaypointConfig,
) -> TrajectoryDb {
    assert!(
        config.speed_min > 0.0 && config.speed_max >= config.speed_min,
        "invalid speed range"
    );
    let min = Point::new(0.0, 0.0);
    let max = Point::new(
        grid.width() as f64 * grid.cell_size(),
        grid.height() as f64 * grid.cell_size(),
    );
    let mut trajectories = Vec::with_capacity(config.n_users as usize);
    for uid in 0..config.n_users {
        let start = sample::uniform_in_rect(rng, min, max);
        let mut w = Walker {
            pos: start,
            target: sample::uniform_in_rect(rng, min, max),
            speed: rng.gen_range(config.speed_min..=config.speed_max),
            pause_left: 0,
        };
        let mut cells = Vec::with_capacity(config.horizon as usize);
        for _ in 0..config.horizon {
            cells.push(grid.nearest_cell(w.pos));
            if w.pause_left > 0 {
                w.pause_left -= 1;
                continue;
            }
            let to_target = w.target - w.pos;
            let dist = to_target.norm();
            if dist <= w.speed {
                // Arrive and pick the next leg.
                w.pos = w.target;
                w.target = sample::uniform_in_rect(rng, min, max);
                w.speed = rng.gen_range(config.speed_min..=config.speed_max);
                w.pause_left = rng.gen_range(0..=config.pause_max);
            } else {
                w.pos += to_target * (w.speed / dist);
            }
        }
        trajectories.push(Trajectory {
            user: UserId(uid),
            cells,
        });
    }
    TrajectoryDb::new(grid.clone(), trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(10, 10, 100.0)
    }

    #[test]
    fn generates_requested_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = WaypointConfig {
            n_users: 7,
            horizon: 25,
            ..Default::default()
        };
        let db = generate_waypoint(&mut rng, &grid(), &cfg);
        assert_eq!(db.n_users(), 7);
        assert_eq!(db.horizon(), 25);
    }

    #[test]
    fn movement_is_speed_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = WaypointConfig {
            n_users: 5,
            horizon: 60,
            speed_min: 10.0,
            speed_max: 150.0,
            pause_max: 2,
        };
        let g = grid();
        let db = generate_waypoint(&mut rng, &g, &cfg);
        // Per-epoch displacement between cell centres is bounded by the max
        // speed plus one cell of discretisation slack on each end.
        let bound = 150.0 + 2.0 * g.cell_size() * std::f64::consts::SQRT_2;
        for tr in db.trajectories() {
            for w in tr.cells.windows(2) {
                assert!(g.distance(w[0], w[1]) <= bound);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = WaypointConfig::default();
        let g = grid();
        let a = generate_waypoint(&mut SmallRng::seed_from_u64(3), &g, &cfg);
        let b = generate_waypoint(&mut SmallRng::seed_from_u64(3), &g, &cfg);
        assert_eq!(a.trajectories(), b.trajectories());
    }

    #[test]
    fn walkers_eventually_move() {
        let mut rng = SmallRng::seed_from_u64(4);
        let db = generate_waypoint(&mut rng, &grid(), &WaypointConfig::default());
        let moved = db
            .trajectories()
            .iter()
            .filter(|tr| tr.distinct_cells().len() > 1)
            .count();
        assert!(moved > db.n_users() / 2, "most walkers must move");
    }
}
