//! # panda-mobility
//!
//! Synthetic mobility substrate for the PANDA reproduction.
//!
//! The demo evaluates on **GeoLife** (dense GPS trajectories, Beijing) and
//! **Gowalla** (sparse check-ins). Neither dataset can ship with a
//! reproduction, and nothing in the paper's evaluation depends on the real
//! coordinates — every metric consumes `(user, epoch, cell)` triples and
//! their statistical structure (revisit patterns, spatial autocorrelation,
//! heavy-tailed place popularity). This crate generates seeded synthetic
//! datasets with exactly that structure:
//!
//! * [`geolife_like`] — dense, regularly-sampled trajectories from a
//!   home/work-anchored daily routine with random-waypoint commutes and
//!   Zipf-popular errands. Anchored on a Beijing-scale grid.
//! * [`gowalla_like`] — sparse check-ins at Zipf-popular POIs with bursty
//!   (heavy-tailed) inter-arrival times.
//! * [`waypoint`], [`levy`], [`markov`] — the classic mobility models used
//!   as building blocks and as alternative workloads.
//! * [`trajectory`] — the dense trajectory database all experiments consume,
//!   with co-location queries (the substrate of contact tracing).
//!
//! Everything is deterministic under a caller-supplied RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod geolife_like;
pub mod gowalla_like;
pub mod levy;
pub mod markov;
pub mod poi;
pub mod stats;
pub mod trajectory;
pub mod waypoint;

pub use geolife_like::{generate_geolife_like, GeoLifeLikeConfig};
pub use gowalla_like::{generate_gowalla_like, CheckIn, GowallaLikeConfig};
pub use trajectory::{Timestamp, Trajectory, TrajectoryDb, UserId};
