//! Points of interest with Zipf-distributed popularity.
//!
//! Check-in datasets (Gowalla) are dominated by a heavy-tailed place
//! popularity: a few venues absorb most visits. A [`PoiSet`] models this
//! with an explicit Zipf law over randomly-placed POI cells; both synthetic
//! generators use it for "errand" and "check-in" destinations.

use panda_geo::{CellId, GridMap};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of POI cells with Zipf(s) popularity weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoiSet {
    cells: Vec<CellId>,
    /// Cumulative popularity, normalised to end at 1.
    cumulative: Vec<f64>,
    exponent: f64,
}

impl PoiSet {
    /// Places `n` distinct POIs uniformly on the grid, ranked by Zipf
    /// exponent `s` (rank-`k` weight `∝ 1/k^s`).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or exceeds the number of cells, or `s < 0`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, grid: &GridMap, n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one POI");
        assert!(n as u64 <= grid.n_cells() as u64, "more POIs than cells");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut all: Vec<CellId> = grid.cells().collect();
        all.shuffle(rng);
        all.truncate(n);
        Self::from_ranked_cells(all, s)
    }

    /// Builds a POI set from cells already ordered by rank (most popular
    /// first).
    pub fn from_ranked_cells(cells: Vec<CellId>, s: f64) -> Self {
        assert!(!cells.is_empty());
        let mut cumulative = Vec::with_capacity(cells.len());
        let mut acc = 0.0;
        for k in 1..=cells.len() {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        PoiSet {
            cells,
            cumulative,
            exponent: s,
        }
    }

    /// The POI cells, most popular first.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when there are no POIs (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Samples a POI by popularity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CellId {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < u);
        self.cells[idx.min(self.cells.len() - 1)]
    }

    /// Exact popularity of the rank-`k` POI (0-based).
    pub fn popularity(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        self.cumulative[k] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn popularity_normalises_and_decays() {
        let cells: Vec<CellId> = (0..10).map(CellId).collect();
        let pois = PoiSet::from_ranked_cells(cells, 1.2);
        let total: f64 = (0..10).map(|k| pois.popularity(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..10 {
            assert!(pois.popularity(k) < pois.popularity(k - 1));
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let cells: Vec<CellId> = (0..4).map(CellId).collect();
        let pois = PoiSet::from_ranked_cells(cells, 0.0);
        for k in 0..4 {
            assert!((pois.popularity(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_popularity() {
        let cells: Vec<CellId> = (0..5).map(CellId).collect();
        let pois = PoiSet::from_ranked_cells(cells, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        const N: usize = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..N {
            counts[pois.sample(&mut rng).index()] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / N as f64;
            assert!(
                (emp - pois.popularity(k)).abs() < 0.01,
                "rank {k}: {emp} vs {}",
                pois.popularity(k)
            );
        }
    }

    #[test]
    fn generate_places_distinct_pois() {
        let grid = GridMap::new(8, 8, 100.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let pois = PoiSet::generate(&mut rng, &grid, 20, 1.0);
        assert_eq!(pois.len(), 20);
        let mut cells = pois.cells().to_vec();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), 20, "POIs must be distinct");
        assert!(cells.iter().all(|&c| grid.contains(c)));
    }

    #[test]
    #[should_panic(expected = "more POIs than cells")]
    fn too_many_pois_panics() {
        let grid = GridMap::new(2, 2, 100.0);
        let mut rng = SmallRng::seed_from_u64(3);
        PoiSet::generate(&mut rng, &grid, 5, 1.0);
    }
}
