//! GeoLife-like synthetic trajectories.
//!
//! **Substitution note (see DESIGN.md §3).** The demo evaluates on GeoLife
//! [Zheng et al., MDM'09]: dense GPS trajectories of Beijing commuters. The
//! statistics the PANDA evaluation actually consumes are (a) dense, regular
//! sampling, (b) strong home/work anchoring with high revisit rates,
//! (c) bounded per-epoch movement, and (d) occasional irregular errands.
//! This generator reproduces those with an explicit daily routine:
//!
//! * Each user gets a **home** cell and a **work** cell (work cells cluster
//!   in a central "business district" so that co-location actually happens).
//! * A day is `epochs_per_day` epochs: night at home, a morning commute
//!   along the straight line between home and work, the workday at work
//!   (with short walks to nearby lunch cells), an evening commute back and,
//!   with some probability, an evening errand at a Zipf-popular POI.
//! * Weekends (`day % 7 ∈ {5, 6}`) replace work with home time and errands.
//!
//! The grid is anchored at Beijing's coordinates so experiments can report
//! kilometre-scale utility errors.

use crate::poi::PoiSet;
use crate::trajectory::{Timestamp, Trajectory, TrajectoryDb, UserId};
use panda_geo::{CellId, GridMap, Point};
use rand::Rng;

/// Parameters for [`generate_geolife_like`].
#[derive(Debug, Clone, Copy)]
pub struct GeoLifeLikeConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of simulated days.
    pub days: u32,
    /// Epochs per day (24 ⇒ hourly sampling, the common GeoLife resampling).
    pub epochs_per_day: u32,
    /// Number of POIs for errands.
    pub n_pois: usize,
    /// Zipf exponent of POI popularity.
    pub poi_exponent: f64,
    /// Probability of an evening errand on any day.
    pub errand_prob: f64,
    /// Fraction of the grid's span used for the central business district
    /// where work cells concentrate (e.g. 0.25 ⇒ central quarter).
    pub cbd_fraction: f64,
}

impl Default for GeoLifeLikeConfig {
    fn default() -> Self {
        GeoLifeLikeConfig {
            n_users: 100,
            days: 14,
            epochs_per_day: 24,
            n_pois: 30,
            poi_exponent: 1.2,
            errand_prob: 0.3,
            cbd_fraction: 0.3,
        }
    }
}

/// A Beijing-anchored grid sized for city-scale experiments: `n × n` cells
/// of `cell_m` metres.
pub fn beijing_grid(n: u32, cell_m: f64) -> GridMap {
    GridMap::new(n, n, cell_m).with_anchor(39.82, 116.25)
}

/// Generates a GeoLife-like [`TrajectoryDb`].
///
/// # Panics
///
/// Panics when `epochs_per_day < 8` (the routine needs at least distinct
/// night/commute/day phases).
pub fn generate_geolife_like<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &GridMap,
    config: &GeoLifeLikeConfig,
) -> TrajectoryDb {
    assert!(
        config.epochs_per_day >= 8,
        "need at least 8 epochs per day for the daily routine"
    );
    let pois = PoiSet::generate(rng, grid, config.n_pois.max(1), config.poi_exponent);
    let horizon = (config.days * config.epochs_per_day) as Timestamp;

    // Central business district bounds (in cells).
    let cbd_w = ((grid.width() as f64 * config.cbd_fraction).ceil() as u32).max(1);
    let cbd_h = ((grid.height() as f64 * config.cbd_fraction).ceil() as u32).max(1);
    let cbd_c0 = (grid.width() - cbd_w) / 2;
    let cbd_r0 = (grid.height() - cbd_h) / 2;

    let mut trajectories = Vec::with_capacity(config.n_users as usize);
    for uid in 0..config.n_users {
        let home = CellId(rng.gen_range(0..grid.n_cells()));
        let work = grid.cell(
            cbd_c0 + rng.gen_range(0..cbd_w),
            cbd_r0 + rng.gen_range(0..cbd_h),
        );
        let mut cells = Vec::with_capacity(horizon as usize);
        for day in 0..config.days {
            let weekend = day % 7 >= 5;
            let errand = rng.gen_bool(config.errand_prob);
            let errand_poi = pois.sample(rng);
            for hour in 0..config.epochs_per_day {
                let cell = daily_cell(
                    grid,
                    home,
                    work,
                    weekend,
                    errand,
                    errand_poi,
                    hour,
                    config.epochs_per_day,
                    rng,
                );
                cells.push(cell);
            }
        }
        trajectories.push(Trajectory {
            user: UserId(uid),
            cells,
        });
    }
    TrajectoryDb::new(grid.clone(), trajectories)
}

/// The cell occupied at `hour` of a day with the given routine flags.
#[allow(clippy::too_many_arguments)]
fn daily_cell<R: Rng + ?Sized>(
    grid: &GridMap,
    home: CellId,
    work: CellId,
    weekend: bool,
    errand: bool,
    errand_poi: CellId,
    hour: u32,
    epochs_per_day: u32,
    rng: &mut R,
) -> CellId {
    // Phase boundaries scaled to the day length (defaults: commute at 7-9,
    // work 9-17, return 17-19, evening after).
    let frac = hour as f64 / epochs_per_day as f64;
    if weekend {
        return if errand && (0.4..0.7).contains(&frac) {
            errand_poi
        } else if (0.45..0.6).contains(&frac) {
            // Weekend stroll near home.
            jitter(grid, home, rng)
        } else {
            home
        };
    }
    match frac {
        f if f < 0.29 => home,
        f if f < 0.375 => commute_cell(grid, home, work, (f - 0.29) / 0.085),
        f if f < 0.7 => {
            // Workday, with a mid-day lunch walk.
            if (0.5..0.54).contains(&f) {
                jitter(grid, work, rng)
            } else {
                work
            }
        }
        f if f < 0.8 => commute_cell(grid, work, home, (f - 0.7) / 0.1),
        _ => {
            if errand {
                errand_poi
            } else {
                home
            }
        }
    }
}

/// A point `t ∈ [0,1]` of the way along the straight line between two cell
/// centres, snapped to the grid.
fn commute_cell(grid: &GridMap, from: CellId, to: CellId, t: f64) -> CellId {
    let p = grid.center(from).lerp(grid.center(to), t.clamp(0.0, 1.0));
    grid.nearest_cell(p)
}

/// A uniformly-chosen 8-neighbour (or the cell itself).
fn jitter<R: Rng + ?Sized>(grid: &GridMap, cell: CellId, rng: &mut R) -> CellId {
    let mut options = grid.neighbors8(cell);
    options.push(cell);
    options[rng.gen_range(0..options.len())]
}

/// Convenience offset helper used by tests and examples: the cell centre of
/// a trajectory epoch as a plane point.
pub fn position_at(grid: &GridMap, tr: &Trajectory, t: Timestamp) -> Option<Point> {
    tr.at(t).map(|c| grid.center(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn generate(seed: u64) -> TrajectoryDb {
        let grid = beijing_grid(16, 500.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_geolife_like(&mut rng, &grid, &GeoLifeLikeConfig::default())
    }

    #[test]
    fn shape_and_domain() {
        let db = generate(1);
        assert_eq!(db.n_users(), 100);
        assert_eq!(db.horizon(), 14 * 24);
        for tr in db.trajectories() {
            assert!(tr.cells.iter().all(|&c| db.grid().contains(c)));
        }
    }

    #[test]
    fn home_anchoring_dominates_nights() {
        let db = generate(2);
        // At midnight (hour 0) every user is at home; homes are the modal
        // cell of the trajectory's night hours across days.
        for tr in db.trajectories().iter().take(20) {
            let night0 = tr.at(0).unwrap();
            for day in 1..14u32 {
                assert_eq!(
                    tr.at(day * 24).unwrap(),
                    night0,
                    "user must be home at midnight"
                );
            }
        }
    }

    #[test]
    fn high_revisit_rate() {
        // GeoLife-like data revisits few distinct cells relative to epochs.
        let db = generate(3);
        for tr in db.trajectories().iter().take(20) {
            let distinct = tr.distinct_cells().len();
            assert!(
                distinct <= 40,
                "too many distinct cells for a routine commuter: {distinct}"
            );
        }
    }

    #[test]
    fn workdays_create_colocation() {
        // Work cells concentrate in the CBD, so midday co-location counts
        // must be substantial.
        let db = generate(4);
        let midday_occ = db.occupancy_at(12);
        let max_cell = midday_occ.iter().max().copied().unwrap();
        assert!(
            max_cell >= 3,
            "CBD should concentrate users at midday (max {max_cell})"
        );
    }

    #[test]
    fn weekends_differ_from_weekdays() {
        let db = generate(5);
        let tr = &db.trajectories()[0];
        // Midday Monday (day 0) is work; midday Saturday (day 5) is mostly
        // home/stroll: they should differ for a commuter whose home != work.
        let monday_noon = tr.at(12).unwrap();
        let saturday_noon = tr.at(5 * 24 + 12).unwrap();
        let home = tr.at(0).unwrap();
        if monday_noon != home {
            assert_ne!(
                monday_noon, saturday_noon,
                "weekend noon should not be at work"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.trajectories(), b.trajectories());
    }

    #[test]
    fn grid_is_beijing_anchored() {
        let g = beijing_grid(8, 1000.0);
        let (lat, lon) = g.lat_lon(g.cell(0, 0)).unwrap();
        assert!((lat - 39.82).abs() < 0.1);
        assert!((lon - 116.25).abs() < 0.1);
    }
}
