//! Gowalla-like synthetic check-ins.
//!
//! **Substitution note (see DESIGN.md §3).** Gowalla [Cho et al., KDD'11]
//! is a sparse check-in dataset: users visit venues occasionally, venue
//! popularity is heavy-tailed, and users mix a small personal set of
//! favourites with globally popular places. This generator reproduces that
//! structure:
//!
//! * venues are Zipf-popular POIs ([`crate::poi::PoiSet`]);
//! * each user keeps a small personal favourite set (chosen by popularity)
//!   and revisits it with probability `p_favourite`, otherwise exploring a
//!   popularity-weighted venue — the "preferential return" mechanism of
//!   human-mobility studies;
//! * inter-check-in gaps are heavy-tailed (truncated Pareto), giving the
//!   bursty timelines check-in data shows.
//!
//! The sparse [`CheckIn`] stream is the native output; [`densify`] converts
//! it to a dense [`TrajectoryDb`] (hold-last-position semantics) for the
//! experiments that need per-epoch locations.

use crate::levy::pareto_step;
use crate::poi::PoiSet;
use crate::trajectory::{Timestamp, Trajectory, TrajectoryDb, UserId};
use panda_geo::{CellId, GridMap};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single check-in event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckIn {
    /// Who checked in.
    pub user: UserId,
    /// When (epoch).
    pub time: Timestamp,
    /// Where (venue cell).
    pub cell: CellId,
}

/// Parameters for [`generate_gowalla_like`].
#[derive(Debug, Clone, Copy)]
pub struct GowallaLikeConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of epochs in the observation window.
    pub horizon: Timestamp,
    /// Number of venues.
    pub n_venues: usize,
    /// Zipf exponent of venue popularity (Gowalla fits ≈ 1.0–1.3).
    pub venue_exponent: f64,
    /// Per-user favourite-set size.
    pub n_favourites: usize,
    /// Probability a check-in returns to a favourite.
    pub p_favourite: f64,
    /// Pareto tail exponent of inter-check-in gaps.
    pub gap_alpha: f64,
    /// Minimum gap between a user's check-ins, in epochs.
    pub gap_min: f64,
    /// Maximum gap, in epochs.
    pub gap_max: f64,
}

impl Default for GowallaLikeConfig {
    fn default() -> Self {
        GowallaLikeConfig {
            n_users: 100,
            horizon: 336, // two weeks of hourly epochs
            n_venues: 40,
            venue_exponent: 1.1,
            n_favourites: 4,
            p_favourite: 0.6,
            gap_alpha: 1.3,
            gap_min: 1.0,
            gap_max: 72.0,
        }
    }
}

/// Generates a Gowalla-like check-in stream, sorted by `(user, time)`.
pub fn generate_gowalla_like<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &GridMap,
    config: &GowallaLikeConfig,
) -> Vec<CheckIn> {
    assert!(config.n_favourites >= 1, "need at least one favourite");
    let venues = PoiSet::generate(rng, grid, config.n_venues, config.venue_exponent);
    let mut checkins = Vec::new();
    for uid in 0..config.n_users {
        // Favourite set: popularity-weighted without replacement.
        let mut favourites = Vec::with_capacity(config.n_favourites);
        let mut guard = 0;
        while favourites.len() < config.n_favourites && guard < 1000 {
            let v = venues.sample(rng);
            if !favourites.contains(&v) {
                favourites.push(v);
            }
            guard += 1;
        }
        let mut t = rng.gen_range(0.0..config.gap_max);
        while (t as Timestamp) < config.horizon {
            let cell = if rng.gen_bool(config.p_favourite) {
                favourites[rng.gen_range(0..favourites.len())]
            } else {
                venues.sample(rng)
            };
            checkins.push(CheckIn {
                user: UserId(uid),
                time: t as Timestamp,
                cell,
            });
            t += pareto_step(rng, config.gap_alpha, config.gap_min, config.gap_max);
        }
    }
    checkins.sort_by_key(|c| (c.user, c.time));
    checkins
}

/// Converts a check-in stream into a dense [`TrajectoryDb`] with
/// hold-last-position semantics; epochs before a user's first check-in hold
/// the first check-in's venue. Users without check-ins are dropped.
pub fn densify(grid: &GridMap, checkins: &[CheckIn], horizon: Timestamp) -> TrajectoryDb {
    use std::collections::BTreeMap;
    let mut per_user: BTreeMap<UserId, Vec<(Timestamp, CellId)>> = BTreeMap::new();
    for c in checkins {
        per_user.entry(c.user).or_default().push((c.time, c.cell));
    }
    let trajectories = per_user
        .into_iter()
        .map(|(user, mut events)| {
            events.sort_by_key(|&(t, _)| t);
            let mut cells = Vec::with_capacity(horizon as usize);
            let mut current = events[0].1;
            let mut next_idx = 0;
            for t in 0..horizon {
                while next_idx < events.len() && events[next_idx].0 <= t {
                    current = events[next_idx].1;
                    next_idx += 1;
                }
                cells.push(current);
            }
            Trajectory { user, cells }
        })
        .collect();
    TrajectoryDb::new(grid.clone(), trajectories)
}

/// Venue visit counts (dense, indexed by cell id) — the popularity curve
/// the generator is supposed to reproduce.
pub fn venue_counts(grid: &GridMap, checkins: &[CheckIn]) -> Vec<u32> {
    let mut counts = vec![0u32; grid.n_cells() as usize];
    for c in checkins {
        counts[c.cell.index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(12, 12, 200.0)
    }

    fn checkins(seed: u64) -> Vec<CheckIn> {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_gowalla_like(&mut rng, &grid(), &GowallaLikeConfig::default())
    }

    #[test]
    fn stream_is_sorted_and_in_window() {
        let cs = checkins(1);
        assert!(!cs.is_empty());
        for w in cs.windows(2) {
            assert!((w[0].user, w[0].time) <= (w[1].user, w[1].time));
        }
        assert!(cs.iter().all(|c| c.time < 336));
        assert!(cs.iter().all(|c| grid().contains(c.cell)));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let cs = checkins(2);
        let mut counts = venue_counts(&grid(), &cs);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u32 = counts.iter().sum();
        let top5: u32 = counts.iter().take(5).sum();
        // Zipf(1.1) over 40 venues: top-5 carries a large share.
        assert!(
            top5 as f64 / total as f64 > 0.3,
            "top-5 share {}",
            top5 as f64 / total as f64
        );
    }

    #[test]
    fn users_revisit_favourites() {
        let cs = checkins(3);
        // For most users, the modal venue should account for a sizeable
        // fraction of their check-ins.
        use std::collections::HashMap;
        let mut per_user: HashMap<UserId, Vec<CellId>> = HashMap::new();
        for c in &cs {
            per_user.entry(c.user).or_default().push(c.cell);
        }
        let mut concentrated = 0;
        let mut eligible = 0;
        for (_, cells) in per_user {
            if cells.len() < 5 {
                continue;
            }
            eligible += 1;
            let mut counts: HashMap<CellId, usize> = HashMap::new();
            for c in &cells {
                *counts.entry(*c).or_insert(0) += 1;
            }
            let modal = counts.values().max().copied().unwrap();
            if modal as f64 / cells.len() as f64 > 0.2 {
                concentrated += 1;
            }
        }
        assert!(
            concentrated as f64 / eligible as f64 > 0.6,
            "{concentrated}/{eligible} users concentrated"
        );
    }

    #[test]
    fn densify_holds_last_position() {
        let g = grid();
        let cs = vec![
            CheckIn {
                user: UserId(0),
                time: 2,
                cell: g.cell(1, 1),
            },
            CheckIn {
                user: UserId(0),
                time: 5,
                cell: g.cell(3, 3),
            },
        ];
        let db = densify(&g, &cs, 8);
        let tr = db.trajectory(UserId(0)).unwrap();
        // Before first check-in: first venue.
        assert_eq!(tr.at(0), Some(g.cell(1, 1)));
        assert_eq!(tr.at(2), Some(g.cell(1, 1)));
        assert_eq!(tr.at(4), Some(g.cell(1, 1)));
        assert_eq!(tr.at(5), Some(g.cell(3, 3)));
        assert_eq!(tr.at(7), Some(g.cell(3, 3)));
    }

    #[test]
    fn densify_full_stream() {
        let cs = checkins(4);
        let db = densify(&grid(), &cs, 336);
        assert!(db.n_users() > 0);
        assert_eq!(db.horizon(), 336);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(checkins(9), checkins(9));
    }
}
