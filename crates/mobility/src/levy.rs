//! Lévy-flight mobility.
//!
//! Human displacement lengths are famously heavy-tailed ("Lévy-flight"
//! structure): many short hops, rare long jumps. This generator samples step
//! lengths from a truncated Pareto distribution and uniform directions,
//! reflecting at the grid boundary. It is the stress-test workload for
//! policies tuned to local movement (a `G1` policy handles short hops well;
//! long jumps expose the difference between graph and Euclidean distance).

use crate::trajectory::{Timestamp, Trajectory, TrajectoryDb, UserId};
use panda_geo::{sample, GridMap, Point};
use rand::Rng;

/// Parameters for [`generate_levy`].
#[derive(Debug, Clone, Copy)]
pub struct LevyConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of epochs.
    pub horizon: Timestamp,
    /// Pareto tail exponent `α > 0` (smaller ⇒ heavier tail; human mobility
    /// studies report ≈ 1.5–2).
    pub alpha: f64,
    /// Minimum step length (the Pareto scale), length units per epoch.
    pub step_min: f64,
    /// Hard cap on step length (truncation), length units per epoch.
    pub step_max: f64,
}

impl Default for LevyConfig {
    fn default() -> Self {
        LevyConfig {
            n_users: 50,
            horizon: 100,
            alpha: 1.6,
            step_min: 20.0,
            step_max: 3_000.0,
        }
    }
}

/// Samples a truncated Pareto(α, x_min) step length, capped at `x_max`.
pub fn pareto_step<R: Rng + ?Sized>(rng: &mut R, alpha: f64, x_min: f64, x_max: f64) -> f64 {
    debug_assert!(alpha > 0.0 && x_min > 0.0 && x_max >= x_min);
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (x_min / u.powf(1.0 / alpha)).min(x_max)
}

/// Generates a Lévy-flight [`TrajectoryDb`] on `grid`.
pub fn generate_levy<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &GridMap,
    config: &LevyConfig,
) -> TrajectoryDb {
    assert!(config.alpha > 0.0, "alpha must be positive");
    assert!(
        config.step_min > 0.0 && config.step_max >= config.step_min,
        "invalid step range"
    );
    let width = grid.width() as f64 * grid.cell_size();
    let height = grid.height() as f64 * grid.cell_size();
    let mut trajectories = Vec::with_capacity(config.n_users as usize);
    for uid in 0..config.n_users {
        let mut pos = sample::uniform_in_rect(rng, Point::new(0.0, 0.0), Point::new(width, height));
        let mut cells = Vec::with_capacity(config.horizon as usize);
        for _ in 0..config.horizon {
            cells.push(grid.nearest_cell(pos));
            let step = pareto_step(rng, config.alpha, config.step_min, config.step_max);
            let dir = sample::uniform_direction(rng);
            pos += dir * step;
            // Reflect at boundaries.
            pos.x = reflect(pos.x, width);
            pos.y = reflect(pos.y, height);
        }
        trajectories.push(Trajectory {
            user: UserId(uid),
            cells,
        });
    }
    TrajectoryDb::new(grid.clone(), trajectories)
}

/// Reflects `x` into `[0, limit]` (possibly multiple folds for huge steps).
fn reflect(mut x: f64, limit: f64) -> f64 {
    loop {
        if x < 0.0 {
            x = -x;
        } else if x > limit {
            x = 2.0 * limit - x;
        } else {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reflect_keeps_in_range() {
        assert_eq!(reflect(-3.0, 10.0), 3.0);
        assert_eq!(reflect(13.0, 10.0), 7.0);
        assert_eq!(reflect(5.0, 10.0), 5.0);
        let x = reflect(47.0, 10.0); // multiple folds
        assert!((0.0..=10.0).contains(&x));
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..5000 {
            let s = pareto_step(&mut rng, 1.5, 10.0, 500.0);
            assert!((10.0..=500.0).contains(&s));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        const N: usize = 50_000;
        let steps: Vec<f64> = (0..N)
            .map(|_| pareto_step(&mut rng, 1.5, 10.0, 1e9))
            .collect();
        let median = {
            let mut s = steps.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[N / 2]
        };
        let mean = steps.iter().sum::<f64>() / N as f64;
        // Heavy tail: Pareto(1.5) median = 10·2^(2/3) ≈ 15.9 while the mean
        // is α·x_min/(α−1) = 30 ≈ 1.9× the median.
        assert!((median - 15.9).abs() < 1.0, "median {median}");
        assert!(mean > 1.6 * median, "mean {mean} median {median}");
    }

    #[test]
    fn trajectories_stay_on_grid_and_mix() {
        let grid = GridMap::new(12, 12, 100.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let db = generate_levy(&mut rng, &grid, &LevyConfig::default());
        assert_eq!(db.n_users(), 50);
        // Lévy walkers should cover many distinct cells.
        let coverage: usize = db
            .trajectories()
            .iter()
            .map(|t| t.distinct_cells().len())
            .sum();
        assert!(coverage / db.n_users() >= 5, "walkers too sedentary");
    }

    #[test]
    fn deterministic_under_seed() {
        let grid = GridMap::new(8, 8, 50.0);
        let cfg = LevyConfig::default();
        let a = generate_levy(&mut SmallRng::seed_from_u64(9), &grid, &cfg);
        let b = generate_levy(&mut SmallRng::seed_from_u64(9), &grid, &cfg);
        assert_eq!(a.trajectories(), b.trajectories());
    }
}
