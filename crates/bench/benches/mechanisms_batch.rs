//! Indexed bulk release vs. the naive per-call path.
//!
//! The PR 1 refactor claims: releasing a trajectory through
//! `Mechanism::perturb_batch` with a `PolicyIndex` amortises all
//! policy-graph work (distances, output distributions) down to O(log k)
//! table sampling per report, while the naive loop rebuilds each
//! distribution per call. This bench measures both paths on the same
//! workload — a synthetic 256-report trajectory over a 32×32 grid — per
//! policy and mechanism, so the speedup is visible in one run's output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{
    EuclideanExponential, GraphCalibratedLaplace, GraphExponential, LocationPolicyGraph, Mechanism,
    PolicyIndex, UniformComponent,
};
use panda_geo::{CellId, GridMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A plausible trajectory: a lazy random walk over the grid.
fn workload(grid: &GridMap, len: usize, seed: u64) -> Vec<CellId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cell = grid.cell(grid.width() / 2, grid.height() / 2);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                let neighbors = grid.neighbors8(cell);
                cell = neighbors[rng.gen_range(0..neighbors.len())];
            }
            cell
        })
        .collect()
}

fn bench_batch_vs_naive(c: &mut Criterion) {
    let grid = GridMap::new(32, 32, 500.0);
    let locs = workload(&grid, 256, 7);
    let eps = 1.0;

    let policies = vec![
        ("Ga", LocationPolicyGraph::partition(grid.clone(), 4, 4)),
        ("Gb", LocationPolicyGraph::partition(grid.clone(), 2, 2)),
        (
            "G1",
            LocationPolicyGraph::g1_geo_indistinguishability(grid.clone()),
        ),
    ];
    let mechanisms: Vec<(&str, Box<dyn Mechanism>)> = vec![
        ("gem", Box::new(GraphExponential)),
        ("euc_exp", Box::new(EuclideanExponential)),
        ("graph_laplace", Box::new(GraphCalibratedLaplace)),
        ("uniform", Box::new(UniformComponent)),
    ];

    let mut group = c.benchmark_group("mechanisms_batch");
    for (plabel, policy) in &policies {
        let index = PolicyIndex::new(policy.clone());
        for (mlabel, mech) in &mechanisms {
            // Naive: one perturb call per report, distributions rebuilt
            // every time (the seed behaviour).
            group.bench_with_input(
                BenchmarkId::new(format!("naive_{mlabel}"), plabel),
                policy,
                |b, policy| {
                    let mut rng = StdRng::seed_from_u64(11);
                    b.iter(|| {
                        for &s in &locs {
                            black_box(mech.perturb(policy, eps, black_box(s), &mut rng).unwrap());
                        }
                    });
                },
            );
            // Indexed: one perturb_batch over the whole trajectory.
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_{mlabel}"), plabel),
                &index,
                |b, index| {
                    let mut rng = StdRng::seed_from_u64(11);
                    b.iter(|| {
                        black_box(
                            mech.perturb_batch(index, eps, black_box(&locs), &mut rng)
                                .unwrap(),
                        );
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_index_construction(c: &mut Criterion) {
    // The one-time cost the batch path pays up front: policy construction
    // (with distance tables) and first-touch distribution builds.
    let grid = GridMap::new(32, 32, 500.0);
    let mut group = c.benchmark_group("policy_index_build");
    group.sample_size(10);
    group.bench_function("partition_2x2_with_tables", |b| {
        b.iter(|| black_box(LocationPolicyGraph::partition(grid.clone(), 2, 2)));
    });
    group.bench_function("g1_with_tables", |b| {
        b.iter(|| {
            black_box(LocationPolicyGraph::g1_geo_indistinguishability(
                grid.clone(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_naive, bench_index_construction);
criterion_main!(benches);
