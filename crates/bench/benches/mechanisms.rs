//! Criterion micro-benchmarks: mechanism release latency per policy.
//!
//! PANDA clients perturb one location per epoch on-device; release latency
//! bounds how cheap the client loop is. Measured per (mechanism, policy) on
//! a 16×16 grid at ε = 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{
    GraphCalibratedLaplace, GraphExponential, LocationPolicyGraph, Mechanism, PlanarIsotropic,
    PlanarLaplace,
};
use panda_geo::{CellId, GridMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mechanisms(c: &mut Criterion) {
    let grid = GridMap::new(16, 16, 500.0);
    let policies = vec![
        ("Ga", LocationPolicyGraph::partition(grid.clone(), 4, 4)),
        ("Gb", LocationPolicyGraph::partition(grid.clone(), 2, 2)),
        (
            "G1",
            LocationPolicyGraph::g1_geo_indistinguishability(grid.clone()),
        ),
    ];
    let mut group = c.benchmark_group("perturb");
    for (plabel, policy) in &policies {
        let mechanisms: Vec<(&str, Box<dyn Mechanism>)> = vec![
            ("gem", Box::new(GraphExponential)),
            ("graph_laplace", Box::new(GraphCalibratedLaplace)),
            ("pim", Box::new(PlanarIsotropic::new())),
            ("planar_laplace", Box::new(PlanarLaplace)),
        ];
        for (mlabel, mech) in mechanisms {
            group.bench_with_input(BenchmarkId::new(mlabel, plabel), policy, |b, policy| {
                let mut rng = StdRng::seed_from_u64(1);
                let s = CellId(100);
                b.iter(|| black_box(mech.perturb(policy, 1.0, black_box(s), &mut rng).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_exact_distribution(c: &mut Criterion) {
    // The GEM's closed-form distribution powers audits and attacks; its
    // cost is one BFS + normalisation per input cell.
    let mut group = c.benchmark_group("gem_output_distribution");
    for n in [8u32, 16, 32] {
        let grid = GridMap::new(n, n, 500.0);
        let policy = LocationPolicyGraph::g1_geo_indistinguishability(grid);
        group.bench_with_input(BenchmarkId::from_parameter(n), &policy, |b, policy| {
            b.iter(|| {
                black_box(
                    GraphExponential
                        .output_distribution(policy, 1.0, CellId(0))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_optimal_remap(c: &mut Criterion) {
    // The optimal-remap extension: build cost (a full likelihood matrix +
    // one Fermat-Weber argmin per output cell) and per-release overhead.
    use panda_attack::{Prior, RemappedMechanism};
    let grid = GridMap::new(12, 12, 500.0);
    let policy = LocationPolicyGraph::partition(grid.clone(), 3, 3);
    let prior = Prior::uniform(&grid);
    let mut group = c.benchmark_group("optimal_remap");
    group.sample_size(10);
    group.bench_function("build_table", |b| {
        b.iter(|| {
            black_box(RemappedMechanism::build(&GraphExponential, &policy, 1.0, &prior, 0).unwrap())
        })
    });
    let remapped = RemappedMechanism::build(&GraphExponential, &policy, 1.0, &prior, 0).unwrap();
    group.bench_function("perturb_remapped", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(remapped.perturb(&policy, 1.0, CellId(7), &mut rng).unwrap()));
    });
    group.bench_function("perturb_base", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                GraphExponential
                    .perturb(&policy, 1.0, CellId(7), &mut rng)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mechanisms,
    bench_exact_distribution,
    bench_optimal_remap
);
criterion_main!(benches);
