//! Criterion micro-benchmarks + ablation for the Planar Isotropic
//! Mechanism.
//!
//! The DESIGN.md ablations: (a) prepared (cached sensitivity hulls) vs
//! on-the-fly preparation, and (b) direct K-norm sampling vs the original
//! paper's isotropic-transform path (distributionally identical; the bench
//! quantifies the constant-factor cost of whitening).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{LocationPolicyGraph, Mechanism, PlanarIsotropic};
use panda_geo::{CellId, GridMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_prepared_vs_fresh(c: &mut Criterion) {
    let grid = GridMap::new(16, 16, 500.0);
    let mut group = c.benchmark_group("pim_preparation_ablation");
    for block in [2u32, 4, 8] {
        let policy = LocationPolicyGraph::partition(grid.clone(), block, block);
        let prepared = PlanarIsotropic::prepared(&policy, false);
        let fresh = PlanarIsotropic::new();
        group.bench_with_input(BenchmarkId::new("prepared", block), &policy, |b, policy| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(prepared.perturb(policy, 1.0, CellId(0), &mut rng).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("fresh", block), &policy, |b, policy| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(fresh.perturb(policy, 1.0, CellId(0), &mut rng).unwrap()));
        });
    }
    group.finish();
}

fn bench_isotropic_ablation(c: &mut Criterion) {
    let grid = GridMap::new(16, 16, 500.0);
    let policy = LocationPolicyGraph::partition(grid, 8, 8);
    let direct = PlanarIsotropic::prepared(&policy, false);
    let iso = PlanarIsotropic::prepared(&policy, true);
    let mut group = c.benchmark_group("pim_isotropic_ablation");
    group.bench_function("direct_knorm", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(direct.perturb(&policy, 1.0, CellId(0), &mut rng).unwrap()));
    });
    group.bench_function("isotropic_transform", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(iso.perturb(&policy, 1.0, CellId(0), &mut rng).unwrap()));
    });
    group.finish();
}

fn bench_preparation_cost(c: &mut Criterion) {
    // One-off cost of building all sensitivity hulls for a policy.
    let mut group = c.benchmark_group("pim_prepare");
    group.sample_size(20);
    for n in [8u32, 16, 32] {
        let grid = GridMap::new(n, n, 500.0);
        let policy = LocationPolicyGraph::partition(grid, 4, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &policy, |b, policy| {
            b.iter(|| black_box(PlanarIsotropic::prepared(policy, false)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prepared_vs_fresh,
    bench_isotropic_ablation,
    bench_preparation_cost
);
criterion_main!(benches);
