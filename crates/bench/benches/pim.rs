//! Criterion micro-benchmarks + ablation for the Planar Isotropic
//! Mechanism.
//!
//! The DESIGN.md ablations: (a) index-cached sensitivity hulls (the
//! `PolicyIndex` batch path) vs on-the-fly preparation, and (b) direct
//! K-norm sampling vs the original paper's isotropic-transform path
//! (distributionally identical; the bench quantifies the constant-factor
//! cost of whitening).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{LocationPolicyGraph, Mechanism, PlanarIsotropic, PolicyIndex};
use panda_geo::{CellId, GridMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_indexed_vs_fresh(c: &mut Criterion) {
    let grid = GridMap::new(16, 16, 500.0);
    let mut group = c.benchmark_group("pim_hull_cache_ablation");
    let locs = vec![CellId(0); 64];
    for block in [2u32, 4, 8] {
        let policy = LocationPolicyGraph::partition(grid.clone(), block, block);
        let index = PolicyIndex::new(policy.clone());
        let pim = PlanarIsotropic::new();
        // Indexed: hulls prepared once in the PolicyIndex, then reused by
        // every report of the batch.
        group.bench_with_input(BenchmarkId::new("indexed", block), &index, |b, index| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(pim.perturb_batch(index, 1.0, &locs, &mut rng).unwrap()));
        });
        // Fresh: every perturb call re-prepares the component hull.
        group.bench_with_input(BenchmarkId::new("fresh", block), &policy, |b, policy| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                for &s in &locs {
                    black_box(pim.perturb(policy, 1.0, s, &mut rng).unwrap());
                }
            });
        });
    }
    group.finish();
}

fn bench_isotropic_ablation(c: &mut Criterion) {
    let grid = GridMap::new(16, 16, 500.0);
    let policy = LocationPolicyGraph::partition(grid, 8, 8);
    let index = PolicyIndex::new(policy);
    let direct = PlanarIsotropic::new();
    let iso = PlanarIsotropic::with_isotropic_transform();
    direct.prepare_all(&index);
    iso.prepare_all(&index);
    let locs = [CellId(0)];
    let mut group = c.benchmark_group("pim_isotropic_ablation");
    group.bench_function("direct_knorm", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(direct.perturb_batch(&index, 1.0, &locs, &mut rng).unwrap()));
    });
    group.bench_function("isotropic_transform", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(iso.perturb_batch(&index, 1.0, &locs, &mut rng).unwrap()));
    });
    group.finish();
}

fn bench_preparation_cost(c: &mut Criterion) {
    // One-off cost of building all sensitivity hulls into a PolicyIndex.
    let mut group = c.benchmark_group("pim_prepare");
    group.sample_size(20);
    for n in [8u32, 16, 32] {
        let grid = GridMap::new(n, n, 500.0);
        let policy = LocationPolicyGraph::partition(grid, 4, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &policy, |b, policy| {
            b.iter(|| {
                let index = PolicyIndex::new(policy.clone());
                PlanarIsotropic::new().prepare_all(&index);
                black_box(index.n_cached_pim_hulls())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_indexed_vs_fresh,
    bench_isotropic_ablation,
    bench_preparation_cost
);
criterion_main!(benches);
