//! Criterion micro-benchmarks: contact tracing at population scale.
//!
//! The server-side cost of a diagnosis: running the co-location rule over
//! the reported database, and rebuilding the `Gc` policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_bench::workload::{geolife, grid};
use panda_geo::CellId;
use panda_mobility::{Timestamp, UserId};
use panda_surveillance::tracing::ContactTracer;
use panda_surveillance::PolicyConfigurator;
use std::hint::black_box;

fn bench_find_contacts(c: &mut Criterion) {
    let g = grid(16);
    let mut group = c.benchmark_group("find_contacts");
    group.sample_size(20);
    for users in [50u32, 150, 400] {
        let db = geolife(9, &g, users, 7);
        let patient = UserId(0);
        let history: Vec<(Timestamp, CellId)> = (0..db.horizon())
            .filter_map(|t| db.cell_of(patient, t).map(|c| (t, c)))
            .collect();
        let tracer = ContactTracer::default();
        group.bench_with_input(BenchmarkId::from_parameter(users), &db, |b, db| {
            b.iter(|| black_box(tracer.find_contacts(db, patient, &history, 0, db.horizon())));
        });
    }
    group.finish();
}

fn bench_policy_update(c: &mut Criterion) {
    let g = grid(32);
    let configurator = PolicyConfigurator::new(g.clone(), 4, 2);
    let mut group = c.benchmark_group("diagnosis_policy_update");
    group.sample_size(20);
    for n_visits in [10usize, 100, 500] {
        let history: Vec<(Timestamp, CellId)> = (0..n_visits)
            .map(|i| (i as Timestamp, CellId((i % 1024) as u32)))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_visits),
            &history,
            |b, history| {
                b.iter(|| black_box(configurator.update_on_diagnosis(history)));
            },
        );
    }
    group.finish();
}

fn bench_colocation_counts(c: &mut Criterion) {
    let g = grid(16);
    let mut group = c.benchmark_group("co_location_counts");
    group.sample_size(10);
    for users in [50u32, 150] {
        let db = geolife(10, &g, users, 3);
        group.bench_with_input(BenchmarkId::from_parameter(users), &db, |b, db| {
            b.iter(|| black_box(db.co_location_counts()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_find_contacts,
    bench_policy_update,
    bench_colocation_counts
);
criterion_main!(benches);
