//! Criterion micro-benchmarks: the graph substrate under policy-graph
//! shaped workloads (BFS distances, k-neighbourhoods, components, policy
//! construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::LocationPolicyGraph;
use panda_geo::GridMap;
use panda_graph::{bfs, components::connected_components, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_distances");
    for n in [16u32, 32, 64] {
        let g = generators::grid8(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &g, |b, g| {
            b.iter(|| black_box(bfs::bfs_distances(g, 0)));
        });
    }
    group.finish();
}

fn bench_k_neighbors(c: &mut Criterion) {
    let g = generators::grid8(32, 32);
    let mut group = c.benchmark_group("k_neighbors");
    for k in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(bfs::k_neighbors(&g, 512, k)));
        });
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("connected_components");
    let mut rng = StdRng::seed_from_u64(3);
    for &(n, p) in &[(256u32, 0.01f64), (1024, 0.005), (4096, 0.001)] {
        let g = generators::erdos_renyi(&mut rng, n, p);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(connected_components(g)));
        });
    }
    group.finish();
}

fn bench_policy_construction(c: &mut Criterion) {
    // Dynamic policies are rebuilt per diagnosis: construction cost matters.
    let grid = GridMap::new(32, 32, 500.0);
    let mut group = c.benchmark_group("policy_construction");
    group.bench_function("g1", |b| {
        b.iter(|| {
            black_box(LocationPolicyGraph::g1_geo_indistinguishability(
                grid.clone(),
            ))
        })
    });
    group.bench_function("partition_4x4", |b| {
        b.iter(|| black_box(LocationPolicyGraph::partition(grid.clone(), 4, 4)))
    });
    let base = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let infected: Vec<panda_geo::CellId> = grid.chebyshev_ball(grid.cell(16, 16), 2);
    group.bench_function("gc_isolate_25_cells", |b| {
        b.iter(|| black_box(base.with_isolated(&infected)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_k_neighbors,
    bench_components,
    bench_policy_construction
);
criterion_main!(benches);
