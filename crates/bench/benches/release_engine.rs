//! The parallel release engine: threads × batch size × mechanism, plus the
//! alias-table vs binary-search sampling ablation.
//!
//! The PR-2/PR-3 claims measured here:
//!
//! * `ParallelReleaser` at T threads beats the single-threaded PR-1
//!   `perturb_batch` path on large batches (≥ 3× at 8 threads on a
//!   256k-report batch, on hardware with ≥ 8 cores);
//! * small batches (≤ one chunk) release faster through the persistent
//!   pool — which runs them inline — than through the PR-2 scoped path,
//!   which pays a fresh thread spawn per call;
//! * alias-table draws (O(1)) beat cumulative-table binary search
//!   (O(log k)) on supports of ≥ 1024 cells;
//! * the sharded server ingests a grouped batch faster than per-report
//!   locking.
//!
//! `cargo bench -p panda-bench --bench release_engine`. The machine-readable
//! counterpart (reports/sec, p50/p99) is the `bench_release` binary, which
//! writes `BENCH_release.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{
    GraphExponential, LocationPolicyGraph, Mechanism, ParallelReleaser, PolicyIndex, SamplingTable,
    UniformComponent,
};
use panda_geo::{CellId, GridMap};
use panda_surveillance::{LocationReport, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn batch(grid: &GridMap, n: usize, seed: u64) -> Vec<CellId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| CellId(rng.gen_range(0..grid.n_cells())))
        .collect()
}

fn bench_parallel_vs_single(c: &mut Criterion) {
    let grid = GridMap::new(32, 32, 500.0);
    let index = PolicyIndex::new(LocationPolicyGraph::partition(grid.clone(), 2, 2));
    let mechs: Vec<(&str, Box<dyn Mechanism + Sync>)> = vec![
        ("gem", Box::new(GraphExponential)),
        ("uniform", Box::new(UniformComponent)),
    ];
    let mut group = c.benchmark_group("release_engine");
    group.sample_size(10);
    for n in [65_536usize, 262_144] {
        let locs = batch(&grid, n, 7);
        for (mlabel, mech) in &mechs {
            // PR-1 baseline: one thread, one RNG stream.
            group.bench_with_input(
                BenchmarkId::new(format!("single_{mlabel}"), n),
                &locs,
                |b, locs| {
                    let mut rng = StdRng::seed_from_u64(11);
                    b.iter(|| black_box(mech.perturb_batch(&index, 1.0, locs, &mut rng).unwrap()));
                },
            );
            for threads in [2usize, 4, 8] {
                let releaser = ParallelReleaser::with_threads(threads);
                group.bench_with_input(
                    BenchmarkId::new(format!("parallel{threads}_{mlabel}"), n),
                    &locs,
                    |b, locs| {
                        b.iter(|| {
                            black_box(
                                releaser
                                    .release(mech.as_ref(), &index, 1.0, locs, 11)
                                    .unwrap(),
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_small_batch_dispatch(c: &mut Criterion) {
    // The streaming micro-batch regime: batches at/below one chunk, where
    // the engine's per-call dispatch cost dominates the perturbation work.
    let grid = GridMap::new(32, 32, 500.0);
    let index = PolicyIndex::new(LocationPolicyGraph::partition(grid.clone(), 2, 2));
    let releaser = ParallelReleaser::new();
    let mut group = c.benchmark_group("small_batch_dispatch");
    for n in [512usize, 4096] {
        let locs = batch(&grid, n, 7);
        group.bench_with_input(BenchmarkId::new("scoped_spawn", n), &locs, |b, locs| {
            b.iter(|| {
                black_box(
                    releaser
                        .release_scoped(&GraphExponential, &index, 1.0, locs, 11)
                        .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("pooled_inline", n), &locs, |b, locs| {
            b.iter(|| {
                black_box(
                    releaser
                        .release(&GraphExponential, &index, 1.0, locs, 11)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_alias_vs_binary_search(c: &mut Criterion) {
    // Pure sampling ablation on identical weights: O(1) alias draws vs
    // O(log k) inverse-CDF binary search, across support sizes.
    let mut group = c.benchmark_group("sampling_table_draw");
    for k in [256u32, 1024, 4096, 16_384] {
        let dist: Vec<(CellId, f64)> = (0..k)
            .map(|i| (CellId(i), 1.0 + f64::from(i % 31)))
            .collect();
        let alias = SamplingTable::alias(dist.clone());
        let cumulative = SamplingTable::cumulative(dist);
        group.bench_with_input(BenchmarkId::new("alias", k), &alias, |b, table| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(table.sample(&mut rng)));
        });
        group.bench_with_input(
            BenchmarkId::new("binary_search", k),
            &cumulative,
            |b, table| {
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| black_box(table.sample(&mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_server_ingest(c: &mut Criterion) {
    let grid = GridMap::new(32, 32, 500.0);
    let reports: Vec<LocationReport> = {
        let mut rng = StdRng::seed_from_u64(17);
        (0..65_536u32)
            .map(|i| LocationReport {
                user: panda_mobility::UserId(rng.gen_range(0..10_000)),
                epoch: i % 336,
                cell: CellId(rng.gen_range(0..grid.n_cells())),
                resend: false,
            })
            .collect()
    };
    let mut group = c.benchmark_group("server_ingest");
    group.sample_size(10);
    group.bench_function("per_report", |b| {
        b.iter(|| {
            let server = Server::new(grid.clone());
            for &r in &reports {
                server.receive(r);
            }
            black_box(server.n_received())
        });
    });
    group.bench_function("shard_batched", |b| {
        b.iter(|| {
            let server = Server::new(grid.clone());
            server.receive_batch(reports.clone());
            black_box(server.n_received())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_vs_single,
    bench_small_batch_dispatch,
    bench_alias_vs_binary_search,
    bench_server_ingest
);
criterion_main!(benches);
