//! **E2 — §3.2(1) + Fig. 5 utility panel**: location-monitoring utility
//! (mean Euclidean error between perturbed and true locations) versus ε,
//! per policy graph and mechanism, on the GeoLife stand-in.
//!
//! Expected shape (demo narrative): error falls monotonically with ε for
//! every policy; at fixed ε the coarse `Ga` bounds error by its block
//! diameter while `G1` pays the most; `Gc` matches `Gb` except at infected
//! cells (disclosed exactly). The planar-Laplace baseline ignores the
//! policy and therefore leaks across components while achieving G1-like
//! error.

use panda_bench::workload::{eps_sweep, geolife, grid, indexed_policy_menu, release_db_parallel};
use panda_bench::{f1, Table};
use panda_core::{
    EuclideanExponential, GraphCalibratedLaplace, GraphExponential, Mechanism, ParallelReleaser,
    PlanarIsotropic, PlanarLaplace, PolicyIndex,
};
use panda_surveillance::monitoring::monitoring_utility;
use std::sync::Arc;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(if full { 32 } else { 16 });
    let truth = geolife(
        11,
        &g,
        if full { 200 } else { 60 },
        if full { 14 } else { 5 },
    );
    println!(
        "E2: monitoring utility on GeoLife-like data ({} users x {} epochs, {}x{} grid)\n",
        truth.n_users(),
        truth.horizon(),
        g.width(),
        g.height()
    );

    // Infected cells for Gc: a small cluster near the CBD.
    let infected = g.chebyshev_ball(g.cell(g.width() / 2, g.height() / 2), 1);
    // One PolicyIndex per policy, shared across the whole sweep: each
    // (mechanism, eps, cell) distribution is built once and reused by every
    // user, epoch and eps-sweep job touching it.
    let policies: Vec<(&str, Arc<PolicyIndex>)> = indexed_policy_menu(&g, &infected)
        .into_iter()
        .map(|(label, index)| (label, Arc::new(index)))
        .collect();

    type MechFactory = fn() -> Box<dyn Mechanism + Send + Sync>;
    let mech_factories: Vec<(&str, MechFactory)> = vec![
        ("GEM", || Box::new(GraphExponential)),
        ("EucExp", || Box::new(EuclideanExponential)),
        ("GraphLap", || Box::new(GraphCalibratedLaplace)),
        ("PIM", || Box::new(PlanarIsotropic::new())),
        ("PlanarLap", || Box::new(PlanarLaplace)),
    ];

    // Sweep (policy × mechanism × eps): each job's database release runs on
    // the parallel engine (all cores on one batch), so the sweep itself
    // stays a simple deterministic loop.
    let releaser = ParallelReleaser::new();
    let mut jobs = Vec::new();
    for (plabel, index) in &policies {
        for (mlabel, factory) in &mech_factories {
            for eps in eps_sweep(full) {
                jobs.push((
                    plabel.to_string(),
                    Arc::clone(index),
                    mlabel.to_string(),
                    *factory,
                    eps,
                ));
            }
        }
    }
    let results: Vec<_> = jobs
        .into_iter()
        .map(|(plabel, index, mlabel, factory, eps)| {
            let mech = factory();
            let reported = release_db_parallel(&truth, &index, mech.as_ref(), eps, 4242, &releaser);
            let util = monitoring_utility(&truth, &reported, 4);
            (
                plabel,
                mlabel,
                eps,
                util.mean_distance,
                util.area_accuracy,
                util.occupancy_l1,
            )
        })
        .collect();

    let mut table = Table::new(
        "e2_monitoring_utility",
        &[
            "policy",
            "mechanism",
            "eps",
            "mean_err_m",
            "area_acc",
            "occupancy_l1",
        ],
    );
    for (p, m, eps, err, acc, l1) in &results {
        table.row(&[
            p,
            m,
            eps,
            &f1(*err),
            &format!("{acc:.3}"),
            &format!("{l1:.4}"),
        ]);
    }
    table.finish();

    // Shape assertions (the reproduction criteria from DESIGN.md §5).
    let err_of = |p: &str, m: &str, eps: f64| {
        results
            .iter()
            .find(|r| r.0 == p && r.1 == m && (r.2 - eps).abs() < 1e-9)
            .map(|r| r.3)
            .unwrap()
    };
    let lo = eps_sweep(full)[0];
    let hi = *eps_sweep(full).last().unwrap();
    assert!(
        err_of("G1", "GEM", hi) < err_of("G1", "GEM", lo),
        "error must fall with eps"
    );
    assert!(
        err_of("Ga", "GEM", lo) < err_of("G1", "GEM", lo),
        "coarse partition must beat G1 at low eps"
    );
    assert!(
        err_of("Gb", "GEM", lo) < err_of("Ga", "GEM", lo),
        "finer partition must have lower error than coarse"
    );
    println!(
        "Shape check vs paper: error decreases in eps for all policies; at low\n\
         eps the partition diameter bounds the error (Gb < Ga < G1), while the\n\
         coarse Ga keeps area-level statistics exact — 'no policy is best for\n\
         all'. Gc matches Gb except at infected cells (disclosed exactly)."
    );
}
