//! **E7 + driver**: runs the Fig. 1/Fig. 3 end-to-end pipeline smoke test,
//! then invokes every experiment binary in sequence.
//!
//! ```text
//! cargo run --release -p panda-bench --bin run_all
//! ```

use panda_bench::workload::{geolife, grid};
use panda_core::GraphExponential;
use panda_epidemic::{simulate_outbreak, OutbreakConfig};
use panda_mobility::Timestamp;
use panda_surveillance::health_code::{assign_codes, code_census, HealthCodeRules};
use panda_surveillance::tracing::{dynamic_trace, ContactRule};
use panda_surveillance::{Client, ClientConfig, ConsentRule, PolicyConfigurator, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::Command;

fn pipeline_smoke() {
    println!("=== E7: end-to-end pipeline (Fig. 1 / Fig. 3 architecture) ===\n");
    let g = grid(12);
    let truth = geolife(71, &g, 40, 3);
    let mut rng = StdRng::seed_from_u64(72);
    let configurator = PolicyConfigurator::new(g.clone(), 4, 2);
    let server = Server::new(g.clone());
    let mut clients: Vec<Client> = truth
        .trajectories()
        .iter()
        .map(|tr| {
            let mut c = Client::new(
                tr.user,
                ClientConfig {
                    retention: 400,
                    budget: 500.0,
                    consent: ConsentRule::AlwaysAccept,
                },
                configurator.for_analysis(),
                Box::new(GraphExponential),
                1.0,
            );
            for (t, &cell) in tr.cells.iter().enumerate() {
                c.observe(t as Timestamp, cell);
            }
            c
        })
        .collect();

    // Routine reporting.
    for c in clients.iter_mut() {
        for t in 0..truth.horizon() {
            server.receive(c.report(t, &mut rng).expect("report"));
        }
    }
    println!("reports collected: {}", server.n_received());

    // Outbreak, diagnosis, dynamic trace, health codes.
    let outbreak = simulate_outbreak(
        &mut rng,
        &truth,
        &OutbreakConfig {
            n_seeds: 2,
            diagnosis_delay: 12,
            p_transmit: 0.5,
            ..Default::default()
        },
    );
    if let Some(&(patient, t_diag)) = outbreak.diagnoses.first() {
        let outcome = dynamic_trace(
            &mut clients,
            &server,
            &configurator,
            &truth,
            patient,
            (0, t_diag),
            4.0,
            ContactRule::default(),
            &mut rng,
        );
        println!(
            "dynamic trace for {patient}: precision {:.2} recall {:.2}",
            outcome.precision, outcome.recall
        );
        let codes = assign_codes(
            &server.reported_db(t_diag),
            &server.diagnoses(),
            &outcome.flagged,
            &server.infected_visits(),
            t_diag,
            &HealthCodeRules::default(),
        );
        let (green, yellow, red) = code_census(&codes);
        println!("health codes: {green} green / {yellow} yellow / {red} red");
        assert_eq!(outcome.recall, 1.0);
    } else {
        println!("(no diagnosis in the smoke window — pipeline still exercised)");
    }
    println!("\npipeline smoke: OK\n");
}

fn main() {
    pipeline_smoke();

    let exps = [
        "exp_policy_equivalence",
        "exp_monitoring_utility",
        "exp_r0_estimation",
        "exp_contact_tracing",
        "exp_privacy_utility",
        "exp_random_policy_sweep",
        "exp_budget_allocation",
        "exp_dataset_comparison",
        "exp_temporal_attack",
    ];
    let self_exe = std::env::current_exe().expect("current exe");
    let bin_dir = self_exe.parent().expect("bin dir");
    for exp in exps {
        println!("=== {exp} ===\n");
        let path = bin_dir.join(exp);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{exp} failed");
    }
    println!("All experiments completed. CSVs are under results/.");
}
