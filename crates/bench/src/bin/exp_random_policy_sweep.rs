//! **E6 — Fig. 5 "Random Policy Graph" panel**: the Size and Density knobs.
//!
//! The demo lets attendees "randomly generate a policy graph to explore its
//! effect on the privacy-utility trade-off" with visible Size/Density
//! controls (the screenshot shows Size 50, Density 0.1). This experiment
//! sweeps both knobs, reporting utility error, adversary error and the
//! fraction of exactly-disclosed (isolated) cells.
//!
//! Expected shape: higher density ⇒ larger components ⇒ more privacy
//! (higher adversary error) and less utility; larger size at fixed density
//! behaves likewise; tiny/empty graphs degenerate to exact release.

use panda_attack::{expected_inference_error, BayesEstimator, Prior};
use panda_bench::workload::grid;
use panda_bench::{f1, parallel_map, Table};
use panda_core::{GraphExponential, LocationPolicyGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(10);
    let prior = Prior::uniform(&g);
    let eps = 1.0;
    let sizes: Vec<u32> = if full {
        vec![25, 50, 75, 100]
    } else {
        vec![25, 50, 100]
    };
    let densities: Vec<f64> = if full {
        vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5]
    } else {
        vec![0.02, 0.1, 0.3, 0.5]
    };
    println!(
        "E6: random policy graphs on a {}x{} grid, eps = {eps} (Fig. 5 knobs)\n",
        g.width(),
        g.height()
    );

    let mut jobs = Vec::new();
    for &size in &sizes {
        for &density in &densities {
            jobs.push((size, density));
        }
    }
    let trials = if full { 400 } else { 200 };
    let results = parallel_map(jobs, |&(size, density)| {
        // Policy generation is seeded by the knobs: reproducible panels.
        let mut rng = StdRng::seed_from_u64(6000 + size as u64 * 1000 + (density * 100.0) as u64);
        let policy = LocationPolicyGraph::random(g.clone(), size, density, &mut rng);
        let isolated = g.cells().filter(|&c| policy.is_isolated_cell(c)).count();
        let report = expected_inference_error(
            &GraphExponential,
            &policy,
            eps,
            &prior,
            BayesEstimator::MinExpectedDistance,
            trials,
            0,
            &mut rng,
        )
        .expect("attack run failed");
        (
            size,
            density,
            policy.density(),
            isolated as f64 / g.n_cells() as f64,
            report,
        )
    });

    let mut table = Table::new(
        "e6_random_policy_sweep",
        &[
            "size",
            "density",
            "realised_density",
            "isolated_frac",
            "adv_err_m",
            "utility_err_m",
            "hit_rate",
        ],
    );
    for (size, density, realised, iso, r) in &results {
        table.row(&[
            size,
            density,
            &format!("{realised:.4}"),
            &format!("{iso:.2}"),
            &f1(r.mean_error),
            &f1(r.mean_utility_error),
            &format!("{:.3}", r.hit_rate),
        ]);
    }
    table.finish();

    // Shape assertion: at fixed size, denser graphs give the attacker a
    // harder time (monotone within sampling noise: compare extremes).
    let adv = |size: u32, density: f64| {
        results
            .iter()
            .find(|r| r.0 == size && (r.1 - density).abs() < 1e-9)
            .map(|r| r.4.mean_error)
            .unwrap()
    };
    let d_lo = densities[0];
    let d_hi = *densities.last().unwrap();
    for &s in &sizes {
        assert!(
            adv(s, d_hi) > adv(s, d_lo),
            "size {s}: density {d_hi} must be more private than {d_lo}"
        );
    }
    println!(
        "Shape check vs paper: the Density knob moves the graph along the\n\
         privacy-utility curve — denser random policies yield higher adversary\n\
         error (more privacy) and higher utility error, the Fig. 5 exploration."
    );
}
