//! **E5 — §3.2(3)**: empirical privacy as adversary inference error
//! (Shokri et al., paper ref. 15) versus utility, across policies, mechanisms and ε.
//!
//! The attacker is the optimal Bayesian adversary with an *empirical* prior
//! learned from public mobility data and exact knowledge of mechanism and
//! policy (the system publishes both, §2.1). Expected shape: adversary
//! error falls with ε for every policy; utility error falls too — the
//! trade-off curve; coarser/denser policies shift along the curve, no
//! single policy dominating (the demo's core message).

use panda_attack::{expected_inference_error, BayesEstimator, Prior};
use panda_bench::workload::{eps_sweep, geolife, grid, policy_menu};
use panda_bench::{f1, parallel_map, Table};
use panda_core::{GraphCalibratedLaplace, GraphExponential, Mechanism, PlanarIsotropic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(if full { 12 } else { 10 });
    let background = geolife(41, &g, 60, 5);
    let prior = Prior::empirical(&background);
    println!(
        "E5: privacy-utility trade-off ({}x{} grid, empirical prior, optimal Bayes attacker)\n",
        g.width(),
        g.height()
    );

    let infected = vec![g.cell(2, 2)];
    let policies = policy_menu(&g, &infected);
    type MechFactory = fn() -> Box<dyn Mechanism + Send + Sync>;
    let mech_factories: Vec<(&str, MechFactory)> = vec![
        ("GEM", || Box::new(GraphExponential)),
        ("GraphLap", || Box::new(GraphCalibratedLaplace)),
        ("PIM", || Box::new(PlanarIsotropic::new())),
    ];
    let trials = if full { 500 } else { 250 };
    let mc = if full { 30_000 } else { 10_000 };

    let mut jobs = Vec::new();
    for (plabel, policy) in &policies {
        for (mlabel, factory) in &mech_factories {
            for eps in eps_sweep(full) {
                jobs.push((
                    plabel.to_string(),
                    policy.clone(),
                    mlabel.to_string(),
                    *factory,
                    eps,
                ));
            }
        }
    }
    let results = parallel_map(jobs, |(plabel, policy, mlabel, factory, eps)| {
        let mech = factory();
        let mut rng = StdRng::seed_from_u64(55);
        let report = expected_inference_error(
            mech.as_ref(),
            policy,
            *eps,
            &prior,
            BayesEstimator::MinExpectedDistance,
            trials,
            mc,
            &mut rng,
        )
        .expect("attack run failed");
        (plabel.clone(), mlabel.clone(), *eps, report)
    });

    let mut table = Table::new(
        "e5_privacy_utility",
        &[
            "policy",
            "mechanism",
            "eps",
            "adv_err_m",
            "hit_rate",
            "utility_err_m",
        ],
    );
    for (p, m, eps, r) in &results {
        table.row(&[
            p,
            m,
            eps,
            &f1(r.mean_error),
            &format!("{:.3}", r.hit_rate),
            &f1(r.mean_utility_error),
        ]);
    }
    table.finish();

    // Shape assertions: adversary error falls with eps (GEM rows).
    let adv = |p: &str, eps: f64| {
        results
            .iter()
            .find(|r| r.0 == p && r.1 == "GEM" && (r.2 - eps).abs() < 1e-9)
            .map(|r| r.3.mean_error)
            .unwrap()
    };
    let lo = eps_sweep(full)[0];
    let hi = *eps_sweep(full).last().unwrap();
    for p in ["Ga", "Gb", "G1"] {
        assert!(
            adv(p, hi) <= adv(p, lo) + 1e-9,
            "{p}: adversary error must fall with eps"
        );
    }
    assert!(
        adv("G1", lo) > adv("Gb", lo),
        "larger components leave the attacker more uncertain"
    );
    println!(
        "Shape check vs paper: adversary error decreases with eps for every\n\
         policy; policies with larger components (G1) keep the attacker more\n\
         uncertain than small cliques (Gb) at equal eps, while costing more\n\
         utility — the trade-off the demo visualises."
    );
}
