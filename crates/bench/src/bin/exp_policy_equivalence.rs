//! **E1 — Fig. 2 + Theorems 2.1/2.2**: policy graphs `G1` and `G2`, and the
//! implication of PGLP to Geo-Indistinguishability / δ-Location Set
//! Privacy, verified by exact distribution audits.
//!
//! The demo's Fig. 2 shows the two graphs; §2.2.1 states the theorems. This
//! experiment constructs both policies on an 8×8 grid and audits the
//! graph-exponential mechanism against (a) the PGLP definition itself,
//! (b) the ε·d_E geo-indistinguishability bound (Theorem 2.1) and (c) the
//! pairwise ε bound inside the δ-location set (Theorem 2.2), at three ε.

use panda_bench::{f3, Table};
use panda_core::privacy::{audit_geo_indistinguishability, audit_pglp, AuditOptions};
use panda_core::{GraphExponential, LocationPolicyGraph};
use panda_geo::CellId;

fn main() {
    let grid = panda_bench::workload::grid(8);
    println!("E1: policy equivalence audits on an 8x8 grid (exact distributions)\n");

    let g1 = LocationPolicyGraph::g1_geo_indistinguishability(grid.clone());
    let delta_set: Vec<CellId> = grid.chebyshev_ball(grid.cell(3, 3), 1);
    let g2 = LocationPolicyGraph::g2_location_set(grid.clone(), &delta_set).unwrap();
    println!(
        "G1: {} edges, density {:.4} | G2: complete over {} cells",
        g1.graph().n_edges(),
        g1.density(),
        delta_set.len()
    );

    let mut table = Table::new(
        "e1_policy_equivalence",
        &[
            "policy",
            "eps",
            "audit",
            "pairs",
            "max_log_ratio",
            "bound",
            "satisfied",
        ],
    );
    let opts = AuditOptions::default();
    for eps in [0.5, 1.0, 2.0] {
        // (a) PGLP definition on both policies.
        for (label, policy) in [("G1", &g1), ("G2", &g2)] {
            let r = audit_pglp(&GraphExponential, policy, eps).unwrap();
            table.row(&[
                &label,
                &eps,
                &"PGLP(Def 2.4)",
                &r.pairs_checked,
                &f3(r.max_log_ratio),
                &f3(eps),
                &r.satisfied,
            ]);
            assert!(r.satisfied && r.exact);
        }
        // (b) Theorem 2.1: geo-indistinguishability from {eps, G1}.
        let cells: Vec<CellId> = grid.cells().collect();
        let r = audit_geo_indistinguishability(&GraphExponential, &g1, eps, &cells, &opts).unwrap();
        table.row(&[
            &"G1",
            &eps,
            &"GeoInd(Thm 2.1)",
            &r.pairs_checked,
            &f3(r.max_log_ratio),
            &f3(r.bound_at_worst),
            &r.satisfied,
        ]);
        assert!(r.satisfied);
        // (c) Theorem 2.2: location-set privacy = the PGLP audit on the
        // complete G2 covers exactly the δ-set pairs (reported above); also
        // confirm cells outside the set release exactly.
        let outside = grid.cell(0, 7);
        assert!(g2.is_isolated_cell(outside));
    }
    table.finish();

    println!(
        "Shape check vs paper: all audits satisfied at every eps — PGLP over G1\n\
         implies eps-geo-indistinguishability, and over G2 implies delta-location\n\
         set privacy, exactly as Theorems 2.1/2.2 claim."
    );
}
