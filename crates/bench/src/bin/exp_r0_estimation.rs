//! **E3 — §3.2(1)**: accuracy of transmission-model estimation — the gap
//! between `R0` estimated over exact locations and over perturbed
//! locations, versus ε and policy graph.
//!
//! Two estimators run side by side:
//! * the location-sensitive contact-based estimate
//!   (`p_transmit × contact rate × infectious period`), which perturbation
//!   degrades, and
//! * the incidence growth-rate estimate (location-free; shown once as the
//!   reference the paper's SEIR fit would produce).
//!
//! Expected shape: the contact-based estimate from perturbed data
//! approaches the exact-data estimate as ε grows, and finer policies (`Gb`)
//! track it better than `G1` at equal ε because their components confine
//! the perturbation.

use panda_bench::workload::{eps_sweep, geolife, grid, indexed_policy_menu, release_db_parallel};
use panda_bench::{f3, Table};
use panda_core::{GraphExponential, ParallelReleaser};
use panda_epidemic::estimate::{estimate_r0_seir, growth_window};
use panda_epidemic::{simulate_outbreak, OutbreakConfig};
use panda_surveillance::analysis::compare_r0;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(16);
    let truth = geolife(
        21,
        &g,
        if full { 200 } else { 80 },
        if full { 14 } else { 7 },
    );

    // Ground-truth outbreak for the incidence-based reference estimate.
    let cfg = OutbreakConfig {
        n_seeds: 6,
        p_transmit: 0.5,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(22);
    let outbreak = simulate_outbreak(&mut rng, &truth, &cfg);
    let (w0, w1) = growth_window(&outbreak.incidence);
    let r0_incidence = estimate_r0_seir(&outbreak.incidence, w0, w1, cfg.p_onset, cfg.p_recover)
        .or_else(|| {
            // Sparse incidence: fall back to the whole series.
            estimate_r0_seir(
                &outbreak.incidence,
                0,
                outbreak.incidence.len(),
                cfg.p_onset,
                cfg.p_recover,
            )
        });
    println!(
        "E3: R0 estimation ({} users x {} epochs; attack rate {:.0}%)",
        truth.n_users(),
        truth.horizon(),
        100.0 * outbreak.attack_rate()
    );
    match r0_incidence {
        Some(r) => println!(
            "incidence growth-rate estimate over exact data: {r:.2} (location-free reference)\n"
        ),
        None => println!(
            "incidence growth-rate estimate: n/a — outbreak too sparse for a log-linear fit\n\
             (the location-sensitive contact estimator below is the paper's actual metric)\n"
        ),
    }

    let infected = outbreak.infected_cells_until(truth.horizon() - 1);
    let policies: Vec<(&str, std::sync::Arc<panda_core::PolicyIndex>)> =
        indexed_policy_menu(&g, &infected)
            .into_iter()
            .map(|(label, index)| (label, std::sync::Arc::new(index)))
            .collect();
    let infectious_epochs = 1.0 / cfg.p_recover;

    // Each job's release runs on the parallel engine against the shared
    // per-policy index.
    let releaser = ParallelReleaser::new();
    let mut jobs = Vec::new();
    for (plabel, index) in &policies {
        for eps in eps_sweep(full) {
            jobs.push((plabel.to_string(), std::sync::Arc::clone(index), eps));
        }
    }
    let results: Vec<_> = jobs
        .into_iter()
        .map(|(plabel, index, eps)| {
            let reported =
                release_db_parallel(&truth, &index, &GraphExponential, eps, 777, &releaser);
            let cmp = compare_r0(&truth, &reported, cfg.p_transmit, infectious_epochs);
            (plabel, eps, cmp)
        })
        .collect();

    let mut table = Table::new(
        "e3_r0_estimation",
        &[
            "policy",
            "eps",
            "r0_true",
            "r0_perturbed",
            "abs_err",
            "rel_err",
        ],
    );
    for (p, eps, cmp) in &results {
        table.row(&[
            p,
            eps,
            &f3(cmp.r0_true),
            &f3(cmp.r0_perturbed),
            &f3(cmp.abs_error),
            &f3(cmp.rel_error),
        ]);
    }
    table.finish();

    // Shape assertions.
    let rel = |p: &str, eps: f64| {
        results
            .iter()
            .find(|r| r.0 == p && (r.1 - eps).abs() < 1e-9)
            .map(|r| r.2.rel_error)
            .unwrap()
    };
    let lo = eps_sweep(full)[0];
    let hi = *eps_sweep(full).last().unwrap();
    assert!(
        rel("Gb", hi) <= rel("Gb", lo) + 1e-9,
        "R0 error must not grow with eps under Gb"
    );
    assert!(
        rel("Gb", lo) <= rel("G1", lo) + 0.05,
        "fine partition should track contacts at least as well as G1"
    );
    println!(
        "Shape check vs paper: R0 estimated from perturbed locations approaches\n\
         the exact-data estimate as eps grows; fine-grained policies (Gb) keep\n\
         co-locations inside small components and so preserve the contact rate\n\
         better than G1 — matching the paper's motivation for Gb in epidemic\n\
         analysis."
    );
}
