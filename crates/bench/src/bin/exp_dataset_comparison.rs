//! **E9 — §3.2 datasets**: the demo evaluates on GeoLife and Gowalla; this
//! experiment runs the monitoring-utility readout on both synthetic
//! stand-ins at fixed ε across the policy menu.
//!
//! Expected shape: the *relative* ordering of policies is dataset-
//! independent (Gb < Ga < G1 in mean error), but the check-in data's
//! hold-last-position trajectories concentrate on popular venues, so
//! absolute errors and area accuracies differ — the reason the demo shows
//! both datasets.

use panda_bench::workload::{geolife, gowalla, grid, indexed_policy_menu, release_db_parallel};
use panda_bench::{f1, Table};
use panda_core::{GraphExponential, ParallelReleaser};
use panda_surveillance::analysis::contact_rate;
use panda_surveillance::monitoring::monitoring_utility;
use std::sync::Arc;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(16);
    let users = if full { 200 } else { 80 };
    let geolife_db = geolife(91, &g, users, 7);
    let gowalla_db = gowalla(92, &g, users, 7 * 24);
    println!(
        "E9: dataset comparison at eps = 1.0 ({} users, 7 days)\n\
         GeoLife-like: dense commutes | Gowalla-like: sparse Zipf check-ins\n",
        users
    );
    println!(
        "contact rates — geolife {:.3}, gowalla {:.3} contacts/user/epoch\n",
        contact_rate(&geolife_db),
        contact_rate(&gowalla_db)
    );

    let eps = 1.0;
    let infected = vec![g.cell(8, 8)];
    // One shared PolicyIndex per policy: both datasets reuse the same
    // cached distributions.
    let policies: Vec<(&str, Arc<panda_core::PolicyIndex>)> = indexed_policy_menu(&g, &infected)
        .into_iter()
        .map(|(label, index)| (label, Arc::new(index)))
        .collect();
    let datasets = [("geolife", &geolife_db), ("gowalla", &gowalla_db)];

    // Both datasets release on the parallel engine over the same shared
    // per-policy indexes.
    let releaser = ParallelReleaser::new();
    let mut jobs = Vec::new();
    for (dlabel, db) in datasets {
        for (plabel, index) in &policies {
            jobs.push((dlabel, db, plabel.to_string(), Arc::clone(index)));
        }
    }
    let results: Vec<_> = jobs
        .into_iter()
        .map(|(dlabel, db, plabel, index)| {
            let reported = release_db_parallel(db, &index, &GraphExponential, eps, 93, &releaser);
            let util = monitoring_utility(db, &reported, 4);
            (dlabel, plabel, util)
        })
        .collect();

    let mut table = Table::new(
        "e9_dataset_comparison",
        &[
            "dataset",
            "policy",
            "mean_err_m",
            "area_acc",
            "occupancy_l1",
        ],
    );
    for (d, p, u) in &results {
        table.row(&[
            d,
            p,
            &f1(u.mean_distance),
            &format!("{:.3}", u.area_accuracy),
            &format!("{:.4}", u.occupancy_l1),
        ]);
    }
    table.finish();

    // Shape: the policy ordering holds on both datasets.
    let err = |d: &str, p: &str| {
        results
            .iter()
            .find(|r| r.0 == d && r.1 == p)
            .map(|r| r.2.mean_distance)
            .unwrap()
    };
    for d in ["geolife", "gowalla"] {
        assert!(
            err(d, "Gb") < err(d, "G1"),
            "{d}: policy ordering must hold"
        );
        assert!(err(d, "Ga") < err(d, "G1"), "{d}: partition must beat G1");
    }
    println!(
        "Shape check vs paper: the policy ordering (partition < G1 in error)\n\
         is dataset-independent; absolute numbers differ with the mobility\n\
         structure, which is why the demo ships both datasets."
    );
}
