//! Machine-readable release-engine benchmark: writes `BENCH_release.json`
//! so the perf trajectory is trackable across PRs.
//!
//! ```text
//! cargo run --release -p panda-bench --bin bench_release \
//!     [-- --quick] [-- --streaming] [-- --net] [-- --large-graph]
//! ```
//!
//! * `--quick` — CI smoke mode: one small batch, few iterations, still
//!   exercising every code path (parallel release, alias sampling, shard
//!   ingest — and, with `--streaming`/`--net`/`--large-graph`, the ingest
//!   pipeline, the TCP gateway and the hub-label oracle).
//! * `--streaming` — also measure the streaming ingest pipeline under
//!   open-loop Poisson arrivals (sustained reports/sec, p50/p99 flush
//!   latency), appended as a `streaming` section.
//! * `--net` — also measure loopback-TCP ingest through the `panda-net`
//!   gateway against the in-process `submit_batch` baseline (end-to-end
//!   reports/sec to a fully-landed DB, p50/p99 per-batch ack latency,
//!   1 vs 4 concurrent clients), appended as a `net` section.
//! * `--large-graph` — also measure the city-scale distance oracle: index
//!   build time, hub-label memory vs the dense-table equivalent, cold
//!   distance-row derivation, and steady-state GEM release throughput over
//!   one 50k-node connected component (9 216 nodes in quick mode),
//!   appended as a `large_graph` section.
//! * `--cluster` — also measure the sharded ingest tier: end-to-end
//!   reports/sec through a `ShardRouter` fanning over 1, 2 and 4 loopback
//!   shard nodes (each its own gateway + pipeline + server slice) against
//!   the single-process pipeline, with the router's per-frame fan-out
//!   overhead, appended as a `cluster` section.
//! * `--telemetry` — also measure the cost of the live metrics plane: a
//!   saturating in-process ingest run with histogram-derived flush
//!   p50/p99, appended as a `telemetry` section (schema v7) stamped with
//!   whether this binary was compiled with telemetry on (default) or off
//!   (`RUSTFLAGS="--cfg panda_obs_off"`). Run both builds and compare
//!   `reports_per_sec` for the instrumentation overhead (budget < 2%).
//!
//! Measures, per (mechanism × batch size × thread count): reports/sec and
//! p50/p99 per-batch latency of [`ParallelReleaser`] against the
//! single-threaded PR-1 `perturb_batch` baseline; the small-batch
//! dispatch cost of the persistent pool against the PR-2 scoped-spawn
//! path; the per-report-lock vs sampler-handle streaming ablation
//! (`sampler` section) with the shared-cache touch counts;
//! plus the alias-table vs binary-search ns/draw ablation per support
//! size. JSON is assembled by hand (no JSON dependency in the offline
//! workspace).

use panda_bench::workload::{geolife, grid};
use panda_core::release::chunk_rng;
use panda_core::{
    GraphExponential, LocationPolicyGraph, Mechanism, ParallelReleaser, PolicyIndex, SamplerMemo,
    SamplingTable,
};
use panda_geo::CellId;
use panda_surveillance::ingest::{percentile, IngestConfig};
use panda_surveillance::simulation::{run_streaming_simulation, StreamingConfig};
use panda_surveillance::PolicyConfigurator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct ReleaseRow {
    mechanism: &'static str,
    batch: usize,
    threads: usize,
    reports_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_vs_single: f64,
}

struct SamplingRow {
    support: usize,
    alias_ns: f64,
    binary_search_ns: f64,
}

struct SmallBatchRow {
    batch: usize,
    scoped_p50_ms: f64,
    pooled_p50_ms: f64,
    speedup: f64,
}

struct SamplerRow {
    mechanism: &'static str,
    distinct_cells: usize,
    reports: usize,
    per_report_rps: f64,
    sampler_rps: f64,
    speedup: f64,
    per_report_touches: u64,
    sampler_touches: u64,
}

struct StreamingRow {
    label: &'static str,
    max_batch: usize,
    max_delay_ms: f64,
    lanes: usize,
    reports: usize,
    reports_per_sec: f64,
    flush_p50_ms: f64,
    flush_p99_ms: f64,
    batches: usize,
    deadline_flushes: usize,
}

struct TelemetryRow {
    /// `"on"` for a default build, `"off"` when compiled with
    /// `RUSTFLAGS="--cfg panda_obs_off"` — the overhead is the throughput
    /// delta between the two builds' rows.
    mode: &'static str,
    run: usize,
    reports: usize,
    reports_per_sec: f64,
    /// Flush-latency quantiles derived from the pipeline registry's
    /// striped log2 histogram (0 in `off` mode: recording is a no-op).
    hist_flush_p50_ms: f64,
    hist_flush_p99_ms: f64,
}

struct NetRow {
    transport: &'static str,
    clients: usize,
    reports: usize,
    reports_per_sec: f64,
    ack_p50_ms: f64,
    ack_p99_ms: f64,
}

struct ClusterRow {
    topology: &'static str,
    nodes: usize,
    reports: usize,
    reports_per_sec: f64,
    ack_p50_ms: f64,
    ack_p99_ms: f64,
    /// Downstream sub-batches per client frame at the router (1.0 would
    /// be free fan-out; the single-process row reports 0).
    fanout_per_frame: f64,
}

struct LargeGraphRow {
    nodes: u32,
    edges: usize,
    backend: &'static str,
    index_build_ms: f64,
    index_bytes: usize,
    dense_equiv_bytes: usize,
    memory_ratio: f64,
    avg_label_entries: f64,
    row_query_ms: f64,
    distinct_cells: usize,
    reports: usize,
    reports_per_sec_1t: f64,
    reports_per_sec_mt: f64,
    mt_threads: usize,
}

/// Times `iters` runs of `f`, returning per-run latencies in ms (sorted).
fn time_batches(iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    // One warm-up run fills the index caches (the steady-state regime the
    // engine is designed for).
    f();
    let mut latencies: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies
}

fn bench_release(quick: bool) -> Vec<ReleaseRow> {
    let g = grid(32);
    let index = PolicyIndex::new(LocationPolicyGraph::partition(g.clone(), 2, 2));
    let batches: &[usize] = if quick { &[16_384] } else { &[65_536, 262_144] };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let iters = if quick { 3 } else { 15 };
    let mut rows = Vec::new();
    for &n in batches {
        let mut rng = StdRng::seed_from_u64(7);
        let locs: Vec<CellId> = (0..n)
            .map(|_| CellId(rng.gen_range(0..g.n_cells())))
            .collect();
        // Single-threaded PR-1 baseline.
        let mut rng = StdRng::seed_from_u64(11);
        let single = time_batches(iters, || {
            black_box(
                GraphExponential
                    .perturb_batch(&index, 1.0, &locs, &mut rng)
                    .unwrap(),
            );
        });
        let single_p50 = percentile(&single, 0.5);
        rows.push(ReleaseRow {
            mechanism: "gem",
            batch: n,
            threads: 1,
            reports_per_sec: n as f64 / (single_p50 / 1e3),
            p50_ms: single_p50,
            p99_ms: percentile(&single, 0.99),
            speedup_vs_single: 1.0,
        });
        for &t in thread_counts.iter().filter(|&&t| t > 1) {
            let releaser = ParallelReleaser::with_threads(t);
            let lat = time_batches(iters, || {
                black_box(
                    releaser
                        .release(&GraphExponential, &index, 1.0, &locs, 11)
                        .unwrap(),
                );
            });
            let p50 = percentile(&lat, 0.5);
            rows.push(ReleaseRow {
                mechanism: "gem",
                batch: n,
                threads: t,
                reports_per_sec: n as f64 / (p50 / 1e3),
                p50_ms: p50,
                p99_ms: percentile(&lat, 0.99),
                speedup_vs_single: single_p50 / p50,
            });
        }
    }
    rows
}

/// The small-batch dispatch ablation: for batches at/below one chunk the
/// pooled path runs inline on the caller thread, while the PR-2 reference
/// pays a fresh thread spawn per call — the cost streaming micro-batches
/// used to eat on every flush.
fn bench_small_batch(quick: bool) -> Vec<SmallBatchRow> {
    let g = grid(32);
    let index = PolicyIndex::new(LocationPolicyGraph::partition(g.clone(), 2, 2));
    let batches: &[usize] = if quick { &[1024] } else { &[512, 1024, 4096] };
    let iters = if quick { 100 } else { 400 };
    let releaser = ParallelReleaser::new();
    batches
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(7);
            let locs: Vec<CellId> = (0..n)
                .map(|_| CellId(rng.gen_range(0..g.n_cells())))
                .collect();
            let scoped = time_batches(iters, || {
                black_box(
                    releaser
                        .release_scoped(&GraphExponential, &index, 1.0, &locs, 11)
                        .unwrap(),
                );
            });
            let pooled = time_batches(iters, || {
                black_box(
                    releaser
                        .release(&GraphExponential, &index, 1.0, &locs, 11)
                        .unwrap(),
                );
            });
            let (scoped_p50, pooled_p50) = (percentile(&scoped, 0.5), percentile(&pooled, 0.5));
            SmallBatchRow {
                batch: n,
                scoped_p50_ms: scoped_p50,
                pooled_p50_ms: pooled_p50,
                speedup: scoped_p50 / pooled_p50,
            }
        })
        .collect()
}

/// Open-loop streaming ingest: Poisson arrivals across a GeoLife-like
/// population, submitted as fast as they are generated, drained through
/// the bounded-queue pipeline onto the sharded server.
fn bench_streaming(quick: bool) -> Vec<StreamingRow> {
    let g = grid(16);
    let configurator = PolicyConfigurator::new(g.clone(), 4, 2);
    let (n_users, days) = if quick { (200, 2) } else { (1_500, 7) };
    let truth = geolife(5, &g, n_users, days);
    let configs: &[(&'static str, usize, u64)] = if quick {
        &[("micro-batch", 256, 1)]
    } else {
        &[
            // Latency-leaning: small batches, tight deadline.
            ("micro-batch", 256, 1),
            // Throughput-leaning: chunk-sized batches, lazy deadline.
            ("bulk-batch", 4096, 10),
        ]
    };
    configs
        .iter()
        .map(|&(label, max_batch, delay_ms)| {
            let cfg = StreamingConfig {
                mean_reports_per_epoch: 2.0,
                switch_every: 24,
                ingest: IngestConfig {
                    eps: 1.0,
                    max_batch,
                    max_delay: Duration::from_millis(delay_ms),
                    queue_capacity: 16_384,
                    ..Default::default()
                },
            };
            let mut rng = StdRng::seed_from_u64(13);
            let t0 = Instant::now();
            let log = run_streaming_simulation(&truth, &configurator, &cfg, &mut rng);
            let elapsed = t0.elapsed().as_secs_f64();
            StreamingRow {
                label,
                max_batch,
                max_delay_ms: delay_ms as f64,
                lanes: cfg.ingest.release_lanes,
                reports: log.stats.landed,
                reports_per_sec: log.stats.landed as f64 / elapsed,
                flush_p50_ms: log.stats.flush_ms_percentile(0.5),
                flush_p99_ms: log.stats.flush_ms_percentile(0.99),
                batches: log.stats.batches,
                deadline_flushes: log.stats.deadline_flushes,
            }
        })
        .collect()
}

/// Instrumentation-overhead harness: a saturating in-process ingest run
/// (the same shape as the `net` in-process baseline) with per-run
/// end-to-end throughput and the registry's own histogram-derived flush
/// quantiles. The `mode` field stamps whether this binary carries live
/// telemetry (default) or had it compiled out
/// (`RUSTFLAGS="--cfg panda_obs_off"`); run both builds with
/// `--telemetry` and compare `reports_per_sec` to measure the overhead
/// (budget: < 2%).
fn bench_telemetry(quick: bool) -> Vec<TelemetryRow> {
    use panda_surveillance::ingest::IngestPipeline;
    use panda_surveillance::Server;
    use std::sync::Arc;

    let mode = if cfg!(panda_obs_off) { "off" } else { "on" };
    let total: usize = if quick { 131_072 } else { 262_144 };
    let runs = if quick { 3 } else { 4 };
    (0..runs)
        .map(|run| {
            let g = grid(16);
            let server = Arc::new(Server::with_shards(g.clone(), 16));
            let index = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
                g.clone(),
                2,
                2,
            )));
            let pipeline = IngestPipeline::spawn(
                Arc::clone(&server),
                index,
                Arc::new(GraphExponential),
                IngestConfig {
                    max_batch: 256,
                    max_delay: Duration::from_millis(1),
                    queue_capacity: 16_384,
                    eps: 1.0,
                    seed: 7,
                    ..Default::default()
                },
            );
            let registry = pipeline.metrics();
            let handle = pipeline.handle();
            let trace = make_trace_for(run, total);
            let t0 = Instant::now();
            for batch in trace.chunks(256) {
                handle.submit_batch(batch).expect("pipeline alive");
            }
            drop(handle);
            let stats = pipeline.shutdown();
            let elapsed = t0.elapsed().as_secs_f64();
            let (p50, p99) = registry
                .snapshot()
                .histogram("panda_ingest_flush_ns")
                .map(|h| (h.quantile(0.5) as f64 / 1e6, h.quantile(0.99) as f64 / 1e6))
                .unwrap_or((0.0, 0.0));
            TelemetryRow {
                mode,
                run,
                reports: stats.landed,
                reports_per_sec: stats.landed as f64 / elapsed,
                hist_flush_p50_ms: p50,
                hist_flush_p99_ms: p99,
            }
        })
        .collect()
}

/// Loopback network ingest: the same batched submission stream pushed (a)
/// in-process through `IngestHandle::submit_batch` and (b) over TCP
/// through the `panda-net` gateway and client SDK, at 1 and 4 concurrent
/// producers. Wall-clock runs from the first submit to a fully-landed DB
/// (pipeline drained), so `reports_per_sec` is end-to-end; ack latency is
/// the producer-observed per-batch round trip (queue handoff in-process,
/// frame → `Ack` over TCP).
fn bench_net(quick: bool) -> Vec<NetRow> {
    use panda_net::{GatewayClient, IngestGateway};
    use panda_surveillance::ingest::IngestPipeline;
    use panda_surveillance::Server;
    use std::sync::Arc;

    let total: usize = if quick { 16_384 } else { 262_144 };
    let chunk = 256usize;
    let client_counts: &[usize] = if quick { &[1] } else { &[1, 4] };
    let mut rows = Vec::new();
    for &clients in client_counts {
        for transport in ["in-process", "tcp"] {
            let g = grid(16);
            let server = Arc::new(Server::with_shards(g.clone(), 16));
            let index = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
                g.clone(),
                2,
                2,
            )));
            let pipeline = IngestPipeline::spawn(
                Arc::clone(&server),
                index,
                Arc::new(GraphExponential),
                IngestConfig {
                    max_batch: 256,
                    max_delay: Duration::from_millis(1),
                    queue_capacity: 16_384,
                    eps: 1.0,
                    seed: 7,
                    ..Default::default()
                },
            );
            let per_client = total / clients;
            let t0 = Instant::now();
            let mut latencies: Vec<f64> = match transport {
                "in-process" => {
                    let workers: Vec<_> = (0..clients)
                        .map(|c| {
                            let handle = pipeline.handle();
                            std::thread::spawn(move || {
                                let trace = make_trace_for(c, per_client);
                                let mut lat = Vec::with_capacity(per_client / chunk + 1);
                                for batch in trace.chunks(chunk) {
                                    let b0 = Instant::now();
                                    handle.submit_batch(batch).expect("pipeline alive");
                                    lat.push(b0.elapsed().as_secs_f64() * 1e3);
                                }
                                lat
                            })
                        })
                        .collect();
                    workers
                        .into_iter()
                        .flat_map(|w| w.join().expect("producer panicked"))
                        .collect()
                }
                _ => {
                    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle())
                        .expect("bind loopback gateway");
                    let addr = gateway.local_addr();
                    let workers: Vec<_> = (0..clients)
                        .map(|c| {
                            std::thread::spawn(move || {
                                let trace = make_trace_for(c, per_client);
                                let mut client =
                                    GatewayClient::connect(addr).expect("connect gateway");
                                let mut lat = Vec::with_capacity(per_client / chunk + 1);
                                for batch in trace.chunks(chunk) {
                                    let b0 = Instant::now();
                                    client.submit_batch(batch).expect("gateway alive");
                                    lat.push(b0.elapsed().as_secs_f64() * 1e3);
                                }
                                client.shutdown().expect("clean shutdown");
                                lat
                            })
                        })
                        .collect();
                    let lat: Vec<f64> = workers
                        .into_iter()
                        .flat_map(|w| w.join().expect("client panicked"))
                        .collect();
                    gateway.shutdown();
                    lat
                }
            };
            let stats = pipeline.shutdown();
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(stats.landed, total, "{transport}: every report must land");
            latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.push(NetRow {
                transport,
                clients,
                reports: total,
                reports_per_sec: total as f64 / wall,
                ack_p50_ms: percentile(&latencies, 0.5),
                ack_p99_ms: percentile(&latencies, 0.99),
            });
        }
    }
    rows
}

/// The sharded ingest tier: one producer pushing the same batched stream
/// (a) in-process through the pipeline (the single-process baseline) and
/// (b) through a `ShardRouter` fanning over N loopback shard nodes, each
/// behind its own shard-plane gateway with its own pipeline, release
/// lanes and server slice. Wall-clock runs from the first submit to every
/// node fully drained, so `reports_per_sec` is end-to-end aggregate
/// cluster throughput; ack latency is the producer-observed per-frame
/// round trip through the router (stamp + fan-out + downstream acks).
fn bench_cluster(quick: bool) -> Vec<ClusterRow> {
    use panda_net::{
        GatewayClient, GatewayConfig, IngestGateway, RouterConfig, ShardBackend, ShardRouter,
    };
    use panda_surveillance::ingest::IngestPipeline;
    use panda_surveillance::node::ShardNode;
    use panda_surveillance::Server;
    use std::sync::Arc;

    let total: usize = if quick { 16_384 } else { 131_072 };
    let chunk = 256usize;
    let ingest_config = IngestConfig {
        max_batch: 256,
        max_delay: Duration::from_millis(1),
        queue_capacity: 16_384,
        eps: 1.0,
        seed: 7,
        ..Default::default()
    };
    let g = grid(16);
    let index = || {
        std::sync::Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
            g.clone(),
            2,
            2,
        )))
    };
    let trace = make_trace_for(0, total);
    let mut rows = Vec::new();

    // Single-process baseline: the same stream straight into one pipeline.
    {
        let server = Arc::new(Server::with_shards(g.clone(), 16));
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index(),
            Arc::new(GraphExponential),
            ingest_config.clone(),
        );
        let handle = pipeline.handle();
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(total / chunk + 1);
        for batch in trace.chunks(chunk) {
            let b0 = Instant::now();
            handle.submit_batch(batch).expect("pipeline alive");
            lat.push(b0.elapsed().as_secs_f64() * 1e3);
        }
        let stats = pipeline.shutdown();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(stats.landed, total);
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push(ClusterRow {
            topology: "single-process",
            nodes: 1,
            reports: total,
            reports_per_sec: total as f64 / wall,
            ack_p50_ms: percentile(&lat, 0.5),
            ack_p99_ms: percentile(&lat, 0.99),
            fanout_per_frame: 0.0,
        });
    }

    for n in [1usize, 2, 4] {
        let nodes: Vec<ShardNode> = (0..n)
            .map(|_| {
                ShardNode::spawn(
                    Arc::new(Server::with_shards(g.clone(), 16)),
                    index(),
                    Arc::new(GraphExponential),
                    ingest_config.clone(),
                )
            })
            .collect();
        let gateways: Vec<IngestGateway> = nodes
            .iter()
            .map(|node| {
                IngestGateway::bind_with("127.0.0.1:0", node.handle(), GatewayConfig::shard_plane())
                    .expect("bind shard gateway")
            })
            .collect();
        let backends = gateways
            .iter()
            .map(|gw| {
                ShardBackend::remote(
                    GatewayClient::connect(gw.local_addr()).expect("connect shard link"),
                )
            })
            .collect();
        let router = ShardRouter::bind("127.0.0.1:0", backends, RouterConfig::default())
            .expect("bind router");
        let mut client = GatewayClient::connect(router.local_addr()).expect("connect router");
        let t0 = Instant::now();
        let mut lat = Vec::with_capacity(total / chunk + 1);
        for batch in trace.chunks(chunk) {
            let b0 = Instant::now();
            client.submit_batch(batch).expect("router alive");
            lat.push(b0.elapsed().as_secs_f64() * 1e3);
        }
        client.shutdown().expect("clean shutdown");
        let router_stats = router.shutdown();
        for gw in gateways {
            gw.shutdown();
        }
        let landed: usize = nodes.into_iter().map(|node| node.shutdown().landed).sum();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(landed, total, "{n}-node cluster: every report must land");
        assert_eq!(router_stats.reports_routed as usize, total);
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let frames = total.div_ceil(chunk) as f64;
        rows.push(ClusterRow {
            topology: "cluster",
            nodes: n,
            reports: total,
            reports_per_sec: total as f64 / wall,
            ack_p50_ms: percentile(&lat, 0.5),
            ack_p99_ms: percentile(&lat, 0.99),
            fanout_per_frame: router_stats.fanout_batches as f64 / frames,
        });
    }
    rows
}

/// The deterministic per-client workload of [`bench_net`] (free function
/// so the worker closures stay `move`-only).
fn make_trace_for(c: usize, per_client: usize) -> Vec<panda_surveillance::ingest::PendingReport> {
    (0..per_client)
        .map(|i| panda_surveillance::ingest::PendingReport {
            user: panda_mobility::UserId((c * 100_000 + i % 500) as u32),
            epoch: (i / 500) as u32,
            cell: CellId((i % 64) as u32),
            resend: false,
        })
        .collect()
}

/// The city-scale oracle benchmark: one connected `city_like` component
/// far above the dense-tabulation threshold, indexed by the hub-label
/// oracle. Measures the index build, its memory against the k²-entry
/// dense-table equivalent, a cold distance-row derivation (the label-join
/// the incremental sampling tables are built from), and steady-state GEM
/// release throughput over a hotspot-concentrated arrival trace (256
/// distinct cells — alias tables warm after the first touch, the regime
/// the epidemic-surveillance load runs in).
fn bench_large_graph(quick: bool) -> Vec<LargeGraphRow> {
    use panda_bench::workload::city_policy;
    use panda_graph::distances::{DEFAULT_MAX_TABLE_ENTRIES, DEFAULT_ORACLE_ENTRIES_PER_NODE};
    use panda_graph::IndexBackend;

    // 9 216 nodes in quick mode (still above the 4 096-node dense
    // threshold), 50 176 in full mode — the paper-scale city.
    let (w, h) = if quick { (96, 96) } else { (224, 224) };
    let policy = city_policy(
        17,
        w,
        h,
        DEFAULT_MAX_TABLE_ENTRIES,
        DEFAULT_ORACLE_ENTRIES_PER_NODE,
    );
    let nodes = policy.n_locations();
    let edges = policy.graph().n_edges();

    let dist = policy.distance_index().clone();
    let t0 = Instant::now();
    dist.prebuild();
    let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let backend = match dist.backend(0) {
        IndexBackend::Dense => "dense",
        IndexBackend::HubLabels => "hub-labels",
        IndexBackend::Unindexed => "unindexed",
    };
    let index_bytes = dist.memory_bytes();
    let dense_equiv_bytes: usize = (0..dist.n_components())
        .map(|c| {
            let k = dist.members(c).len();
            k * k * 2
        })
        .sum();
    let avg_label_entries = dist
        .hub_labels_of(0)
        .map(|l| l.n_entries() as f64 / l.len() as f64)
        .unwrap_or(0.0);

    // Cold row derivations (fresh label joins, no caching layer).
    let mut row = Vec::new();
    let row_lat = time_batches(if quick { 8 } else { 32 }, || {
        black_box(policy.component_row_u16(CellId(0), &mut row));
    });
    let row_query_ms = percentile(&row_lat, 0.5);

    // Hotspot-concentrated release trace.
    let distinct = 256usize;
    let reports = if quick { 65_536 } else { 262_144 };
    let mut rng = StdRng::seed_from_u64(23);
    let hotspots: Vec<CellId> = (0..distinct)
        .map(|_| CellId(rng.gen_range(0..nodes)))
        .collect();
    let locs: Vec<CellId> = (0..reports)
        .map(|_| hotspots[rng.gen_range(0..distinct)])
        .collect();
    let iters = if quick { 3 } else { 10 };

    let index = PolicyIndex::new(policy);
    let mut rng = StdRng::seed_from_u64(29);
    let single = time_batches(iters, || {
        black_box(
            GraphExponential
                .perturb_batch(&index, 1.0, &locs, &mut rng)
                .unwrap(),
        );
    });
    let reports_per_sec_1t = reports as f64 / (percentile(&single, 0.5) / 1e3);

    let mt_threads = panda_core::release::pool::default_parallelism().max(2);
    let releaser = ParallelReleaser::with_threads(mt_threads);
    let multi = time_batches(iters, || {
        black_box(
            releaser
                .release(&GraphExponential, &index, 1.0, &locs, 29)
                .unwrap(),
        );
    });
    let reports_per_sec_mt = reports as f64 / (percentile(&multi, 0.5) / 1e3);

    vec![LargeGraphRow {
        nodes,
        edges,
        backend,
        index_build_ms,
        index_bytes,
        dense_equiv_bytes,
        memory_ratio: index_bytes as f64 / dense_equiv_bytes as f64,
        avg_label_entries,
        row_query_ms,
        distinct_cells: distinct,
        reports,
        reports_per_sec_1t,
        reports_per_sec_mt,
        mt_threads,
    }]
}

/// The streaming contention ablation: per-report releases (each report
/// resolves against the shared distribution cache — one mutex touch per
/// report, the pre-sampler ingest regime) versus sampler-handle releases
/// (one resolution per distinct cell per lane, then lock-free draws).
/// Both paths draw every report from its own `chunk_rng(seed, seq)` stream
/// and produce identical cells; only the shared-cache traffic differs.
fn bench_sampler(quick: bool) -> Vec<SamplerRow> {
    let g = grid(32);
    let index = PolicyIndex::new(LocationPolicyGraph::partition(g.clone(), 2, 2));
    let n = if quick { 65_536 } else { 262_144 };
    let iters = if quick { 3 } else { 15 };
    let distinct_counts: &[usize] = if quick { &[4] } else { &[1, 4, 64] };
    let mech = GraphExponential;
    distinct_counts
        .iter()
        .map(|&distinct| {
            // Cell-concentrated arrival trace (the contention-defect load).
            let cells: Vec<CellId> = (0..n).map(|i| CellId((i % distinct) as u32)).collect();
            let mut out = vec![CellId(0); n];
            let t0_touch = index.distribution_cache_touches();
            let per_report = time_batches(iters, || {
                for (seq, &cell) in cells.iter().enumerate() {
                    let mut rng = chunk_rng(5, seq as u64);
                    let sampler = mech.sampler(&index, 1.0, cell).unwrap();
                    out[seq] = sampler.draw(&mut rng);
                }
                black_box(&out);
            });
            let per_report_touches =
                (index.distribution_cache_touches() - t0_touch) / (iters as u64 + 1);
            let t1_touch = index.distribution_cache_touches();
            let sampler_path = time_batches(iters, || {
                let mut memo = SamplerMemo::new();
                for (seq, &cell) in cells.iter().enumerate() {
                    let mut rng = chunk_rng(5, seq as u64);
                    let sampler = memo.resolve(&mech, &index, 1.0, cell).unwrap().unwrap();
                    out[seq] = sampler.draw(&mut rng);
                }
                black_box(&out);
            });
            let sampler_touches =
                (index.distribution_cache_touches() - t1_touch) / (iters as u64 + 1);
            let (p50_report, p50_sampler) =
                (percentile(&per_report, 0.5), percentile(&sampler_path, 0.5));
            SamplerRow {
                mechanism: "gem",
                distinct_cells: distinct,
                reports: n,
                per_report_rps: n as f64 / (p50_report / 1e3),
                sampler_rps: n as f64 / (p50_sampler / 1e3),
                speedup: p50_report / p50_sampler,
                per_report_touches,
                sampler_touches,
            }
        })
        .collect()
}

fn bench_sampling(quick: bool) -> Vec<SamplingRow> {
    let draws = if quick { 200_000 } else { 2_000_000 };
    let supports: &[usize] = if quick {
        &[1024]
    } else {
        &[256, 1024, 4096, 16_384]
    };
    supports
        .iter()
        .map(|&k| {
            let dist: Vec<(CellId, f64)> = (0..k as u32)
                .map(|i| (CellId(i), 1.0 + f64::from(i % 31)))
                .collect();
            let alias = SamplingTable::alias(dist.clone());
            let cumulative = SamplingTable::cumulative(dist);
            let time_draws = |table: &SamplingTable| {
                let mut rng = StdRng::seed_from_u64(3);
                let t0 = Instant::now();
                for _ in 0..draws {
                    black_box(table.sample(&mut rng));
                }
                t0.elapsed().as_secs_f64() * 1e9 / draws as f64
            };
            SamplingRow {
                support: k,
                alias_ns: time_draws(&alias),
                binary_search_ns: time_draws(&cumulative),
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let telemetry_mode = std::env::args().any(|a| a == "--telemetry");
    let streaming_mode = std::env::args().any(|a| a == "--streaming");
    let net_mode = std::env::args().any(|a| a == "--net");
    let large_graph_mode = std::env::args().any(|a| a == "--large-graph");
    let cluster_mode = std::env::args().any(|a| a == "--cluster");
    let hw = panda_core::release::pool::default_parallelism();
    println!(
        "release-engine bench ({} mode, {hw} hardware threads)\n",
        if quick { "quick" } else { "full" }
    );

    let release = bench_release(quick);
    println!("mechanism  batch    threads  reports/s    p50 ms   p99 ms   speedup");
    for r in &release {
        println!(
            "{:<9}  {:<7}  {:<7}  {:<11.0}  {:<7.2}  {:<7.2}  {:.2}x",
            r.mechanism,
            r.batch,
            r.threads,
            r.reports_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.speedup_vs_single
        );
    }

    let small_batch = bench_small_batch(quick);
    println!("\nsmall batch  scoped p50 ms  pooled p50 ms  pooled speedup");
    for s in &small_batch {
        println!(
            "{:<11}  {:<13.4}  {:<13.4}  {:.2}x",
            s.batch, s.scoped_p50_ms, s.pooled_p50_ms, s.speedup
        );
    }

    let streaming = if streaming_mode {
        let rows = bench_streaming(quick);
        println!(
            "\nstreaming    max_batch  delay ms  lanes  reports  reports/s  flush p50 ms  flush p99 ms  batches  deadline"
        );
        for s in &rows {
            println!(
                "{:<11}  {:<9}  {:<8.1}  {:<5}  {:<7}  {:<9.0}  {:<12.3}  {:<12.3}  {:<7}  {}",
                s.label,
                s.max_batch,
                s.max_delay_ms,
                s.lanes,
                s.reports,
                s.reports_per_sec,
                s.flush_p50_ms,
                s.flush_p99_ms,
                s.batches,
                s.deadline_flushes
            );
        }
        rows
    } else {
        Vec::new()
    };

    let telemetry = if telemetry_mode {
        let rows = bench_telemetry(quick);
        println!(
            "\ntelemetry ({} in this build)  run  reports  reports/s  hist flush p50 ms  hist flush p99 ms",
            rows[0].mode
        );
        for t in &rows {
            println!(
                "{:<27}  {:<3}  {:<7}  {:<9.0}  {:<17.3}  {:<17.3}",
                t.mode,
                t.run,
                t.reports,
                t.reports_per_sec,
                t.hist_flush_p50_ms,
                t.hist_flush_p99_ms
            );
        }
        println!(
            "(re-run this section under RUSTFLAGS=\"--cfg panda_obs_off\" and compare \
             reports/s for the instrumentation overhead; budget < 2%)"
        );
        rows
    } else {
        Vec::new()
    };

    let net = if net_mode {
        let rows = bench_net(quick);
        println!("\nnet         clients  reports  reports/s  ack p50 ms  ack p99 ms");
        for n in &rows {
            println!(
                "{:<10}  {:<7}  {:<7}  {:<9.0}  {:<10.4}  {:<10.4}",
                n.transport, n.clients, n.reports, n.reports_per_sec, n.ack_p50_ms, n.ack_p99_ms
            );
        }
        rows
    } else {
        Vec::new()
    };

    let cluster = if cluster_mode {
        let rows = bench_cluster(quick);
        println!(
            "\ncluster         nodes  reports  reports/s  ack p50 ms  ack p99 ms  fanout/frame"
        );
        for c in &rows {
            println!(
                "{:<14}  {:<5}  {:<7}  {:<9.0}  {:<10.4}  {:<10.4}  {:.3}",
                c.topology,
                c.nodes,
                c.reports,
                c.reports_per_sec,
                c.ack_p50_ms,
                c.ack_p99_ms,
                c.fanout_per_frame
            );
        }
        rows
    } else {
        Vec::new()
    };

    let large_graph = if large_graph_mode {
        let rows = bench_large_graph(quick);
        println!(
            "\nlarge graph  nodes  edges   backend     build ms  index MB  dense-equiv MB  ratio  avg label  row ms  1t reports/s  {}t reports/s",
            rows[0].mt_threads
        );
        for l in &rows {
            println!(
                "{:<11}  {:<5}  {:<6}  {:<10}  {:<8.0}  {:<8.1}  {:<14.1}  {:<5.3}  {:<9.1}  {:<6.2}  {:<12.0}  {:.0}",
                "city",
                l.nodes,
                l.edges,
                l.backend,
                l.index_build_ms,
                l.index_bytes as f64 / 1e6,
                l.dense_equiv_bytes as f64 / 1e6,
                l.memory_ratio,
                l.avg_label_entries,
                l.row_query_ms,
                l.reports_per_sec_1t,
                l.reports_per_sec_mt
            );
        }
        rows
    } else {
        Vec::new()
    };

    let sampler = bench_sampler(quick);
    println!(
        "\nsampler   distinct  reports  per-report r/s  sampler r/s  speedup  touches (report/sampler)"
    );
    for s in &sampler {
        println!(
            "{:<8}  {:<8}  {:<7}  {:<14.0}  {:<11.0}  {:<6.2}x  {}/{}",
            s.mechanism,
            s.distinct_cells,
            s.reports,
            s.per_report_rps,
            s.sampler_rps,
            s.speedup,
            s.per_report_touches,
            s.sampler_touches
        );
    }

    let sampling = bench_sampling(quick);
    println!("\nsupport  alias ns/draw  binary-search ns/draw  alias speedup");
    for s in &sampling {
        println!(
            "{:<7}  {:<13.1}  {:<21.1}  {:.2}x",
            s.support,
            s.alias_ns,
            s.binary_search_ns,
            s.binary_search_ns / s.alias_ns
        );
    }

    // Hand-assembled JSON (the offline workspace carries no JSON crate).
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"panda-bench-release/v7\",\n");
    json.push_str(&format!(
        "  \"telemetry_compiled\": \"{}\",\n",
        if cfg!(panda_obs_off) { "off" } else { "on" }
    ));
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str("  \"release\": [\n");
    for (i, r) in release.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mechanism\": \"{}\", \"batch\": {}, \"threads\": {}, \
             \"reports_per_sec\": {:.0}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"speedup_vs_single\": {:.3}}}{}\n",
            r.mechanism,
            r.batch,
            r.threads,
            r.reports_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.speedup_vs_single,
            if i + 1 < release.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"small_batch\": [\n");
    for (i, s) in small_batch.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch\": {}, \"scoped_p50_ms\": {:.4}, \"pooled_p50_ms\": {:.4}, \
             \"pooled_speedup\": {:.3}}}{}\n",
            s.batch,
            s.scoped_p50_ms,
            s.pooled_p50_ms,
            s.speedup,
            if i + 1 < small_batch.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    if !streaming.is_empty() {
        json.push_str("  \"streaming\": [\n");
        for (i, s) in streaming.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"label\": \"{}\", \"max_batch\": {}, \"max_delay_ms\": {:.1}, \
                 \"lanes\": {}, \"reports\": {}, \"reports_per_sec\": {:.0}, \
                 \"flush_p50_ms\": {:.3}, \"flush_p99_ms\": {:.3}, \"batches\": {}, \
                 \"deadline_flushes\": {}}}{}\n",
                s.label,
                s.max_batch,
                s.max_delay_ms,
                s.lanes,
                s.reports,
                s.reports_per_sec,
                s.flush_p50_ms,
                s.flush_p99_ms,
                s.batches,
                s.deadline_flushes,
                if i + 1 < streaming.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
    }
    if !telemetry.is_empty() {
        json.push_str("  \"telemetry\": [\n");
        for (i, t) in telemetry.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"mode\": \"{}\", \"run\": {}, \"reports\": {}, \
                 \"reports_per_sec\": {:.0}, \"hist_flush_p50_ms\": {:.3}, \
                 \"hist_flush_p99_ms\": {:.3}}}{}\n",
                t.mode,
                t.run,
                t.reports,
                t.reports_per_sec,
                t.hist_flush_p50_ms,
                t.hist_flush_p99_ms,
                if i + 1 < telemetry.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
    }
    if !net.is_empty() {
        json.push_str("  \"net\": [\n");
        for (i, n) in net.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"transport\": \"{}\", \"clients\": {}, \"reports\": {}, \
                 \"reports_per_sec\": {:.0}, \"ack_p50_ms\": {:.4}, \"ack_p99_ms\": {:.4}}}{}\n",
                n.transport,
                n.clients,
                n.reports,
                n.reports_per_sec,
                n.ack_p50_ms,
                n.ack_p99_ms,
                if i + 1 < net.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
    }
    if !cluster.is_empty() {
        json.push_str("  \"cluster\": [\n");
        for (i, c) in cluster.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"topology\": \"{}\", \"nodes\": {}, \"reports\": {}, \
                 \"reports_per_sec\": {:.0}, \"ack_p50_ms\": {:.4}, \"ack_p99_ms\": {:.4}, \
                 \"fanout_per_frame\": {:.3}}}{}\n",
                c.topology,
                c.nodes,
                c.reports,
                c.reports_per_sec,
                c.ack_p50_ms,
                c.ack_p99_ms,
                c.fanout_per_frame,
                if i + 1 < cluster.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
    }
    if !large_graph.is_empty() {
        json.push_str("  \"large_graph\": [\n");
        for (i, l) in large_graph.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"nodes\": {}, \"edges\": {}, \"backend\": \"{}\", \
                 \"index_build_ms\": {:.1}, \"index_bytes\": {}, \
                 \"dense_equiv_bytes\": {}, \"memory_ratio\": {:.4}, \
                 \"avg_label_entries\": {:.1}, \"row_query_ms\": {:.3}, \
                 \"distinct_cells\": {}, \"reports\": {}, \
                 \"reports_per_sec_1t\": {:.0}, \"reports_per_sec_mt\": {:.0}, \
                 \"mt_threads\": {}}}{}\n",
                l.nodes,
                l.edges,
                l.backend,
                l.index_build_ms,
                l.index_bytes,
                l.dense_equiv_bytes,
                l.memory_ratio,
                l.avg_label_entries,
                l.row_query_ms,
                l.distinct_cells,
                l.reports,
                l.reports_per_sec_1t,
                l.reports_per_sec_mt,
                l.mt_threads,
                if i + 1 < large_graph.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
    }
    json.push_str("  \"sampler\": [\n");
    for (i, s) in sampler.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mechanism\": \"{}\", \"distinct_cells\": {}, \"reports\": {}, \
             \"per_report_rps\": {:.0}, \"sampler_rps\": {:.0}, \"speedup\": {:.3}, \
             \"per_report_touches\": {}, \"sampler_touches\": {}}}{}\n",
            s.mechanism,
            s.distinct_cells,
            s.reports,
            s.per_report_rps,
            s.sampler_rps,
            s.speedup,
            s.per_report_touches,
            s.sampler_touches,
            if i + 1 < sampler.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"sampling\": [\n");
    for (i, s) in sampling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"support\": {}, \"alias_ns_per_draw\": {:.2}, \
             \"binary_search_ns_per_draw\": {:.2}, \"alias_speedup\": {:.3}}}{}\n",
            s.support,
            s.alias_ns,
            s.binary_search_ns,
            s.binary_search_ns / s.alias_ns,
            if i + 1 < sampling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_release.json", &json).expect("write BENCH_release.json");
    println!("\n[saved BENCH_release.json]");
}
