//! Machine-readable release-engine benchmark: writes `BENCH_release.json`
//! so the perf trajectory is trackable across PRs.
//!
//! ```text
//! cargo run --release -p panda-bench --bin bench_release [-- --quick]
//! ```
//!
//! * `--quick` — CI smoke mode: one small batch, few iterations, still
//!   exercising every code path (parallel release, alias sampling, shard
//!   ingest).
//!
//! Measures, per (mechanism × batch size × thread count): reports/sec and
//! p50/p99 per-batch latency of [`ParallelReleaser`] against the
//! single-threaded PR-1 `perturb_batch` baseline; plus the alias-table vs
//! binary-search ns/draw ablation per support size. JSON is assembled by
//! hand (no JSON dependency in the offline workspace).

use panda_bench::workload::grid;
use panda_core::{
    GraphExponential, LocationPolicyGraph, Mechanism, ParallelReleaser, PolicyIndex, SamplingTable,
};
use panda_geo::CellId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

struct ReleaseRow {
    mechanism: &'static str,
    batch: usize,
    threads: usize,
    reports_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_vs_single: f64,
}

struct SamplingRow {
    support: usize,
    alias_ns: f64,
    binary_search_ns: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Times `iters` runs of `f`, returning per-run latencies in ms (sorted).
fn time_batches(iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    // One warm-up run fills the index caches (the steady-state regime the
    // engine is designed for).
    f();
    let mut latencies: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies
}

fn bench_release(quick: bool) -> Vec<ReleaseRow> {
    let g = grid(32);
    let index = PolicyIndex::new(LocationPolicyGraph::partition(g.clone(), 2, 2));
    let batches: &[usize] = if quick { &[16_384] } else { &[65_536, 262_144] };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let iters = if quick { 3 } else { 15 };
    let mut rows = Vec::new();
    for &n in batches {
        let mut rng = StdRng::seed_from_u64(7);
        let locs: Vec<CellId> = (0..n)
            .map(|_| CellId(rng.gen_range(0..g.n_cells())))
            .collect();
        // Single-threaded PR-1 baseline.
        let mut rng = StdRng::seed_from_u64(11);
        let single = time_batches(iters, || {
            black_box(
                GraphExponential
                    .perturb_batch(&index, 1.0, &locs, &mut rng)
                    .unwrap(),
            );
        });
        let single_p50 = percentile(&single, 0.5);
        rows.push(ReleaseRow {
            mechanism: "gem",
            batch: n,
            threads: 1,
            reports_per_sec: n as f64 / (single_p50 / 1e3),
            p50_ms: single_p50,
            p99_ms: percentile(&single, 0.99),
            speedup_vs_single: 1.0,
        });
        for &t in thread_counts.iter().filter(|&&t| t > 1) {
            let releaser = ParallelReleaser::with_threads(t);
            let lat = time_batches(iters, || {
                black_box(
                    releaser
                        .release(&GraphExponential, &index, 1.0, &locs, 11)
                        .unwrap(),
                );
            });
            let p50 = percentile(&lat, 0.5);
            rows.push(ReleaseRow {
                mechanism: "gem",
                batch: n,
                threads: t,
                reports_per_sec: n as f64 / (p50 / 1e3),
                p50_ms: p50,
                p99_ms: percentile(&lat, 0.99),
                speedup_vs_single: single_p50 / p50,
            });
        }
    }
    rows
}

fn bench_sampling(quick: bool) -> Vec<SamplingRow> {
    let draws = if quick { 200_000 } else { 2_000_000 };
    let supports: &[usize] = if quick {
        &[1024]
    } else {
        &[256, 1024, 4096, 16_384]
    };
    supports
        .iter()
        .map(|&k| {
            let dist: Vec<(CellId, f64)> = (0..k as u32)
                .map(|i| (CellId(i), 1.0 + f64::from(i % 31)))
                .collect();
            let alias = SamplingTable::alias(dist.clone());
            let cumulative = SamplingTable::cumulative(dist);
            let time_draws = |table: &SamplingTable| {
                let mut rng = StdRng::seed_from_u64(3);
                let t0 = Instant::now();
                for _ in 0..draws {
                    black_box(table.sample(&mut rng));
                }
                t0.elapsed().as_secs_f64() * 1e9 / draws as f64
            };
            SamplingRow {
                support: k,
                alias_ns: time_draws(&alias),
                binary_search_ns: time_draws(&cumulative),
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "release-engine bench ({} mode, {hw} hardware threads)\n",
        if quick { "quick" } else { "full" }
    );

    let release = bench_release(quick);
    println!("mechanism  batch    threads  reports/s    p50 ms   p99 ms   speedup");
    for r in &release {
        println!(
            "{:<9}  {:<7}  {:<7}  {:<11.0}  {:<7.2}  {:<7.2}  {:.2}x",
            r.mechanism,
            r.batch,
            r.threads,
            r.reports_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.speedup_vs_single
        );
    }

    let sampling = bench_sampling(quick);
    println!("\nsupport  alias ns/draw  binary-search ns/draw  alias speedup");
    for s in &sampling {
        println!(
            "{:<7}  {:<13.1}  {:<21.1}  {:.2}x",
            s.support,
            s.alias_ns,
            s.binary_search_ns,
            s.binary_search_ns / s.alias_ns
        );
    }

    // Hand-assembled JSON (the offline workspace carries no JSON crate).
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"panda-bench-release/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str("  \"release\": [\n");
    for (i, r) in release.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mechanism\": \"{}\", \"batch\": {}, \"threads\": {}, \
             \"reports_per_sec\": {:.0}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"speedup_vs_single\": {:.3}}}{}\n",
            r.mechanism,
            r.batch,
            r.threads,
            r.reports_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.speedup_vs_single,
            if i + 1 < release.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"sampling\": [\n");
    for (i, s) in sampling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"support\": {}, \"alias_ns_per_draw\": {:.2}, \
             \"binary_search_ns_per_draw\": {:.2}, \"alias_speedup\": {:.3}}}{}\n",
            s.support,
            s.alias_ns,
            s.binary_search_ns,
            s.binary_search_ns / s.alias_ns,
            if i + 1 < sampling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_release.json", &json).expect("write BENCH_release.json");
    println!("\n[saved BENCH_release.json]");
}
