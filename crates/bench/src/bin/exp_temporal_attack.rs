//! **E10 (extension)** — temporal correlations: HMM tracking vs per-epoch
//! inference, with and without timeline repair.
//!
//! Per-epoch {ε,G} audits say nothing about an attacker who chains releases
//! with a mobility model (the PGLP technical report's central caveat).
//! This experiment measures, at several ε:
//!
//! * the per-epoch Bayesian attack error (the E5 metric),
//! * the HMM forward–backward tracking error on the same releases,
//! * the tracking error when releases go through the
//!   [`panda_core::timeline::TimelineReleaser`] with
//!   `Restrict` repair (the defence).
//!
//! Expected shape: tracking ≤ per-epoch error (the attacker only gains);
//! the gap narrows as ε grows (single releases are already sharp); repair
//! costs some utility but does not *help* the attacker.

use panda_attack::{BayesEstimator, LikelihoodModel, Prior, Tracker};
use panda_bench::workload::grid;
use panda_bench::{f1, Table};
use panda_core::budget::{BudgetLedger, FixedPerEpoch};
use panda_core::timeline::{RepairStrategy, TimelineReleaser};
use panda_core::{GraphExponential, LocationPolicyGraph, Mechanism, PolicyIndex};
use panda_geo::CellId;
use panda_mobility::markov::MobilityKernel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(8);
    let policy = LocationPolicyGraph::g1_geo_indistinguishability(g.clone());
    let index = PolicyIndex::new(policy.clone());
    let kernel = MobilityKernel::lazy_walk(&g, 0.6);
    let prior = Prior::uniform(&g);
    let horizon = 12usize;
    let n_walks = if full { 60 } else { 25 };
    println!(
        "E10 (extension): temporal attack on {}x{} G1 policy, {} walks x {} epochs\n",
        g.width(),
        g.height(),
        n_walks,
        horizon
    );

    let mut table = Table::new(
        "e10_temporal_attack",
        &[
            "eps",
            "per_epoch_err_m",
            "tracking_err_m",
            "tracking_repaired_err_m",
        ],
    );
    let eps_values = if full {
        vec![0.2, 0.5, 1.0, 2.0, 4.0]
    } else {
        vec![0.2, 1.0, 4.0]
    };
    let mut rows = Vec::new();
    for &eps in &eps_values {
        let like = LikelihoodModel::build(&GraphExponential, &policy, eps, 0).unwrap();
        let tracker = Tracker::new(&g, &kernel, &like, BayesEstimator::MinExpectedDistance);
        let mut rng = StdRng::seed_from_u64(101);
        let (mut per_epoch, mut tracking, mut tracking_rep) = (0.0, 0.0, 0.0);
        for _ in 0..n_walks {
            // Truth drawn from the attacker's own mobility model.
            let mut cell = prior.sample(&mut rng);
            let mut truth = Vec::with_capacity(horizon);
            for _ in 0..horizon {
                truth.push(cell);
                cell = kernel.step(&mut rng, cell);
            }
            // Plain releases of the whole walk through the indexed bulk
            // path (one cached table per visited cell).
            let obs: Vec<Option<CellId>> = GraphExponential
                .perturb_batch(&index, eps, &truth, &mut rng)
                .unwrap()
                .into_iter()
                .map(Some)
                .collect();
            // Per-epoch attack.
            for (z, s) in obs.iter().zip(truth.iter()) {
                let est = panda_attack::bayes::estimate(
                    &g,
                    &prior,
                    &like,
                    z.unwrap(),
                    BayesEstimator::MinExpectedDistance,
                )
                .unwrap();
                per_epoch += g.distance(est, *s) / horizon as f64;
            }
            // HMM tracking on the same releases.
            tracking += tracker.attack(&prior, &obs, &truth).mean_error;
            // Repaired timeline releases, attacked the same way.
            let alloc = FixedPerEpoch { eps };
            let releaser = TimelineReleaser::new(
                &policy,
                &GraphExponential,
                &alloc,
                1,
                RepairStrategy::Restrict,
            );
            let mut ledger = BudgetLedger::new(eps * horizon as f64 + 1.0);
            let result = releaser.release(&truth, &mut ledger, &mut rng).unwrap();
            tracking_rep += tracker
                .attack(&prior, &result.released_cells(), &truth)
                .mean_error;
        }
        let n = n_walks as f64;
        table.row(&[
            &eps,
            &f1(per_epoch / n),
            &f1(tracking / n),
            &f1(tracking_rep / n),
        ]);
        rows.push((eps, per_epoch / n, tracking / n, tracking_rep / n));
    }
    table.finish();

    for (eps, per_epoch, tracking, _) in &rows {
        assert!(
            tracking <= &(per_epoch + 20.0),
            "eps {eps}: tracking should not be much worse than per-epoch"
        );
    }
    let first = &rows[0];
    assert!(
        first.2 < first.1,
        "at low eps the HMM must beat per-epoch: {} !< {}",
        first.2,
        first.1
    );
    println!(
        "Shape check: chaining releases with a mobility model strictly\n\
         strengthens the attack at low eps (temporal correlation leak); the\n\
         gap closes as eps grows. Timeline repair does not enlarge the leak."
    );
}
