//! **E4 — §3.2(2)**: the contact-tracing procedure with dynamic policy
//! graphs, evaluated as precision/recall against the rule on ground truth.
//!
//! Three server strategies are compared for each diagnosed patient:
//! * **static** — run the rule on the originally-perturbed reports (no
//!   policy update);
//! * **dynamic** — the full §3.2 protocol: patient disclosure → `Gc`
//!   update → re-send → rule (expected recall 1.0, since infected-cell
//!   visits arrive exactly);
//! * **no-privacy** — the rule on true data (the definitional upper bound,
//!   precision = recall = 1).

use panda_bench::workload::{geolife, grid};
use panda_bench::{f3, Table};
use panda_core::GraphExponential;
use panda_epidemic::{simulate_outbreak, OutbreakConfig};
use panda_geo::CellId;
use panda_mobility::Timestamp;
use panda_surveillance::tracing::{dynamic_trace, ContactRule, ContactTracer, TraceOutcome};
use panda_surveillance::{Client, ClientConfig, ConsentRule, PolicyConfigurator, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make_clients(
    truth: &panda_mobility::TrajectoryDb,
    policy: &panda_core::LocationPolicyGraph,
) -> Vec<Client> {
    truth
        .trajectories()
        .iter()
        .map(|tr| {
            let mut c = Client::new(
                tr.user,
                ClientConfig {
                    retention: 400,
                    budget: 2_000.0,
                    consent: ConsentRule::AlwaysAccept,
                },
                policy.clone(),
                Box::new(GraphExponential),
                1.0,
            );
            for (t, &cell) in tr.cells.iter().enumerate() {
                c.observe(t as Timestamp, cell);
            }
            c
        })
        .collect()
}

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(16);
    let truth = geolife(31, &g, if full { 150 } else { 60 }, 7);
    let mut rng = StdRng::seed_from_u64(32);
    let outbreak = simulate_outbreak(
        &mut rng,
        &truth,
        &OutbreakConfig {
            n_seeds: 3,
            diagnosis_delay: 24,
            p_transmit: 0.5,
            ..Default::default()
        },
    );
    let n_patients = if full { 6 } else { 3 };
    let patients: Vec<_> = outbreak.diagnoses.iter().take(n_patients).collect();
    println!(
        "E4: contact tracing ({} users, attack rate {:.0}%, {} diagnosed patients evaluated)\n",
        truth.n_users(),
        100.0 * outbreak.attack_rate(),
        patients.len()
    );

    let configurator = PolicyConfigurator::new(g.clone(), 4, 2);
    let tracer = ContactTracer::default();
    let mut table = Table::new(
        "e4_contact_tracing",
        &[
            "patient",
            "strategy",
            "flagged",
            "true_contacts",
            "precision",
            "recall",
            "resends",
        ],
    );

    let mut static_recalls = Vec::new();
    let mut dynamic_recalls = Vec::new();
    let mut static_precisions = Vec::new();
    let mut dynamic_precisions = Vec::new();
    for &&(patient, t_diag) in &patients {
        let window = (t_diag.saturating_sub(14 * 24), t_diag);
        let history: Vec<(Timestamp, CellId)> = (window.0..window.1)
            .filter_map(|t| truth.cell_of(patient, t).map(|c| (t, c)))
            .collect();
        let ground_truth = tracer.find_contacts(&truth, patient, &history, window.0, window.1);

        // --- static: originally-perturbed reports, no update. -----------
        let server = Server::new(g.clone());
        let mut clients = make_clients(&truth, &configurator.for_analysis());
        let mut rng_s = StdRng::seed_from_u64(1000 + patient.0 as u64);
        for c in clients.iter_mut() {
            for t in window.0..window.1 {
                if let Ok(r) = c.report(t, &mut rng_s) {
                    server.receive(r);
                }
            }
        }
        let reported = server.reported_db(window.1);
        let static_flags = tracer.find_contacts(&reported, patient, &history, window.0, window.1);
        let static_outcome = TraceOutcome::evaluate(static_flags, ground_truth.clone(), 0);
        table.row(&[
            &patient,
            &"static",
            &static_outcome.flagged.len(),
            &static_outcome.ground_truth.len(),
            &f3(static_outcome.precision),
            &f3(static_outcome.recall),
            &0,
        ]);
        static_recalls.push(static_outcome.recall);
        static_precisions.push(static_outcome.precision);

        // --- dynamic: full protocol with Gc update + re-send. ------------
        let server = Server::new(g.clone());
        let mut clients = make_clients(&truth, &configurator.for_analysis());
        let mut rng_d = StdRng::seed_from_u64(2000 + patient.0 as u64);
        let outcome = dynamic_trace(
            &mut clients,
            &server,
            &configurator,
            &truth,
            patient,
            window,
            4.0,
            ContactRule::default(),
            &mut rng_d,
        );
        table.row(&[
            &patient,
            &"dynamic",
            &outcome.flagged.len(),
            &outcome.ground_truth.len(),
            &f3(outcome.precision),
            &f3(outcome.recall),
            &outcome.resend_count,
        ]);
        dynamic_recalls.push(outcome.recall);
        dynamic_precisions.push(outcome.precision);

        // --- no-privacy upper bound. -------------------------------------
        let oracle = TraceOutcome::evaluate(ground_truth.clone(), ground_truth, 0);
        table.row(&[
            &patient,
            &"no-privacy",
            &oracle.flagged.len(),
            &oracle.ground_truth.len(),
            &f3(oracle.precision),
            &f3(oracle.recall),
            &0,
        ]);
    }
    table.finish();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean recall:    static {:.3} vs dynamic {:.3}",
        mean(&static_recalls),
        mean(&dynamic_recalls)
    );
    println!(
        "mean precision: static {:.3} vs dynamic {:.3}",
        mean(&static_precisions),
        mean(&dynamic_precisions)
    );
    assert!(
        mean(&dynamic_recalls) >= mean(&static_recalls),
        "dynamic policies must not trace worse than static"
    );
    assert!(
        (mean(&dynamic_recalls) - 1.0).abs() < 1e-9,
        "dynamic protocol recovers all rule-defined contacts"
    );
    assert!(
        mean(&dynamic_precisions) >= mean(&static_precisions),
        "dynamic tracing must not over-flag more than static"
    );
    println!(
        "\nShape check vs paper: tracing on statically-perturbed data over-flags\n\
         badly (precision collapses: perturbed strangers collide with the\n\
         patient's cells) and its recall is at the mercy of the noise. The\n\
         dynamic policy update + re-send round is exact on both axes because\n\
         visits to the patient's cells are disclosed exactly under Gc —\n\
         §3.2's procedure, 'full usability of contact tracing with reasonable\n\
         privacy'."
    );
}
