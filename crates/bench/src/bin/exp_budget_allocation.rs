//! **E8 (extension)** — policy-aware budget allocation ablation.
//!
//! The paper's framing ("a new dimension to tune the utility-privacy
//! trade-off") implies the server will run *different policies at different
//! times* — coarse `Ga` for routine monitoring, finer `Gb` during analysis
//! campaigns. A fixed per-epoch ε wastes budget on coarse days and starves
//! fine days. This ablation (DESIGN.md §6) compares four allocators over a
//! two-week horizon with a weekday/weekend policy schedule, all spending
//! the same lifetime budget:
//!
//! * `fixed` — constant ε until dry;
//! * `even-split` — remaining/remaining-epochs;
//! * `geometric-decay` — front-loaded;
//! * `diameter-proportional` — ε sized to the policy's component diameter
//!   (the policy-aware allocator).
//!
//! Expected shape: at equal total budget, the policy-aware allocator
//! achieves lower mean utility error than `fixed`/`even-split`, because it
//! shifts ε from small-diameter (cheap) epochs to large-diameter
//! (expensive) ones.

use panda_bench::workload::{geolife, grid};
use panda_bench::{f1, f3, Table};
use panda_core::budget::{
    BudgetAllocator, BudgetLedger, DiameterProportional, EvenSplit, FixedPerEpoch, GeometricDecay,
};
use panda_core::{GraphExponential, LocationPolicyGraph, Mechanism};
use panda_mobility::Timestamp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = panda_bench::full_mode();
    let g = grid(16);
    let days = if full { 14 } else { 7 };
    let truth = geolife(81, &g, if full { 120 } else { 50 }, days);
    let horizon = truth.horizon();
    // Weekday: fine Gb (analysis campaign, big diameter cost);
    // weekend: coarse Ga components… note Ga has *larger* diameter blocks.
    // Schedule: weekdays Gb (diameter 1 cliques 2x2 → small), weekends G1
    // (diameter = grid span → large). The heterogeneity is what the
    // policy-aware allocator exploits.
    let gb = LocationPolicyGraph::partition(g.clone(), 2, 2);
    let g1 = LocationPolicyGraph::g1_geo_indistinguishability(g.clone());
    let policy_at = |t: Timestamp| -> &LocationPolicyGraph {
        let day = t / 24;
        if day % 7 >= 5 {
            &g1
        } else {
            &gb
        }
    };

    let budget_total = horizon as f64 * 0.5; // 0.5 eps/epoch on average
    let g1_diam = 15.0; // 16x16 grid-8 diameter
    let allocators: Vec<(&str, Box<dyn BudgetAllocator>)> = vec![
        ("fixed", Box::new(FixedPerEpoch { eps: 0.5 })),
        ("even-split", Box::new(EvenSplit)),
        (
            "geometric-decay",
            Box::new(GeometricDecay { fraction: 0.02 }),
        ),
        (
            "diameter-proportional",
            Box::new(DiameterProportional {
                base: 1.6,
                reference_diameter: g1_diam,
            }),
        ),
    ];

    println!(
        "E8 (extension): budget allocation over {} epochs, lifetime budget {} eps,\n\
         schedule: weekdays Gb (diameter 1), weekends G1 (diameter {g1_diam})\n",
        horizon, budget_total
    );

    let mut table = Table::new(
        "e8_budget_allocation",
        &[
            "allocator",
            "released",
            "skipped",
            "spent_eps",
            "mean_err_m",
            "weekend_err_m",
        ],
    );
    let mut summary = Vec::new();
    for (label, alloc) in &allocators {
        let mut total_err = 0.0;
        let mut weekend_err = 0.0;
        let mut n_rel = 0usize;
        let mut n_weekend = 0usize;
        let mut n_skip = 0usize;
        let mut spent = 0.0;
        for tr in truth.trajectories() {
            let mut ledger = BudgetLedger::new(budget_total);
            let mut rng = StdRng::seed_from_u64(9000 + tr.user.0 as u64);
            for t in 0..horizon {
                let policy = policy_at(t);
                let eps = alloc.allocate(t as u64, ledger.remaining(), horizon - t, policy);
                let truth_cell = tr.at(t).unwrap();
                if eps <= 0.0 || !ledger.can_afford(eps) {
                    n_skip += 1;
                    continue;
                }
                if !policy.is_isolated_cell(truth_cell) {
                    ledger.charge(t as u64, policy.name(), eps).unwrap();
                }
                // Plain per-call release: most allocators here emit a
                // different eps every epoch (a function of the remaining
                // budget), which defeats (eps, cell) distribution caching —
                // each batch call would build a table used exactly once.
                // perturb is already BFS-free via the policy's precomputed
                // distance tables, which is the win that matters for this
                // workload.
                let z = GraphExponential
                    .perturb(policy, eps, truth_cell, &mut rng)
                    .unwrap();
                let err = g.distance(truth_cell, z);
                total_err += err;
                n_rel += 1;
                if (t / 24) % 7 >= 5 {
                    weekend_err += err;
                    n_weekend += 1;
                }
            }
            spent += ledger.spent();
        }
        let users = truth.n_users() as f64;
        let mean_err = total_err / n_rel.max(1) as f64;
        let wk_err = weekend_err / n_weekend.max(1) as f64;
        table.row(&[
            label,
            &(n_rel / truth.n_users()),
            &(n_skip / truth.n_users()),
            &f3(spent / users),
            &f1(mean_err),
            &f1(wk_err),
        ]);
        summary.push((label.to_string(), mean_err, wk_err, n_rel));
    }
    table.finish();

    let err_of = |name: &str| summary.iter().find(|s| s.0 == name).unwrap().1;
    assert!(
        err_of("diameter-proportional") < err_of("fixed"),
        "policy-aware allocation must beat fixed: {} !< {}",
        err_of("diameter-proportional"),
        err_of("fixed")
    );
    assert!(
        err_of("diameter-proportional") < err_of("even-split"),
        "policy-aware allocation must beat even-split"
    );
    println!(
        "Shape check: with a heterogeneous policy schedule, sizing eps to the\n\
         policy's component diameter gives lower mean error at the same total\n\
         budget than fixed or even allocation — the policy-aware dimension of\n\
         the trade-off."
    );
}
