//! # panda-bench
//!
//! Experiment harness for the PANDA reproduction. One binary per paper
//! artefact (see DESIGN.md §5 and EXPERIMENTS.md):
//!
//! | bin | paper artefact |
//! |-----|----------------|
//! | `exp_policy_equivalence` | Fig. 2 + Theorems 2.1/2.2 |
//! | `exp_monitoring_utility` | §3.2(1) + Fig. 5 utility panel |
//! | `exp_r0_estimation` | §3.2(1) transmission-model accuracy |
//! | `exp_contact_tracing` | §3.2(2) dynamic-policy tracing |
//! | `exp_privacy_utility` | §3.2(3) adversary error |
//! | `exp_random_policy_sweep` | Fig. 5 Size/Density knobs |
//! | `run_all` | everything, plus the Fig. 1/3 smoke pipeline |
//!
//! Experiments print aligned tables to stdout and write CSVs under
//! `results/`. Set `PANDA_FULL=1` for the full parameter grids (defaults
//! are sized to finish in seconds-to-minutes per binary in release mode).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::path::PathBuf;

pub mod workload;

/// `true` when the full (slow) parameter grid was requested.
pub fn full_mode() -> bool {
    std::env::var("PANDA_FULL").is_ok_and(|v| v == "1")
}

/// A results table that renders to stdout and persists as CSV under
/// `results/<name>.csv`.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given CSV stem and column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Prints an aligned view to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Writes `results/<name>.csv` (creating the directory), returning the
    /// path.
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Print and save, logging the CSV path.
    pub fn finish(&self) {
        self.print();
        match self.save_csv() {
            Ok(path) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("[csv not saved: {e}]"),
        }
        println!();
    }
}

/// Runs `f` over `items` on up to `available_parallelism` crossbeam-scoped
/// threads, preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let chunk = items.len().div_ceil(n_threads.max(1));
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    crossbeam::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk.iter()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("sweep thread panicked");
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Formats a float with 3 decimal places (table helper).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal place (table helper).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("unit_test_table", &["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row(&[&2, &"y"]);
        let path = t.save_csv().unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "a,b\n1,x\n2,y\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map(items.clone(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }
}
