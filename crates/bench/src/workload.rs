//! Standard workloads shared by the experiment binaries: the synthetic
//! stand-ins for the paper's GeoLife and Gowalla datasets, and the policy
//! menu of Fig. 4.

use panda_core::{LocationPolicyGraph, Mechanism, ParallelReleaser, PolicyIndex};
use panda_geo::{CellId, GridMap};
use panda_mobility::geolife_like::{beijing_grid, generate_geolife_like, GeoLifeLikeConfig};
use panda_mobility::gowalla_like::{densify, generate_gowalla_like, GowallaLikeConfig};
use panda_mobility::Trajectory;
use panda_mobility::TrajectoryDb;
use rand::rngs::StdRng;
use rand::RngCore;
use rand::SeedableRng;

/// The standard experiment grid: `n × n` cells of 500 m, Beijing-anchored.
pub fn grid(n: u32) -> GridMap {
    beijing_grid(n, 500.0)
}

/// The GeoLife stand-in: dense hourly commuter trajectories.
pub fn geolife(seed: u64, grid: &GridMap, n_users: u32, days: u32) -> TrajectoryDb {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_geolife_like(
        &mut rng,
        grid,
        &GeoLifeLikeConfig {
            n_users,
            days,
            ..Default::default()
        },
    )
}

/// The Gowalla stand-in: sparse check-ins densified by hold-last-position.
pub fn gowalla(seed: u64, grid: &GridMap, n_users: u32, horizon: u32) -> TrajectoryDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let checkins = generate_gowalla_like(
        &mut rng,
        grid,
        &GowallaLikeConfig {
            n_users,
            horizon,
            ..Default::default()
        },
    );
    densify(grid, &checkins, horizon)
}

/// A city-scale single-component policy: a `w × h` 8-neighbour street
/// grid with `delete_p` of its non-bridging edges removed and `shortcuts`
/// long-range connections added (metro lines / highways), wrapped as a
/// policy graph with explicit distance-index budgets. With the default
/// budgets ([`LocationPolicyGraph::from_graph`]'s), anything above the
/// 4 096-node dense-tabulation threshold lands on the hub-label oracle.
pub fn city_policy(
    seed: u64,
    w: u32,
    h: u32,
    max_table_entries: usize,
    oracle_entries_per_node: usize,
) -> LocationPolicyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let shortcuts = (w * h) / 200; // ~1 shortcut per 200 cells
    let g = panda_graph::generators::city_like(&mut rng, w, h, 0.3, shortcuts);
    LocationPolicyGraph::from_graph_with_budgets(
        GridMap::new(w, h, 500.0),
        g,
        format!("city-{w}x{h}"),
        max_table_entries,
        oracle_entries_per_node,
    )
}

/// The Fig. 4 policy menu over a grid: `(label, policy)` pairs.
///
/// * `Ga` — coarse 4×4-cell areas (location monitoring),
/// * `Gb` — fine 2×2-cell areas (epidemic analysis),
/// * `G1` — 8-neighbour geo-indistinguishability graph,
/// * `Gc` — `Gb` with the given infected cells isolated (contact tracing).
pub fn policy_menu(
    grid: &GridMap,
    infected: &[panda_geo::CellId],
) -> Vec<(&'static str, LocationPolicyGraph)> {
    let gb = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let gc = gb.with_isolated(infected);
    vec![
        ("Ga", LocationPolicyGraph::partition(grid.clone(), 4, 4)),
        ("Gb", gb),
        (
            "G1",
            LocationPolicyGraph::g1_geo_indistinguishability(grid.clone()),
        ),
        ("Gc", gc),
    ]
}

/// The Fig. 4 policy menu with each policy pre-indexed for bulk release:
/// `(label, PolicyIndex)` pairs. Experiment binaries releasing whole
/// trajectory databases should prefer this over [`policy_menu`] — the index
/// caches each `(mechanism, ε, cell)` output distribution across every
/// user and epoch of the sweep.
pub fn indexed_policy_menu(
    grid: &GridMap,
    infected: &[panda_geo::CellId],
) -> Vec<(&'static str, PolicyIndex)> {
    policy_menu(grid, infected)
        .into_iter()
        .map(|(label, policy)| (label, PolicyIndex::new(policy)))
        .collect()
}

/// Releases every trajectory of `truth` through the single-threaded
/// indexed bulk path: one [`Mechanism::perturb_batch`] call per user. Kept
/// as the PR-1 baseline (and for callers that need one continuous RNG
/// stream); the experiment binaries release through
/// [`release_db_parallel`].
pub fn release_db(
    truth: &TrajectoryDb,
    index: &PolicyIndex,
    mech: &dyn Mechanism,
    eps: f64,
    rng: &mut dyn RngCore,
) -> TrajectoryDb {
    truth.map_trajectories(|_, cells: &[CellId]| {
        mech.perturb_batch(index, eps, cells, rng)
            .expect("perturbation failed")
    })
}

/// Releases every trajectory of `truth` through the parallel release
/// engine: the whole population is flattened into one report batch,
/// perturbed by `releaser` across threads against the shared index, and
/// split back per user. Deterministic in `seed` regardless of thread
/// count. The standard way the experiment binaries produce the perturbed
/// database the server sees.
pub fn release_db_parallel(
    truth: &TrajectoryDb,
    index: &PolicyIndex,
    mech: &(dyn Mechanism + Sync),
    eps: f64,
    seed: u64,
    releaser: &ParallelReleaser,
) -> TrajectoryDb {
    let flat: Vec<CellId> = truth
        .trajectories()
        .iter()
        .flat_map(|tr| tr.cells.iter().copied())
        .collect();
    let released = releaser
        .release(mech, index, eps, &flat, seed)
        .expect("perturbation failed");
    let mut cursor = 0usize;
    let trajectories: Vec<Trajectory> = truth
        .trajectories()
        .iter()
        .map(|tr| {
            let cells = released[cursor..cursor + tr.cells.len()].to_vec();
            cursor += tr.cells.len();
            Trajectory {
                user: tr.user,
                cells,
            }
        })
        .collect();
    TrajectoryDb::new(truth.grid().clone(), trajectories)
}

/// The ε sweep used across experiments (log-spaced, the demo's slider
/// range).
pub fn eps_sweep(full: bool) -> Vec<f64> {
    if full {
        vec![0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0]
    } else {
        vec![0.1, 0.5, 1.0, 2.0, 8.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::GraphExponential;

    #[test]
    fn parallel_release_db_is_thread_count_invariant() {
        let g = grid(8);
        let truth = geolife(5, &g, 12, 2);
        let index = PolicyIndex::new(LocationPolicyGraph::partition(g.clone(), 2, 2));
        let a = release_db_parallel(
            &truth,
            &index,
            &GraphExponential,
            1.0,
            77,
            &ParallelReleaser::with_threads(1),
        );
        let b = release_db_parallel(
            &truth,
            &index,
            &GraphExponential,
            1.0,
            77,
            &ParallelReleaser::with_threads(8),
        );
        assert_eq!(a.trajectories(), b.trajectories());
        // Structure preserved: same users, same horizon, cells perturbed
        // within components.
        assert_eq!(a.n_users(), truth.n_users());
        for (ta, tt) in a.trajectories().iter().zip(truth.trajectories()) {
            assert_eq!(ta.user, tt.user);
            assert_eq!(ta.cells.len(), tt.cells.len());
            for (&z, &s) in ta.cells.iter().zip(&tt.cells) {
                assert!(index.policy().same_component(s, z));
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let g = grid(8);
        let a = geolife(1, &g, 10, 2);
        let b = geolife(1, &g, 10, 2);
        assert_eq!(a.trajectories(), b.trajectories());
        let c = gowalla(2, &g, 10, 48);
        let d = gowalla(2, &g, 10, 48);
        assert_eq!(c.trajectories(), d.trajectories());
    }

    #[test]
    fn policy_menu_has_expected_structure() {
        let g = grid(8);
        let infected = vec![g.cell(1, 1)];
        let menu = policy_menu(&g, &infected);
        assert_eq!(menu.len(), 4);
        let gc = &menu[3].1;
        assert!(gc.is_isolated_cell(g.cell(1, 1)));
        let g1 = &menu[2].1;
        assert_eq!(g1.n_components(), 1);
    }

    #[test]
    fn eps_sweeps_are_sorted() {
        for full in [false, true] {
            let sweep = eps_sweep(full);
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
