//! Agent-based SEIR over trajectories: transmission through co-location.
//!
//! This couples the epidemic to location data. Each epoch, every
//! susceptible user sharing a cell with `k` infectious users becomes exposed
//! with probability `1 − (1 − p_transmit)^k`; exposed users become
//! infectious after a geometric latent period (rate σ) and recover after a
//! geometric infectious period (rate γ). Diagnoses (with a reporting delay)
//! feed the contact-tracing application; infected *visits* — `(epoch, cell)`
//! pairs of infectious users — define the infected locations that the `Gc`
//! policy isolates.

use panda_geo::CellId;
use panda_mobility::{Timestamp, TrajectoryDb, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Infection status of one agent at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentState {
    /// Susceptible.
    S,
    /// Exposed (infected, not yet infectious).
    E,
    /// Infectious.
    I,
    /// Recovered.
    R,
}

/// Parameters of the agent-based outbreak.
#[derive(Debug, Clone, Copy)]
pub struct OutbreakConfig {
    /// Per-co-location-per-epoch transmission probability.
    pub p_transmit: f64,
    /// Probability an exposed agent turns infectious each epoch (≈ σ).
    pub p_onset: f64,
    /// Probability an infectious agent recovers each epoch (≈ γ).
    pub p_recover: f64,
    /// Number of initially-infectious agents (chosen uniformly).
    pub n_seeds: usize,
    /// Epochs between onset of infectiousness and diagnosis (reporting
    /// delay for contact tracing).
    pub diagnosis_delay: Timestamp,
}

impl Default for OutbreakConfig {
    fn default() -> Self {
        OutbreakConfig {
            p_transmit: 0.35,
            p_onset: 0.5,    // ≈ 2-epoch latent period
            p_recover: 0.25, // ≈ 4-epoch infectious period
            n_seeds: 3,
            diagnosis_delay: 24,
        }
    }
}

/// One infection event: who, when, where, and (if traceable) by whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfectionEvent {
    /// The newly-exposed user.
    pub victim: UserId,
    /// Epoch of exposure.
    pub time: Timestamp,
    /// Cell where the exposure happened.
    pub cell: CellId,
    /// An infectious co-located user (one of possibly several).
    pub source: UserId,
}

/// Full record of a simulated outbreak.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutbreakResult {
    /// Per-user state timeline: `states[user][epoch]`.
    pub states: HashMap<UserId, Vec<AgentState>>,
    /// New exposures per epoch (the incidence curve analyses fit).
    pub incidence: Vec<u32>,
    /// All infection events in time order.
    pub events: Vec<InfectionEvent>,
    /// `(epoch, cell)` visits by infectious users — the infected locations
    /// for `Gc` policies.
    pub infected_visits: Vec<(Timestamp, CellId)>,
    /// `(user, diagnosis_epoch)` pairs, ordered by epoch.
    pub diagnoses: Vec<(UserId, Timestamp)>,
    /// The initially-infectious users.
    pub seeds: Vec<UserId>,
}

impl OutbreakResult {
    /// Total number of users ever infected (including seeds).
    pub fn total_infected(&self) -> usize {
        self.states
            .values()
            .filter(|timeline| timeline.iter().any(|&s| s != AgentState::S))
            .count()
    }

    /// Attack rate: fraction of the population ever infected.
    pub fn attack_rate(&self) -> f64 {
        self.total_infected() as f64 / self.states.len() as f64
    }

    /// State of `user` at `epoch`.
    pub fn state_of(&self, user: UserId, epoch: Timestamp) -> Option<AgentState> {
        self.states.get(&user)?.get(epoch as usize).copied()
    }

    /// Mean number of *traced* secondary infections per seed — a direct
    /// empirical R0 estimate available only with full ground truth.
    pub fn empirical_r0_of_seeds(&self) -> f64 {
        if self.seeds.is_empty() {
            return 0.0;
        }
        let secondary = self
            .events
            .iter()
            .filter(|e| self.seeds.contains(&e.source))
            .count();
        secondary as f64 / self.seeds.len() as f64
    }

    /// The distinct infected cells up to (and including) `epoch`.
    pub fn infected_cells_until(&self, epoch: Timestamp) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self
            .infected_visits
            .iter()
            .filter(|&&(t, _)| t <= epoch)
            .map(|&(_, c)| c)
            .collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

/// Runs the agent-based outbreak over `db`.
///
/// # Panics
///
/// Panics when probabilities are outside `[0, 1]` or there are fewer users
/// than seeds.
pub fn simulate_outbreak<R: Rng + ?Sized>(
    rng: &mut R,
    db: &TrajectoryDb,
    config: &OutbreakConfig,
) -> OutbreakResult {
    for p in [config.p_transmit, config.p_onset, config.p_recover] {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
    }
    let users: Vec<UserId> = db.trajectories().iter().map(|t| t.user).collect();
    assert!(
        users.len() >= config.n_seeds,
        "population smaller than seed count"
    );
    let horizon = db.horizon();

    // Choose seeds without replacement.
    let mut pool = users.clone();
    let mut seeds = Vec::with_capacity(config.n_seeds);
    for _ in 0..config.n_seeds {
        let k = rng.gen_range(0..pool.len());
        seeds.push(pool.swap_remove(k));
    }

    let mut current: HashMap<UserId, AgentState> = users
        .iter()
        .map(|&u| {
            (
                u,
                if seeds.contains(&u) {
                    AgentState::I
                } else {
                    AgentState::S
                },
            )
        })
        .collect();
    let mut states: HashMap<UserId, Vec<AgentState>> = users
        .iter()
        .map(|&u| (u, Vec::with_capacity(horizon as usize)))
        .collect();
    let mut incidence = vec![0u32; horizon as usize];
    let mut events = Vec::new();
    let mut infected_visits = Vec::new();
    let mut diagnoses = Vec::new();
    let mut onset_epoch: BTreeMap<UserId, Timestamp> = seeds.iter().map(|&u| (u, 0)).collect();

    for t in 0..horizon {
        // Record current states.
        for &u in &users {
            states.get_mut(&u).unwrap().push(current[&u]);
        }
        // Group users by cell for this epoch.
        let mut by_cell: BTreeMap<CellId, Vec<UserId>> = BTreeMap::new();
        for tr in db.trajectories() {
            if let Some(c) = tr.at(t) {
                by_cell.entry(c).or_default().push(tr.user);
                if current[&tr.user] == AgentState::I {
                    infected_visits.push((t, c));
                }
            }
        }
        // Transmission.
        let mut newly_exposed = Vec::new();
        for (&cell, occupants) in &by_cell {
            let infectious: Vec<UserId> = occupants
                .iter()
                .copied()
                .filter(|u| current[u] == AgentState::I)
                .collect();
            if infectious.is_empty() {
                continue;
            }
            let p_escape = (1.0 - config.p_transmit).powi(infectious.len() as i32);
            for &u in occupants {
                if current[&u] == AgentState::S && rng.gen_bool(1.0 - p_escape) {
                    let source = infectious[rng.gen_range(0..infectious.len())];
                    newly_exposed.push((u, cell, source));
                }
            }
        }
        for (u, cell, source) in newly_exposed {
            current.insert(u, AgentState::E);
            incidence[t as usize] += 1;
            events.push(InfectionEvent {
                victim: u,
                time: t,
                cell,
                source,
            });
        }
        // Progression E→I and I→R.
        for &u in &users {
            match current[&u] {
                AgentState::E if rng.gen_bool(config.p_onset) => {
                    current.insert(u, AgentState::I);
                    onset_epoch.insert(u, t + 1);
                }
                AgentState::I if rng.gen_bool(config.p_recover) => {
                    current.insert(u, AgentState::R);
                }
                _ => {}
            }
        }
        // Diagnoses with reporting delay.
        for (&u, &onset) in &onset_epoch {
            if t == onset.saturating_add(config.diagnosis_delay) {
                diagnoses.push((u, t));
            }
        }
    }
    diagnoses.sort_by_key(|&(_, t)| t);

    OutbreakResult {
        states,
        incidence,
        events,
        infected_visits,
        diagnoses,
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use panda_mobility::markov::{generate_markov, MarkovConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn db(seed: u64) -> TrajectoryDb {
        let grid = GridMap::new(6, 6, 100.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_markov(
            &mut rng,
            &grid,
            &MarkovConfig {
                n_users: 80,
                horizon: 120,
                p_stay: 0.6,
            },
        )
    }

    fn config() -> OutbreakConfig {
        OutbreakConfig {
            diagnosis_delay: 10,
            ..Default::default()
        }
    }

    #[test]
    fn outbreak_spreads_beyond_seeds() {
        let db = db(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let result = simulate_outbreak(&mut rng, &db, &config());
        assert!(result.total_infected() > config().n_seeds);
        assert!(result.attack_rate() > 0.1, "rate {}", result.attack_rate());
        assert_eq!(result.seeds.len(), 3);
    }

    #[test]
    fn state_timelines_are_monotone_seir() {
        let db = db(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let result = simulate_outbreak(&mut rng, &db, &config());
        let rank = |s: AgentState| match s {
            AgentState::S => 0,
            AgentState::E => 1,
            AgentState::I => 2,
            AgentState::R => 3,
        };
        for timeline in result.states.values() {
            assert_eq!(timeline.len(), db.horizon() as usize);
            for w in timeline.windows(2) {
                assert!(rank(w[1]) >= rank(w[0]), "SEIR must not regress");
            }
        }
    }

    #[test]
    fn incidence_matches_events() {
        let db = db(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let result = simulate_outbreak(&mut rng, &db, &config());
        let total_incidence: u32 = result.incidence.iter().sum();
        assert_eq!(total_incidence as usize, result.events.len());
        for e in &result.events {
            // The victim was S before exposure, E at exposure+1 (or later I).
            let before = result.state_of(e.victim, e.time).unwrap();
            assert_eq!(before, AgentState::S);
        }
    }

    #[test]
    fn events_record_true_colocation() {
        let db = db(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let result = simulate_outbreak(&mut rng, &db, &config());
        for e in result.events.iter().take(50) {
            assert_eq!(db.cell_of(e.victim, e.time), Some(e.cell));
            assert_eq!(db.cell_of(e.source, e.time), Some(e.cell));
            assert_eq!(result.state_of(e.source, e.time), Some(AgentState::I));
        }
    }

    #[test]
    fn diagnoses_lag_onset_by_delay() {
        let db = db(9);
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = config();
        let result = simulate_outbreak(&mut rng, &db, &cfg);
        assert!(!result.diagnoses.is_empty());
        for &(u, t_diag) in &result.diagnoses {
            // At diagnosis the user has been infectious (or recovered).
            let s = result.state_of(u, t_diag).unwrap();
            assert!(matches!(s, AgentState::I | AgentState::R));
            // And was infectious exactly delay epochs earlier (onset).
            let onset = t_diag - cfg.diagnosis_delay;
            assert_eq!(result.state_of(u, onset), Some(AgentState::I));
        }
    }

    #[test]
    fn infected_visits_grow_over_time() {
        let db = db(11);
        let mut rng = SmallRng::seed_from_u64(12);
        let result = simulate_outbreak(&mut rng, &db, &config());
        let early = result.infected_cells_until(10).len();
        let late = result.infected_cells_until(119).len();
        assert!(late >= early);
        assert!(late > 0);
    }

    #[test]
    fn zero_transmission_stays_at_seeds() {
        let db = db(13);
        let mut rng = SmallRng::seed_from_u64(14);
        let cfg = OutbreakConfig {
            p_transmit: 0.0,
            ..config()
        };
        let result = simulate_outbreak(&mut rng, &db, &cfg);
        assert_eq!(result.total_infected(), cfg.n_seeds);
        assert!(result.events.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let db = db(15);
        let a = simulate_outbreak(&mut SmallRng::seed_from_u64(16), &db, &config());
        let b = simulate_outbreak(&mut SmallRng::seed_from_u64(16), &db, &config());
        assert_eq!(a.events, b.events);
        assert_eq!(a.incidence, b.incidence);
        assert_eq!(a.seeds, b.seeds);
    }
}
