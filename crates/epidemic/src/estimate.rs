//! R0 estimation from incidence curves.
//!
//! The epidemic-analysis app (§3.1) estimates the basic reproduction number
//! from server-side location data; the paper's utility metric is the gap
//! between `R0` estimated over exact locations and over perturbed locations
//! (§3.2). We use the classical exponential-growth method: fit the growth
//! rate `r` of the early incidence curve by log-linear regression, then for
//! an SEIR process
//!
//! ```text
//! R0 = (1 + r/σ) · (1 + r/γ)
//! ```
//!
//! (Wallinga–Lipsitch with an Erlang(2) generation interval split into
//! latent 1/σ and infectious 1/γ stages.)

use serde::{Deserialize, Serialize};

/// Result of a growth-rate fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthFit {
    /// Per-epoch exponential growth rate `r`.
    pub rate: f64,
    /// Number of points used in the regression.
    pub n_points: usize,
    /// Coefficient of determination of the log-linear fit.
    pub r_squared: f64,
}

/// Fits `ln(incidence) = a + r·t` over the early growth window by ordinary
/// least squares, using only strictly positive counts within
/// `[start, end)`.
///
/// Returns `None` when fewer than 3 usable points exist (no meaningful
/// regression).
pub fn estimate_growth_rate(incidence: &[u32], start: usize, end: usize) -> Option<GrowthFit> {
    let end = end.min(incidence.len());
    let pts: Vec<(f64, f64)> = (start..end)
        .filter(|&t| incidence[t] > 0)
        .map(|t| (t as f64, (incidence[t] as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let rate = (n * sxy - sx * sy) / denom;
    let intercept = (sy - rate * sx) / n;
    // R².
    let mean_y = sy / n;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (intercept + rate * p.0)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(GrowthFit {
        rate,
        n_points: pts.len(),
        r_squared,
    })
}

/// Converts a growth rate into an SEIR `R0` with incubation rate `sigma`
/// and recovery rate `gamma`:
/// `R0 = (1 + r/σ)(1 + r/γ)`.
pub fn r0_from_growth_rate(rate: f64, sigma: f64, gamma: f64) -> f64 {
    (1.0 + rate / sigma) * (1.0 + rate / gamma)
}

/// End-to-end estimate: growth fit over `[start, end)` then the SEIR
/// formula. Returns `None` when the fit is impossible.
pub fn estimate_r0_seir(
    incidence: &[u32],
    start: usize,
    end: usize,
    sigma: f64,
    gamma: f64,
) -> Option<f64> {
    estimate_growth_rate(incidence, start, end)
        .map(|fit| r0_from_growth_rate(fit.rate, sigma, gamma))
}

/// Picks a sensible early-growth window automatically: from the first
/// epoch with non-zero incidence to the incidence peak **inclusive**,
/// clipped to the series.
///
/// The returned `end` is consumed *exclusively* by
/// [`estimate_growth_rate`]'s `[start, end)` range, so it is `peak + 1`:
/// the peak epoch itself enters the regression. (Returning `peak` here
/// silently dropped the peak point from the R0 fit.)
pub fn growth_window(incidence: &[u32]) -> (usize, usize) {
    let first = incidence.iter().position(|&c| c > 0).unwrap_or(0);
    let peak = incidence
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(incidence.len());
    (first, (peak + 1).max(first + 3).min(incidence.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seir::{simulate, SeirParams, SeirState};

    #[test]
    fn recovers_synthetic_exponential() {
        // incidence = 2·e^{0.3 t}
        let incidence: Vec<u32> = (0..20)
            .map(|t| (2.0 * (0.3 * t as f64).exp()).round() as u32)
            .collect();
        let fit = estimate_growth_rate(&incidence, 0, 20).unwrap();
        assert!((fit.rate - 0.3).abs() < 0.02, "rate {}", fit.rate);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn rejects_insufficient_data() {
        assert!(estimate_growth_rate(&[0, 0, 0, 0], 0, 4).is_none());
        assert!(estimate_growth_rate(&[5, 3], 0, 2).is_none());
        assert!(estimate_growth_rate(&[], 0, 10).is_none());
    }

    #[test]
    fn r0_formula_identity() {
        // r = 0 ⇒ R0 = 1 regardless of rates.
        assert!((r0_from_growth_rate(0.0, 0.5, 0.25) - 1.0).abs() < 1e-12);
        // Negative growth ⇒ R0 < 1.
        assert!(r0_from_growth_rate(-0.05, 0.5, 0.25) < 1.0);
        assert!(r0_from_growth_rate(0.2, 0.5, 0.25) > 1.0);
    }

    #[test]
    fn recovers_r0_from_seir_incidence() {
        // Simulate the deterministic SEIR, extract per-epoch new exposures
        // (β·S·I/N), and re-estimate R0.
        let params = SeirParams::from_r0(2.5, 2.0, 4.0);
        let n = 1_000_000.0;
        let traj = simulate(SeirState::seeded(n, 20.0), params, 1.0, 200);
        let incidence: Vec<u32> = traj
            .windows(2)
            .map(|w| {
                // New exposures in one epoch = drop in S.
                (w[0].s - w[1].s).max(0.0).round() as u32
            })
            .collect();
        let (start, end) = growth_window(&incidence);
        let r0 = estimate_r0_seir(&incidence, start, end, params.sigma, params.gamma).unwrap();
        assert!(
            (r0 - 2.5).abs() < 0.5,
            "estimated R0 {r0} should be near 2.5"
        );
    }

    #[test]
    fn growth_window_brackets_rise() {
        let incidence = [0, 0, 1, 3, 9, 20, 45, 80, 60, 30, 10];
        let (start, end) = growth_window(&incidence);
        assert_eq!(start, 2);
        // The peak sits at index 7 and the end is exclusive downstream, so
        // the window must extend one past it.
        assert_eq!(end, 8);
    }

    /// Regression: the peak epoch itself must enter the log-linear fit
    /// (`end` is consumed exclusively, so `end = peak` dropped it).
    #[test]
    fn growth_window_includes_peak_in_regression() {
        let incidence = [1, 2, 4, 8, 16, 7, 3];
        let (start, end) = growth_window(&incidence);
        assert_eq!((start, end), (0, 5), "window must cover the peak at 4");
        let fit = estimate_growth_rate(&incidence, start, end).unwrap();
        assert_eq!(fit.n_points, 5, "peak point must be in the fit");
        // Pure doubling through the peak: the fit sees exactly ln 2.
        assert!((fit.rate - 2.0_f64.ln()).abs() < 1e-9, "rate {}", fit.rate);
        // Dropping the peak from a 4-point prefix would still fit ln 2;
        // prove the peak is load-bearing with a kinked series instead.
        let kinked = [1, 2, 4, 8, 64, 7];
        let (s, e) = growth_window(&kinked);
        assert_eq!((s, e), (0, 5));
        let with_peak = estimate_growth_rate(&kinked, s, e).unwrap();
        let without_peak = estimate_growth_rate(&kinked, s, e - 1).unwrap();
        assert!(
            with_peak.rate > without_peak.rate + 0.1,
            "peak must steepen the fit: {} vs {}",
            with_peak.rate,
            without_peak.rate
        );
    }

    #[test]
    fn growth_window_degenerate_series() {
        let flat = [0u32; 8];
        let (start, end) = growth_window(&flat);
        assert!(start <= end && end <= 8);
    }
}
