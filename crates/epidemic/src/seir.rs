//! The deterministic SEIR compartment model.
//!
//! `S → E → I → R` with force of infection `β·S·I/N`, incubation rate `σ`
//! and recovery rate `γ`; the basic reproduction number is `R0 = β/γ`
//! (paper reference 11). Integrated with fixed-step RK4 — accurate enough
//! that the conservation and equilibrium tests hold to 1e-9.

use serde::{Deserialize, Serialize};

/// SEIR rate parameters (per epoch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeirParams {
    /// Transmission rate β.
    pub beta: f64,
    /// Incubation rate σ (1/mean latent period).
    pub sigma: f64,
    /// Recovery rate γ (1/mean infectious period).
    pub gamma: f64,
}

impl SeirParams {
    /// The basic reproduction number `R0 = β/γ`.
    pub fn r0(&self) -> f64 {
        self.beta / self.gamma
    }

    /// Parameters hitting a target `R0` with the given mean latent and
    /// infectious periods (in epochs).
    pub fn from_r0(r0: f64, latent_epochs: f64, infectious_epochs: f64) -> Self {
        assert!(r0 > 0.0 && latent_epochs > 0.0 && infectious_epochs > 0.0);
        let gamma = 1.0 / infectious_epochs;
        SeirParams {
            beta: r0 * gamma,
            sigma: 1.0 / latent_epochs,
            gamma,
        }
    }
}

/// Compartment populations (continuous; fractions or counts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeirState {
    /// Susceptible.
    pub s: f64,
    /// Exposed (infected, not yet infectious).
    pub e: f64,
    /// Infectious.
    pub i: f64,
    /// Recovered / removed.
    pub r: f64,
}

impl SeirState {
    /// Total population.
    pub fn total(&self) -> f64 {
        self.s + self.e + self.i + self.r
    }

    /// A fresh epidemic: `i0` infectious seeded into a population of `n`.
    pub fn seeded(n: f64, i0: f64) -> Self {
        assert!(n > 0.0 && i0 >= 0.0 && i0 <= n);
        SeirState {
            s: n - i0,
            e: 0.0,
            i: i0,
            r: 0.0,
        }
    }

    fn derivative(&self, p: &SeirParams) -> SeirState {
        let n = self.total();
        let infection = p.beta * self.s * self.i / n;
        SeirState {
            s: -infection,
            e: infection - p.sigma * self.e,
            i: p.sigma * self.e - p.gamma * self.i,
            r: p.gamma * self.i,
        }
    }

    fn axpy(&self, k: &SeirState, h: f64) -> SeirState {
        SeirState {
            s: self.s + h * k.s,
            e: self.e + h * k.e,
            i: self.i + h * k.i,
            r: self.r + h * k.r,
        }
    }
}

/// One RK4 step of size `dt`.
pub fn step_rk4(state: &SeirState, params: &SeirParams, dt: f64) -> SeirState {
    let k1 = state.derivative(params);
    let k2 = state.axpy(&k1, dt / 2.0).derivative(params);
    let k3 = state.axpy(&k2, dt / 2.0).derivative(params);
    let k4 = state.axpy(&k3, dt).derivative(params);
    SeirState {
        s: state.s + dt / 6.0 * (k1.s + 2.0 * k2.s + 2.0 * k3.s + k4.s),
        e: state.e + dt / 6.0 * (k1.e + 2.0 * k2.e + 2.0 * k3.e + k4.e),
        i: state.i + dt / 6.0 * (k1.i + 2.0 * k2.i + 2.0 * k3.i + k4.i),
        r: state.r + dt / 6.0 * (k1.r + 2.0 * k2.r + 2.0 * k3.r + k4.r),
    }
}

/// Integrates the model for `steps` steps of size `dt`, returning the
/// trajectory including the initial state (`steps + 1` entries).
pub fn simulate(state0: SeirState, params: SeirParams, dt: f64, steps: usize) -> Vec<SeirState> {
    let mut out = Vec::with_capacity(steps + 1);
    out.push(state0);
    let mut s = state0;
    for _ in 0..steps {
        s = step_rk4(&s, &params, dt);
        out.push(s);
    }
    out
}

/// Final epidemic size: the fraction ultimately infected, found by running
/// the model to (numerical) extinction.
pub fn final_size(params: SeirParams, n: f64, i0: f64) -> f64 {
    let mut s = SeirState::seeded(n, i0);
    for _ in 0..200_000 {
        s = step_rk4(&s, &params, 0.1);
        if s.e + s.i < 1e-9 {
            break;
        }
    }
    s.r / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SeirParams {
        // R0 = 2.5, 2-day latency, 4-day infectious period (per-day rates).
        SeirParams::from_r0(2.5, 2.0, 4.0)
    }

    #[test]
    fn r0_roundtrip() {
        let p = params();
        assert!((p.r0() - 2.5).abs() < 1e-12);
        assert!((p.sigma - 0.5).abs() < 1e-12);
        assert!((p.gamma - 0.25).abs() < 1e-12);
    }

    #[test]
    fn population_is_conserved() {
        let mut s = SeirState::seeded(10_000.0, 10.0);
        let p = params();
        for _ in 0..1000 {
            s = step_rk4(&s, &p, 0.1);
            assert!((s.total() - 10_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn compartments_stay_nonnegative() {
        let traj = simulate(SeirState::seeded(1000.0, 1.0), params(), 0.05, 4000);
        for s in traj {
            assert!(s.s >= -1e-9 && s.e >= -1e-9 && s.i >= -1e-9 && s.r >= -1e-9);
        }
    }

    #[test]
    fn epidemic_grows_then_wanes_when_r0_above_one() {
        let traj = simulate(SeirState::seeded(10_000.0, 5.0), params(), 0.1, 2000);
        let peak_i = traj.iter().map(|s| s.i).fold(0.0, f64::max);
        assert!(
            peak_i > 5.0 * 10.0,
            "epidemic must take off (peak {peak_i})"
        );
        let last = traj.last().unwrap();
        assert!(last.i < peak_i / 10.0, "epidemic must wane");
    }

    #[test]
    fn no_epidemic_when_r0_below_one() {
        let p = SeirParams::from_r0(0.7, 2.0, 4.0);
        let traj = simulate(SeirState::seeded(10_000.0, 10.0), p, 0.1, 3000);
        let peak_i = traj.iter().map(|s| s.i).fold(0.0, f64::max);
        assert!(peak_i <= 10.0 + 1e-9, "sub-critical outbreak must decay");
        let last = traj.last().unwrap();
        assert!(last.r < 300.0, "final size must stay small, got {}", last.r);
    }

    #[test]
    fn final_size_increases_with_r0() {
        let f15 = final_size(SeirParams::from_r0(1.5, 2.0, 4.0), 1000.0, 1.0);
        let f30 = final_size(SeirParams::from_r0(3.0, 2.0, 4.0), 1000.0, 1.0);
        assert!(f30 > f15, "{f30} !> {f15}");
        // Known final-size equation values: R0=1.5 → ≈ 0.58, R0=3 → ≈ 0.94.
        assert!((f15 - 0.58).abs() < 0.05, "final size {f15}");
        assert!((f30 - 0.94).abs() < 0.03, "final size {f30}");
    }

    #[test]
    fn disease_free_equilibrium_is_stationary() {
        let s0 = SeirState {
            s: 1000.0,
            e: 0.0,
            i: 0.0,
            r: 0.0,
        };
        let s1 = step_rk4(&s0, &params(), 0.1);
        assert_eq!(s0, s1);
    }
}
