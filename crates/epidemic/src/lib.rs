//! # panda-epidemic
//!
//! Epidemic substrate for the PANDA reproduction: the disease models behind
//! the "epidemic analysis" application (§3.1).
//!
//! * [`seir`] — the deterministic SEIR compartment model [Li & Muldowney,
//!   1995] the paper cites, integrated with classical RK4.
//! * [`outbreak`] — a stochastic agent-based SEIR running *on trajectories*:
//!   transmission happens through co-location, which is what couples the
//!   epidemic to location data (and so to location privacy).
//! * [`estimate`] — `R0` estimation from incidence curves via the
//!   exponential-growth method; the paper's utility metric for epidemic
//!   analysis is the gap between `R0` estimated from exact vs. perturbed
//!   locations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod estimate;
pub mod outbreak;
pub mod seir;

pub use estimate::{estimate_growth_rate, estimate_r0_seir};
pub use outbreak::{simulate_outbreak, AgentState, OutbreakConfig, OutbreakResult};
pub use seir::{SeirParams, SeirState};
