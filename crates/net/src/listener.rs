//! The shared TCP listener core behind [`crate::IngestGateway`] and
//! [`crate::router::ShardRouter`].
//!
//! Both tiers speak the same framed protocol with the same discipline —
//! one acceptor thread, one handler thread per connection, incremental
//! decode, tag-level privilege gating, batched replies, never blocking on
//! a downstream queue — and differ only in *what a frame means*. That
//! difference is the [`FrameService`] trait: the listener owns sockets,
//! timeouts, the connection cap and shutdown; the service owns frame
//! semantics and per-connection state.

use crate::gateway::GatewayConfig;
use crate::wire::{encode_frame, Frame, FrameDecoder, NackReason};
use panda_check::ordered::{rank, OrderedMutex};
use panda_obs::{clock, Counter, Histogram, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a frame asks the connection to do next.
pub(crate) enum Disposition {
    /// Keep serving.
    Continue,
    /// Close after flushing replies — a **clean** end (`Frame::Shutdown`).
    Close,
    /// Close after flushing replies — a protocol violation; the
    /// connection counts as dropped.
    Drop,
}

/// Frame semantics plugged into a [`Listener`]: per-connection state,
/// tag-level privilege, and what each decoded frame does.
///
/// `handle` runs on the connection's own thread and must never block on a
/// downstream queue (use `try_*` submission paths); replies pushed into
/// `replies` are written back in one batch per read burst.
pub(crate) trait FrameService: Send + Sync + 'static {
    /// Per-connection state, created at accept and returned at close.
    type Conn: Send + 'static;

    /// Called once per accepted connection.
    fn open(&self) -> Self::Conn;

    /// Which frame tags this listener decodes at all — refused tags fail
    /// at header cost, before the payload is parsed (or has arrived).
    fn permits(&self, tag: u8) -> bool;

    /// Applies one decoded frame; queues any reply bytes onto `replies`.
    fn handle(&self, conn: &mut Self::Conn, frame: Frame, replies: &mut Vec<u8>) -> Disposition;

    /// Called once when the connection ends. `dropped` is true for every
    /// non-clean end: read/write error, idle timeout, undecodable bytes,
    /// or a [`Disposition::Drop`] from `handle`.
    fn closed(&self, conn: Self::Conn, dropped: bool);
}

/// Socket-level lifetime instruments every listener keeps, independent
/// of its service's own accounting. The handles are `panda-obs` metrics
/// so one set of cells backs both the POD `stats()` snapshots and the
/// scrapeable registry.
#[derive(Default)]
pub(crate) struct CoreStats {
    pub connections: Counter,
    pub rejected_connections: Counter,
    pub dropped_connections: Counter,
    pub frames: Counter,
    pub malformed_nacks: Counter,
    /// End-to-end latency of handling one decoded frame (dispatch through
    /// reply encode), in nanoseconds.
    pub frame_ns: Histogram,
}

impl CoreStats {
    /// Registers every instrument into `registry` under
    /// `panda_<component>_…` names (`component` is `gateway` or `router`).
    pub fn register_into(&self, registry: &Registry, component: &str) {
        let name = |what: &str| format!("panda_{component}_{what}");
        registry.register_counter(&name("connections_total"), &self.connections);
        registry.register_counter(
            &name("rejected_connections_total"),
            &self.rejected_connections,
        );
        registry.register_counter(
            &name("dropped_connections_total"),
            &self.dropped_connections,
        );
        registry.register_counter(&name("frames_total"), &self.frames);
        registry.register_counter(&name("malformed_nacks_total"), &self.malformed_nacks);
        registry.register_histogram(&name("frame_ns"), &self.frame_ns);
    }
}

/// A running framed-protocol listener; dropping it shuts it down.
pub(crate) struct Listener<S: FrameService> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<OrderedMutex<Vec<std::thread::JoinHandle<()>>>>,
    _service: std::marker::PhantomData<S>,
}

impl<S: FrameService> Listener<S> {
    /// Binds on `addr` and starts accepting connections served by
    /// `service`. `name` labels the acceptor/handler threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<S>,
        config: GatewayConfig,
        core: Arc<CoreStats>,
        name: &'static str,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Polling a non-blocking listener (instead of parking in `accept`)
        // keeps shutdown independent of network traffic; set up here so a
        // platform that refuses fails the bind, not the acceptor thread.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(OrderedMutex::new(rank::LISTENER_REGISTRY, Vec::new()));
        let acceptor = {
            let (stop, handlers) = (Arc::clone(&stop), Arc::clone(&handlers));
            std::thread::Builder::new()
                .name(format!("{name}-accept"))
                .spawn(move || {
                    accept_loop(listener, service, config, stop, handlers, core, name);
                })?
        };
        Ok(Listener {
            addr,
            stop,
            acceptor: Some(acceptor),
            handlers,
            _service: std::marker::PhantomData,
        })
    }

    /// The bound address (with the resolved port when bound on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain every live connection
    /// (frames already received are processed and answered), join all
    /// threads.
    pub fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor polls a non-blocking listener, so it observes the
        // flag within one poll interval (no wake-up connection needed —
        // connecting could itself fail under fd exhaustion).
        //
        // The joins re-raise a worker thread's panic on the shutdown
        // caller; they are unreachable from hostile bytes (a malformed
        // frame is a typed decode error, never a worker panic).
        // panda-check: allow(panic_path): propagates a worker panic only
        acceptor.join().expect("listener acceptor panicked");
        let handlers = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            // panda-check: allow(panic_path): propagates a worker panic only
            h.join().expect("connection handler panicked");
        }
    }
}

impl<S: FrameService> Drop for Listener<S> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop<S: FrameService>(
    listener: TcpListener,
    service: Arc<S>,
    config: GatewayConfig,
    stop: Arc<AtomicBool>,
    handlers: Arc<OrderedMutex<Vec<std::thread::JoinHandle<()>>>>,
    core: Arc<CoreStats>,
    name: &'static str,
) {
    // The listener arrives non-blocking (set in `bind`, where a platform
    // refusal still propagates as an `io::Error`): the stop flag is
    // observed within one poll interval even under fd exhaustion, when a
    // wake-up connection could not be made. The idle poll is 1 ms — cheap
    // on an idle acceptor thread, and small enough not to tax connect
    // latency or per-connection benchmarks.
    const ACCEPT_POLL: Duration = Duration::from_millis(1);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient accept failures (per-connection resets, fd
            // exhaustion) must not kill the loop — and must not spin it
            // hot either; the longer pause gives the fd table room to
            // recover.
            Err(_) => {
                std::thread::sleep(config.poll_interval);
                continue;
            }
        };
        // Some platforms hand the accepted socket the listener's
        // non-blocking flag; the handler's read-timeout logic expects a
        // blocking stream.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let mut registry = handlers.lock();
        // Reap finished handlers as connections churn, so a long-lived
        // listener holds registry entries (and thread stacks) only for
        // live connections. Finished threads join instantly.
        let mut live = Vec::with_capacity(registry.len() + 1);
        for h in registry.drain(..) {
            if h.is_finished() {
                // panda-check: allow(panic_path): propagates a worker panic only
                h.join().expect("connection handler panicked");
            } else {
                live.push(h);
            }
        }
        // The connection cap: a thread + buffers per connection must not
        // be mintable without bound by whoever can reach the port.
        if live.len() >= config.max_connections.max(1) {
            core.rejected_connections.inc();
            *registry = live;
            drop(registry);
            drop(stream);
            continue;
        }
        let spawned = {
            let (service, stop, core, config) = (
                Arc::clone(&service),
                Arc::clone(&stop),
                Arc::clone(&core),
                config.clone(),
            );
            std::thread::Builder::new()
                .name(format!("{name}-conn"))
                .spawn(move || serve_connection(stream, &*service, &config, &stop, &core))
        };
        match spawned {
            Ok(handler) => {
                core.connections.inc();
                live.push(handler);
            }
            // Thread exhaustion is the same resource pressure as the
            // connection cap: refuse this connection (the stream moved
            // into the failed closure and is already gone), keep serving.
            Err(_) => {
                core.rejected_connections.inc();
            }
        }
        *registry = live;
    }
}

fn serve_connection<S: FrameService>(
    mut stream: TcpStream,
    service: &S,
    config: &GatewayConfig,
    stop: &AtomicBool,
    core: &CoreStats,
) {
    // Per-frame acks on a stream of small frames need low latency;
    // timeouts keep both directions from wedging shutdown.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut conn = service.open();
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; config.read_buf.max(1)];
    let mut replies = Vec::new();
    let mut eof = false;
    let mut dropped = false;
    let mut last_bytes = clock::now();
    loop {
        if !eof {
            match stream.read(&mut buf) {
                Ok(0) => eof = true,
                Ok(n) => {
                    // panda-check: allow(panic_path): read() contract: n <= buf.len()
                    decoder.feed(&buf[..n]);
                    last_bytes = clock::now();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        // Listener shutdown: drain what already arrived,
                        // reply, then close.
                        eof = true;
                    } else if clock::now().saturating_duration_since(last_bytes)
                        >= config.idle_timeout
                    {
                        // A silent socket must not pin a connection slot
                        // forever; drop it (the client reconnects).
                        dropped = true;
                        break;
                    } else {
                        continue;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dropped = true;
                    break;
                }
            }
        }
        replies.clear();
        let mut disposition = Disposition::Continue;
        loop {
            // Privilege is enforced at the tag, before payload decode: a
            // data-plane client cannot make the server build a policy
            // graph (or parse any other privileged/server-bound payload)
            // just to have it refused.
            match decoder.next_frame_permitted(|t| service.permits(t)) {
                Ok(Some(frame)) => {
                    core.frames.inc();
                    disposition = core
                        .frame_ns
                        .time(|| service.handle(&mut conn, frame, &mut replies));
                    if !matches!(disposition, Disposition::Continue) {
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing is lost: refuse and drop the connection. The
                    // downstream tier never saw the bytes, so other
                    // clients are unaffected.
                    core.malformed_nacks.inc();
                    encode_frame(
                        &Frame::Nack {
                            reason: NackReason::Malformed,
                            accepted: 0,
                        },
                        &mut replies,
                    );
                    disposition = Disposition::Drop;
                    break;
                }
            }
        }
        if !replies.is_empty() && stream.write_all(&replies).is_err() {
            dropped = true;
            break;
        }
        match disposition {
            Disposition::Close => break,
            Disposition::Drop => {
                dropped = true;
                break;
            }
            Disposition::Continue => {}
        }
        if eof {
            break;
        }
        // A client that keeps the socket busy must not outlive shutdown:
        // the flag is re-checked here, not only on idle read timeouts.
        // One more iteration drains frames already buffered, then exits.
        if stop.load(Ordering::SeqCst) {
            eof = true;
        }
    }
    if dropped {
        core.dropped_connections.inc();
    }
    service.closed(conn, dropped);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
