//! [`GatewayClient`]: the blocking client SDK for the ingest gateway.
//!
//! One TCP connection, strict request/reply: every
//! `Submit`/`SubmitBatch`/`SwitchPolicy`/`Shutdown` frame is answered by
//! exactly one `Ack`/`Nack` in order, so the client never parses an
//! ambiguous stream. Backpressure ([`NackReason::Backpressure`]) is
//! handled inside [`GatewayClient::submit`] and
//! [`GatewayClient::submit_batch`] by a bounded retry loop
//! ([`RetryPolicy`]): a nacked batch resumes from the acknowledged prefix,
//! so report order — and therefore the pipeline's arrival-sequence
//! determinism — is preserved across retries.

use crate::mailbox::ServerMessage;
use crate::wire::{
    encode_frame, encode_submit_batch, encode_submit_sequenced, read_frame, Frame, NackReason,
    ReadFrameError, MAX_REPORTS_PER_FRAME,
};
use panda_core::LocationPolicyGraph;
use panda_mobility::UserId;
use panda_obs::Counter;
use panda_surveillance::ingest::{PendingReport, SequencedReport};
use panda_surveillance::protocol::{LocationReport, PolicyAssignment, ResendRequest};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How a client rides out [`NackReason::Backpressure`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive no-progress nacks tolerated before giving up with
    /// [`ClientError::Saturated`]. A batch nack that accepted a prefix
    /// counts as progress and resets the budget.
    pub max_attempts: u32,
    /// Pause before each resend.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 256,
            backoff: Duration::from_micros(500),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's reply did not decode (version skew or corruption).
    Decode(crate::wire::DecodeError),
    /// The server closed the connection.
    Disconnected,
    /// The pipeline behind the gateway has shut down.
    Closed,
    /// Backpressure outlasted the whole [`RetryPolicy`] budget.
    Saturated,
    /// The server refused the frame as malformed protocol traffic.
    Rejected,
    /// The server answered out of protocol (not an `Ack`/`Nack`).
    UnexpectedReply,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "gateway i/o failed: {e}"),
            ClientError::Decode(e) => write!(f, "gateway reply did not decode: {e}"),
            ClientError::Disconnected => f.write_str("gateway closed the connection"),
            ClientError::Closed => f.write_str("ingest pipeline behind the gateway has shut down"),
            ClientError::Saturated => {
                f.write_str("backpressure persisted through every retry attempt")
            }
            ClientError::Rejected => f.write_str("gateway rejected the frame as malformed"),
            ClientError::UnexpectedReply => f.write_str("gateway replied out of protocol"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadFrameError> for ClientError {
    fn from(e: ReadFrameError) -> Self {
        match e {
            ReadFrameError::Io(e) => ClientError::Io(e),
            ReadFrameError::Decode(e) => ClientError::Decode(e),
            ReadFrameError::UnexpectedEof => ClientError::Disconnected,
        }
    }
}

/// A blocking connection to an [`crate::IngestGateway`].
pub struct GatewayClient {
    stream: TcpStream,
    retry: RetryPolicy,
    send_buf: Vec<u8>,
    backpressure_retries: Counter,
}

impl GatewayClient {
    /// Connects with the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(GatewayClient {
            stream,
            retry: RetryPolicy::default(),
            send_buf: Vec::new(),
            backpressure_retries: Counter::new(),
        })
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// How many backpressure nacks this client has ridden out (observable
    /// evidence that the retry path ran). A `panda-obs` counter read:
    /// reads 0 when built with `--cfg panda_obs_off`.
    pub fn backpressure_retries(&self) -> u64 {
        self.backpressure_retries.get()
    }

    /// Scrapes the node's metric exposition over the wire
    /// ([`Frame::StatsRequest`] → [`Frame::StatsReply`]). Served only on
    /// privileged planes (a gateway with
    /// [`crate::GatewayConfig::allow_wire_policy_switch`] — operator and
    /// shard planes both — or a router's operator plane); a data-plane
    /// listener refuses with [`ClientError::Rejected`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on an unprivileged plane; the
    /// transport/protocol variants otherwise.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Frame::StatsRequest)? {
            Frame::StatsReply(text) => Ok(text),
            Frame::Nack { reason, .. } => Err(nack_error(reason)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Sends one frame and reads its single reply.
    fn round_trip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        self.send_buf.clear();
        encode_frame(frame, &mut self.send_buf);
        self.exchange()
    }

    /// Writes the pre-encoded `send_buf` and reads the single reply.
    fn exchange(&mut self) -> Result<Frame, ClientError> {
        use std::io::Write;
        self.stream.write_all(&self.send_buf)?;
        match read_frame(&mut self.stream)? {
            Some(reply) => Ok(reply),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Submits one report, riding out backpressure per the retry policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Saturated`] when the retry budget runs out; the
    /// transport/protocol variants otherwise.
    pub fn submit(&mut self, report: PendingReport) -> Result<(), ClientError> {
        let mut attempts = 0u32;
        loop {
            match self.round_trip(&Frame::Submit(report))? {
                Frame::Ack { .. } => return Ok(()),
                Frame::Nack {
                    reason: NackReason::Backpressure,
                    ..
                } => {
                    attempts += 1;
                    self.backpressure_retries.inc();
                    if attempts >= self.retry.max_attempts {
                        return Err(ClientError::Saturated);
                    }
                    std::thread::sleep(self.retry.backoff);
                }
                Frame::Nack { reason, .. } => return Err(nack_error(reason)),
                _ => return Err(ClientError::UnexpectedReply),
            }
        }
    }

    /// Submits a slice in order, chunked at [`MAX_REPORTS_PER_FRAME`] per
    /// frame. On a backpressure nack the resend resumes from the
    /// acknowledged prefix, so the gateway enqueues every report exactly
    /// once, in order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Saturated`] when a chunk makes no progress for the
    /// whole retry budget; the transport/protocol variants otherwise.
    pub fn submit_batch(&mut self, reports: &[PendingReport]) -> Result<(), ClientError> {
        for chunk in reports.chunks(MAX_REPORTS_PER_FRAME) {
            self.submit_chunk(chunk)?;
        }
        Ok(())
    }

    fn submit_chunk(&mut self, chunk: &[PendingReport]) -> Result<(), ClientError> {
        let mut sent = 0usize;
        let mut attempts = 0u32;
        while sent < chunk.len() {
            let remaining = chunk.len() - sent;
            // Encoded straight from the slice: no owned Vec per (re)send.
            self.send_buf.clear();
            encode_submit_batch(&chunk[sent..], &mut self.send_buf);
            match self.exchange()? {
                // The `accepted` counts come from an untrusted wire: a
                // nonconforming server must surface as a protocol error,
                // not an infinite resend loop (Ack{0}) or silently
                // dropped reports (accepted > remaining).
                Frame::Ack { accepted } => {
                    if accepted as usize != remaining {
                        return Err(ClientError::UnexpectedReply);
                    }
                    sent += accepted as usize;
                }
                Frame::Nack {
                    reason: NackReason::Backpressure,
                    accepted,
                } => {
                    if accepted as usize >= remaining {
                        return Err(ClientError::UnexpectedReply);
                    }
                    sent += accepted as usize;
                    self.backpressure_retries.inc();
                    if accepted > 0 {
                        // Progress: the queue is draining; reset the budget.
                        attempts = 0;
                    } else {
                        attempts += 1;
                        if attempts >= self.retry.max_attempts {
                            return Err(ClientError::Saturated);
                        }
                    }
                    std::thread::sleep(self.retry.backoff);
                }
                Frame::Nack { reason, .. } => return Err(nack_error(reason)),
                _ => return Err(ClientError::UnexpectedReply),
            }
        }
        Ok(())
    }

    /// Submits upstream-sequenced reports (shard plane only, see
    /// [`crate::GatewayConfig::shard_plane`]) and returns the accepted
    /// prefix length — **one attempt per frame, no backpressure retry**.
    /// The router calls this on its downstream links: riding out
    /// backpressure here would hide a full shard from the routing tier's
    /// own honest-prefix accounting, so partial progress is returned
    /// instead of retried.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] when the node behind the link has shut
    /// down; the transport/protocol variants otherwise.
    pub fn submit_sequenced(&mut self, reports: &[SequencedReport]) -> Result<usize, ClientError> {
        let mut accepted_total = 0usize;
        for chunk in reports.chunks(MAX_REPORTS_PER_FRAME) {
            self.send_buf.clear();
            encode_submit_sequenced(chunk, &mut self.send_buf);
            match self.exchange()? {
                Frame::Ack { accepted } => {
                    if accepted as usize != chunk.len() {
                        return Err(ClientError::UnexpectedReply);
                    }
                    accepted_total += chunk.len();
                }
                Frame::Nack {
                    reason: NackReason::Backpressure,
                    accepted,
                } => {
                    if accepted as usize >= chunk.len() {
                        return Err(ClientError::UnexpectedReply);
                    }
                    return Ok(accepted_total + accepted as usize);
                }
                Frame::Nack { reason, .. } => return Err(nack_error(reason)),
                _ => return Err(ClientError::UnexpectedReply),
            }
        }
        Ok(accepted_total)
    }

    /// Sends one already-perturbed report (a client-side release — the
    /// re-send protocol's output) to land verbatim, riding out
    /// backpressure per the retry policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Saturated`] when the retry budget runs out; the
    /// transport/protocol variants otherwise.
    pub fn send_report(&mut self, report: LocationReport) -> Result<(), ClientError> {
        let mut attempts = 0u32;
        loop {
            match self.round_trip(&Frame::Report(report))? {
                Frame::Ack { .. } => return Ok(()),
                Frame::Nack {
                    reason: NackReason::Backpressure,
                    ..
                } => {
                    attempts += 1;
                    self.backpressure_retries.inc();
                    if attempts >= self.retry.max_attempts {
                        return Err(ClientError::Saturated);
                    }
                    std::thread::sleep(self.retry.backoff);
                }
                Frame::Nack { reason, .. } => return Err(nack_error(reason)),
                _ => return Err(ClientError::UnexpectedReply),
            }
        }
    }

    /// Polls the server for `user`'s oldest pending server-initiated
    /// message (a policy assignment or re-send request); `None` when the
    /// mailbox is empty.
    ///
    /// # Errors
    ///
    /// The transport/protocol variants.
    pub fn fetch(&mut self, user: UserId) -> Result<Option<ServerMessage>, ClientError> {
        match self.round_trip(&Frame::Fetch { user })? {
            Frame::Assign(a) => Ok(Some(ServerMessage::Assign(a))),
            Frame::Resend(r) => Ok(Some(ServerMessage::Resend(r))),
            Frame::Ack { .. } => Ok(None),
            Frame::Nack { reason, .. } => Err(nack_error(reason)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Enqueues a policy assignment for its user's next fetch (operator
    /// plane only).
    ///
    /// # Errors
    ///
    /// The transport/protocol variants; [`ClientError::Rejected`] on a
    /// data-plane listener.
    pub fn push_assignment(&mut self, assignment: &PolicyAssignment) -> Result<(), ClientError> {
        self.expect_plain_ack(&Frame::Assign(assignment.clone()))
    }

    /// Enqueues a re-send request for its user's next fetch (operator
    /// plane only).
    ///
    /// # Errors
    ///
    /// The transport/protocol variants; [`ClientError::Rejected`] on a
    /// data-plane listener.
    pub fn push_resend(&mut self, request: &ResendRequest) -> Result<(), ClientError> {
        self.expect_plain_ack(&Frame::Resend(request.clone()))
    }

    fn expect_plain_ack(&mut self, frame: &Frame) -> Result<(), ClientError> {
        match self.round_trip(frame)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Nack { reason, .. } => Err(nack_error(reason)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Applies `policy` to every report this connection submits afterwards
    /// (in-band, so the boundary in the landed stream is exact).
    ///
    /// # Errors
    ///
    /// The transport/protocol variants; [`ClientError::Closed`] when the
    /// pipeline has shut down.
    pub fn switch_policy(&mut self, policy: &LocationPolicyGraph) -> Result<(), ClientError> {
        let mut attempts = 0u32;
        loop {
            match self.round_trip(&Frame::SwitchPolicy(policy.clone()))? {
                Frame::Ack { .. } => return Ok(()),
                // The gateway never parks on the queue, so a switch into a
                // full queue nacks; ride it out like a submission.
                Frame::Nack {
                    reason: NackReason::Backpressure,
                    ..
                } => {
                    attempts += 1;
                    self.backpressure_retries.inc();
                    if attempts >= self.retry.max_attempts {
                        return Err(ClientError::Saturated);
                    }
                    std::thread::sleep(self.retry.backoff);
                }
                Frame::Nack { reason, .. } => return Err(nack_error(reason)),
                _ => return Err(ClientError::UnexpectedReply),
            }
        }
    }

    /// Clean end of session: tells the gateway, waits for the ack, closes.
    ///
    /// # Errors
    ///
    /// The transport/protocol variants (the connection is closed
    /// regardless).
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        let result = match self.round_trip(&Frame::Shutdown) {
            Ok(Frame::Ack { .. }) => Ok(()),
            Ok(Frame::Nack { reason, .. }) => Err(nack_error(reason)),
            Ok(_) => Err(ClientError::UnexpectedReply),
            Err(e) => Err(e),
        };
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        result
    }
}

fn nack_error(reason: NackReason) -> ClientError {
    match reason {
        // `submit`/`submit_batch` intercept backpressure for retry; seeing
        // it here means the retry loop chose to surface saturation.
        NackReason::Backpressure => ClientError::Saturated,
        NackReason::Closed => ClientError::Closed,
        NackReason::Malformed => ClientError::Rejected,
    }
}
