//! [`Mailbox`]: the server-initiated half of the re-send protocol over a
//! client-initiated transport.
//!
//! The paper's server *pushes* [`PolicyAssignment`]s and
//! [`ResendRequest`]s at clients, but reporters connect outbound and the
//! gateway never dials back. The mailbox inverts the push: the operator
//! plane enqueues a request per user ([`Frame::Assign`] /
//! [`Frame::Resend`] frames), and the user's next data-plane
//! [`Frame::Fetch`] poll collects it — one request per poll, FIFO per
//! user, so the strict request/reply framing of the wire holds.

use crate::wire::Frame;
use panda_check::ordered::{rank, OrderedMutex};
use panda_mobility::UserId;
use panda_surveillance::protocol::{PolicyAssignment, ResendRequest};
use std::collections::{HashMap, VecDeque};

/// A server-initiated message waiting for its user to poll.
#[derive(Debug, Clone)]
pub enum ServerMessage {
    /// A policy assignment to apply (subject to client consent).
    Assign(PolicyAssignment),
    /// A re-send request over an epoch window.
    Resend(ResendRequest),
}

impl ServerMessage {
    /// The wire frame answering the fetch that collects this message.
    pub(crate) fn into_frame(self) -> Frame {
        match self {
            ServerMessage::Assign(a) => Frame::Assign(a),
            ServerMessage::Resend(r) => Frame::Resend(r),
        }
    }
}

/// Per-user FIFO queues of pending server-initiated messages, shared
/// between a gateway/router's operator plane (which enqueues) and its
/// data plane (which serves fetch polls).
#[derive(Debug)]
pub struct Mailbox {
    inner: OrderedMutex<HashMap<UserId, VecDeque<ServerMessage>>>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: OrderedMutex::new(rank::MAILBOX, HashMap::new()),
        }
    }

    /// Enqueues a message for `user`'s next fetch.
    pub fn push(&self, user: UserId, msg: ServerMessage) {
        self.inner.lock().entry(user).or_default().push_back(msg);
    }

    /// Collects the oldest pending message for `user`, if any.
    pub fn fetch(&self, user: UserId) -> Option<ServerMessage> {
        let mut inner = self.inner.lock();
        let queue = inner.get_mut(&user)?;
        let msg = queue.pop_front();
        if queue.is_empty() {
            inner.remove(&user);
        }
        msg
    }

    /// Total messages pending across all users.
    pub fn len(&self) -> usize {
        self.inner.lock().values().map(VecDeque::len).sum()
    }

    /// Whether no message is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::LocationPolicyGraph;
    use panda_geo::GridMap;

    fn resend(user: u32, from: u32) -> ServerMessage {
        ServerMessage::Resend(ResendRequest {
            user: UserId(user),
            from,
            to: from + 4,
            policy: LocationPolicyGraph::isolated(GridMap::new(2, 2, 50.0)),
            eps_per_epoch: 0.5,
        })
    }

    #[test]
    fn fifo_per_user_and_isolated_across_users() {
        let mb = Mailbox::new();
        mb.push(UserId(1), resend(1, 0));
        mb.push(UserId(1), resend(1, 8));
        mb.push(UserId(2), resend(2, 3));
        assert_eq!(mb.len(), 3);
        match mb.fetch(UserId(1)) {
            Some(ServerMessage::Resend(r)) => assert_eq!(r.from, 0),
            other => panic!("expected first resend, got {other:?}"),
        }
        match mb.fetch(UserId(1)) {
            Some(ServerMessage::Resend(r)) => assert_eq!(r.from, 8),
            other => panic!("expected second resend, got {other:?}"),
        }
        assert!(mb.fetch(UserId(1)).is_none());
        assert!(mb.fetch(UserId(3)).is_none());
        match mb.fetch(UserId(2)) {
            Some(ServerMessage::Resend(r)) => assert_eq!(r.user, UserId(2)),
            other => panic!("expected user 2's resend, got {other:?}"),
        }
        assert!(mb.is_empty());
    }
}
