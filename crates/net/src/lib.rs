//! `panda-net`: the wire in front of the streaming ingest pipeline.
//!
//! PANDA's deployment shape is an open-loop surveillance server collecting
//! perturbed reports from a large population of untrusted clients over a
//! network. This crate is that client/server split for the reproduction:
//!
//! * [`wire`] — a dependency-free, versioned, length-prefixed binary codec
//!   for the `panda_surveillance::protocol` types and the ingest session
//!   frames ([`Frame`]), with typed [`DecodeError`]s (hostile bytes are a
//!   parse error, never a panic) and an incremental [`FrameDecoder`] for
//!   byte streams;
//! * [`gateway`] — [`IngestGateway`], a threaded TCP front end that
//!   accepts many concurrent clients, decodes frames, feeds
//!   [`panda_surveillance::ingest::IngestHandle`], and answers every
//!   submission with [`Frame::Ack`] or a typed [`Frame::Nack`]. Queue
//!   backpressure surfaces on the wire as [`NackReason::Backpressure`]
//!   instead of blocking the socket thread;
//! * [`client`] — [`GatewayClient`], a blocking SDK (connect, submit,
//!   batch submit with retry-on-backpressure, in-band policy switch,
//!   re-send fetch/reply, clean shutdown) so examples, tests and benches
//!   can drive the server end-to-end over loopback;
//! * [`router`] — [`ShardRouter`], the routing tier of the sharded ingest
//!   topology: it serves the same client-facing protocol, splits
//!   submissions by `panda_surveillance::shard_of`, stamps each report
//!   with a cluster-wide arrival sequence number, and fans sub-batches to
//!   per-shard downstream nodes (in-process or remote gateways);
//! * [`mailbox`] — [`Mailbox`], the per-user FIFO that turns the paper's
//!   server-initiated pushes (policy assignments, re-send requests) into
//!   client-polled fetches over the client-initiated transport.
//!
//! ## Observability
//!
//! Every node is wire-scrapeable: [`Frame::StatsRequest`] on a privileged
//! plane (an operator/shard gateway, a router's operator listener) answers
//! with [`Frame::StatsReply`] carrying the node's `panda-obs` metric
//! exposition — frame counters, per-stage latency histograms, queue
//! depths — merged across the gateway and its pipeline.
//! [`GatewayClient::stats`] is the client side;
//! [`IngestGateway::metrics_dump`] / [`ShardRouter::metrics_dump`] the
//! in-process equivalents. Telemetry reads the clock only through
//! `panda_obs::clock` and records counts/sizes in RNG-keyed stages, so
//! scraping never perturbs the determinism contract above.
//!
//! ## Determinism
//!
//! The pipeline keys each report's RNG stream by its **arrival sequence
//! number**, so the transport cannot change the released cells: a single
//! client submitting a trace over TCP lands a database byte-identical to
//! in-process [`IngestHandle::submit`] calls in the same order, across
//! flush timings and lane counts (CI-enforced). The router preserves
//! this across shards: it reserves one global sequence number per stream
//! position and forwards it with the report, so an N-node cluster's
//! merged database is byte-identical to the single-process pipeline for
//! the same arrival order — including under mid-stream backpressure,
//! where a retried report keeps its originally-reserved number. With
//! several concurrent clients the *interleaving* at the gateway/router
//! decides arrival order, exactly as concurrent in-process producers do.
//!
//! [`IngestHandle::submit`]: panda_surveillance::ingest::IngestHandle::submit

#![forbid(unsafe_code)]

pub mod client;
pub mod gateway;
mod listener;
pub mod mailbox;
pub mod router;
pub mod wire;

pub use client::{ClientError, GatewayClient, RetryPolicy};
pub use gateway::{ConnectionStats, GatewayConfig, GatewayStats, IngestGateway};
pub use mailbox::{Mailbox, ServerMessage};
pub use router::{RouterConfig, RouterStats, ShardBackend, ShardRouter};
pub use wire::{DecodeError, Frame, FrameDecoder, NackReason};
