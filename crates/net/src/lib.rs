//! `panda-net`: the wire in front of the streaming ingest pipeline.
//!
//! PANDA's deployment shape is an open-loop surveillance server collecting
//! perturbed reports from a large population of untrusted clients over a
//! network. This crate is that client/server split for the reproduction:
//!
//! * [`wire`] — a dependency-free, versioned, length-prefixed binary codec
//!   for the `panda_surveillance::protocol` types and the ingest session
//!   frames ([`Frame`]), with typed [`DecodeError`]s (hostile bytes are a
//!   parse error, never a panic) and an incremental [`FrameDecoder`] for
//!   byte streams;
//! * [`gateway`] — [`IngestGateway`], a threaded TCP front end that
//!   accepts many concurrent clients, decodes frames, feeds
//!   [`panda_surveillance::ingest::IngestHandle`], and answers every
//!   submission with [`Frame::Ack`] or a typed [`Frame::Nack`]. Queue
//!   backpressure surfaces on the wire as [`NackReason::Backpressure`]
//!   instead of blocking the socket thread;
//! * [`client`] — [`GatewayClient`], a blocking SDK (connect, submit,
//!   batch submit with retry-on-backpressure, in-band policy switch, clean
//!   shutdown) so examples, tests and benches can drive the server
//!   end-to-end over loopback.
//!
//! ## Determinism
//!
//! The pipeline keys each report's RNG stream by its **arrival sequence
//! number**, so the transport cannot change the released cells: a single
//! client submitting a trace over TCP lands a database byte-identical to
//! in-process [`IngestHandle::submit`] calls in the same order, across
//! flush timings and lane counts (CI-enforced). With several concurrent
//! clients the *interleaving* at the gateway decides arrival order, exactly
//! as concurrent in-process producers do.
//!
//! [`IngestHandle::submit`]: panda_surveillance::ingest::IngestHandle::submit

pub mod client;
pub mod gateway;
pub mod wire;

pub use client::{ClientError, GatewayClient, RetryPolicy};
pub use gateway::{GatewayConfig, GatewayStats, IngestGateway};
pub use wire::{DecodeError, Frame, FrameDecoder, NackReason};
