//! The framed wire protocol: a dependency-free, versioned, length-prefixed
//! binary codec for ingest sessions.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"PNDA"
//! 4       1     protocol version (= [`VERSION`])
//! 5       1     frame tag
//! 6       2     reserved, must be zero
//! 8       4     payload length, little-endian (≤ [`MAX_PAYLOAD`])
//! 12      len   payload
//! ```
//!
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern; booleans are one byte, `0` or `1`. Anything else — wrong
//! magic, unknown version or tag, non-zero reserved bytes, an over-length
//! frame, a payload that under- or over-runs its declared length, a
//! non-finite float where geometry demands finite, an out-of-range policy
//! edge — decodes to a typed [`DecodeError`], **never** a panic: the
//! gateway faces untrusted bytes.
//!
//! Framing is not self-resynchronising: after the first [`DecodeError`] on
//! a stream the frame boundary is lost and the connection must be dropped
//! (the gateway answers [`Frame::Nack`] with [`NackReason::Malformed`] and
//! closes).

use panda_core::LocationPolicyGraph;
use panda_geo::{GridMap, Point};
use panda_graph::GraphBuilder;
use panda_mobility::UserId;
use panda_surveillance::ingest::{PendingReport, SequencedReport};
use panda_surveillance::protocol::{LocationReport, PolicyAssignment, ResendRequest};
use std::io::Read;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"PNDA";

/// Wire protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Hard ceiling on a frame's payload length. Large enough for a
/// [`Frame::SwitchPolicy`] carrying a city-scale policy graph (a 256×256
/// grid's 8-neighbour policy is ~2 MiB of edges), small enough that a
/// hostile length field cannot make the decoder balloon.
pub const MAX_PAYLOAD: u32 = 8 << 20;

/// Ceiling on an encoded policy name, bounding decoder allocations.
pub const MAX_NAME_LEN: usize = 4096;

/// Ceiling on a [`Frame::StatsReply`] exposition text, bounding decoder
/// allocations. A node's full metric catalog renders to a few KiB; 1 MiB
/// leaves room for orders of magnitude of growth while keeping a hostile
/// length field harmless.
pub const MAX_STATS_TEXT: usize = 1 << 20;

/// Truncates an exposition text to fit [`MAX_STATS_TEXT`], cutting at the
/// last complete line so a clamped scrape still parses. Guards the
/// [`Frame::StatsReply`] encoder's size assertion; in practice a node's
/// catalog is a few KiB and passes through untouched.
pub(crate) fn clamp_stats_text(mut text: String) -> String {
    if text.len() > MAX_STATS_TEXT {
        let mut cut = MAX_STATS_TEXT;
        while cut > 0 && text.as_bytes().get(cut - 1) != Some(&b'\n') {
            cut -= 1;
        }
        text.truncate(cut);
    }
    text
}

/// Ceiling on a decoded policy grid's cell count. The width/height fields
/// alone could demand ~4 × 10⁹ nodes — a ~100 GB adjacency allocation from
/// a 50-byte frame — so the decoder refuses anything beyond a 512×512
/// city grid before touching the graph builder. The value is chosen so
/// the densest paper preset (`G1`, 8 neighbours per cell ≈ 4 edges/cell)
/// on a maximal grid still encodes within [`MAX_PAYLOAD`]; denser
/// arbitrary graphs may exceed the payload ceiling sooner (the encoder
/// asserts, the decoder refuses via `Oversize`).
pub const MAX_POLICY_CELLS: u32 = 1 << 18;

/// How many reports [`crate::GatewayClient`] packs into one
/// [`Frame::SubmitBatch`] — 4096 reports ≈ 52 KiB, far below
/// [`MAX_PAYLOAD`], matching the release engine's chunk size.
pub const MAX_REPORTS_PER_FRAME: usize = 4096;

/// Why the server refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The ingest queue is at capacity; retry after a pause. For a batch,
    /// [`Frame::Nack::accepted`] reports were enqueued before it filled —
    /// resend from that offset.
    Backpressure,
    /// The pipeline behind the gateway has shut down; no further report
    /// will be accepted on any connection.
    Closed,
    /// The bytes did not parse as a protocol frame (or the frame is not
    /// valid client → server traffic); the server closes the connection.
    Malformed,
}

/// One protocol frame.
///
/// `Submit`/`SubmitBatch`/`SwitchPolicy`/`Shutdown` travel client → server;
/// `Ack`/`Nack` travel server → client; `Report`/`Assign`/`Resend` encode
/// the `panda_surveillance::protocol` types for server-initiated channels
/// (policy pushes and the re-send protocol) and round-trip through the same
/// codec.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Client → server: one planned report for the pipeline to perturb and
    /// land.
    Submit(PendingReport),
    /// Client → server: many reports in submission order.
    SubmitBatch(Vec<PendingReport>),
    /// Server → client: the preceding frame was applied; for submissions,
    /// `accepted` reports entered the queue.
    Ack {
        /// Reports enqueued by the acknowledged frame (0 for non-submit
        /// frames).
        accepted: u32,
    },
    /// Server → client: the preceding frame was refused.
    Nack {
        /// Why it was refused.
        reason: NackReason,
        /// Reports enqueued before the refusal (a batch stopped by
        /// backpressure lands a prefix; resend from this offset).
        accepted: u32,
    },
    /// Client → server: apply this policy to every later report (in-band,
    /// at this connection's position in the arrival order).
    SwitchPolicy(LocationPolicyGraph),
    /// Client → server: clean end of session; the server acknowledges and
    /// closes the connection.
    Shutdown,
    /// Client → server: an **already-perturbed** report (a client-side
    /// release, e.g. the re-send protocol's output) to land verbatim.
    Report(LocationReport),
    /// A server → client policy assignment (also operator → gateway, to
    /// enqueue it for the user's next [`Frame::Fetch`]).
    Assign(PolicyAssignment),
    /// A server → client re-send request (also operator → gateway, to
    /// enqueue it for the user's next [`Frame::Fetch`]).
    Resend(ResendRequest),
    /// Router → shard node: reports stamped with their client-stream
    /// arrival sequence numbers (see
    /// [`panda_surveillance::ingest::SequencedReport`]). Only valid on a
    /// trusted shard plane — a gateway refuses it unless configured as a
    /// shard node, since the seq stamps the RNG stream.
    SubmitSequenced(Vec<SequencedReport>),
    /// Client → server: poll the per-user mailbox for a pending
    /// [`Frame::Assign`] or [`Frame::Resend`]; the reply is that frame,
    /// or an `Ack` with `accepted: 0` when the mailbox is empty.
    Fetch {
        /// The polling user.
        user: UserId,
    },
    /// Operator → node: scrape the node's metric registry. The reply is a
    /// [`Frame::StatsReply`] carrying the text exposition. Operator-plane
    /// only — a public data plane refuses it at header cost (queue depths
    /// and stall counters are capacity intelligence).
    StatsRequest,
    /// Node → operator: the scraped metrics snapshot as `panda-obs`
    /// deterministic Prometheus-style text (≤ [`MAX_STATS_TEXT`] bytes).
    StatsReply(String),
}

/// Frame tags (byte 5 of the header). Public so listeners can refuse
/// frame kinds by tag **before** paying for payload decode (see
/// [`FrameDecoder::next_frame_permitted`]).
pub mod tag {
    /// [`Frame::Submit`](super::Frame::Submit).
    pub const SUBMIT: u8 = 0x01;
    /// [`Frame::SubmitBatch`](super::Frame::SubmitBatch).
    pub const SUBMIT_BATCH: u8 = 0x02;
    /// [`Frame::Ack`](super::Frame::Ack).
    pub const ACK: u8 = 0x03;
    /// [`Frame::Nack`](super::Frame::Nack).
    pub const NACK: u8 = 0x04;
    /// [`Frame::SwitchPolicy`](super::Frame::SwitchPolicy).
    pub const SWITCH_POLICY: u8 = 0x05;
    /// [`Frame::Shutdown`](super::Frame::Shutdown).
    pub const SHUTDOWN: u8 = 0x06;
    /// [`Frame::Report`](super::Frame::Report).
    pub const REPORT: u8 = 0x07;
    /// [`Frame::Assign`](super::Frame::Assign).
    pub const ASSIGN: u8 = 0x08;
    /// [`Frame::Resend`](super::Frame::Resend).
    pub const RESEND: u8 = 0x09;
    /// [`Frame::SubmitSequenced`](super::Frame::SubmitSequenced).
    pub const SUBMIT_SEQUENCED: u8 = 0x0A;
    /// [`Frame::Fetch`](super::Frame::Fetch).
    pub const FETCH: u8 = 0x0B;
    /// [`Frame::StatsRequest`](super::Frame::StatsRequest).
    pub const STATS_REQUEST: u8 = 0x0C;
    /// [`Frame::StatsReply`](super::Frame::StatsReply).
    pub const STATS_REPLY: u8 = 0x0D;
}

/// Why bytes did not decode to a [`Frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not one this build speaks.
    UnsupportedVersion(u8),
    /// The frame tag is not assigned.
    UnknownFrameTag(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The ceiling it broke.
        max: u32,
    },
    /// The buffer ends before the frame does. Not hostile by itself — an
    /// incremental decoder simply needs `needed` total bytes; only a
    /// stream that *ends* here was truncated.
    Incomplete {
        /// Total bytes (from the frame's first byte) required to decode.
        needed: usize,
    },
    /// The payload does not parse as its tag demands.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION})"
                )
            }
            DecodeError::UnknownFrameTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            DecodeError::Oversize { len, max } => {
                write!(
                    f,
                    "declared payload length {len} exceeds the {max}-byte ceiling"
                )
            }
            DecodeError::Incomplete { needed } => {
                write!(f, "frame incomplete: {needed} bytes needed")
            }
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_pending(out: &mut Vec<u8>, r: &PendingReport) {
    put_u32(out, r.user.0);
    put_u32(out, r.epoch);
    put_u32(out, r.cell.0);
    out.push(u8::from(r.resend));
}

fn put_location(out: &mut Vec<u8>, r: &LocationReport) {
    put_u32(out, r.user.0);
    put_u32(out, r.epoch);
    put_u32(out, r.cell.0);
    out.push(u8::from(r.resend));
}

/// Serialises a policy graph: grid geometry, name, then the edge list.
///
/// # Panics
///
/// Panics when the policy name exceeds [`MAX_NAME_LEN`] bytes or the grid
/// exceeds [`MAX_POLICY_CELLS`] cells (local programming errors, not wire
/// conditions — decoders bound-check both).
fn put_policy(out: &mut Vec<u8>, p: &LocationPolicyGraph) {
    let grid = p.grid();
    assert!(
        grid.n_cells() <= MAX_POLICY_CELLS,
        "policy grid exceeds the wire ceiling"
    );
    put_u32(out, grid.width());
    put_u32(out, grid.height());
    put_f64(out, grid.cell_size());
    let origin = grid.origin();
    put_f64(out, origin.x);
    put_f64(out, origin.y);
    match grid.anchor() {
        None => out.push(0),
        Some((lat, lon)) => {
            out.push(1);
            put_f64(out, lat);
            put_f64(out, lon);
        }
    }
    let name = p.name().as_bytes();
    assert!(
        name.len() <= MAX_NAME_LEN,
        "policy name exceeds the wire ceiling"
    );
    put_u32(out, name.len() as u32);
    out.extend_from_slice(name);
    let graph = p.graph();
    put_u32(out, graph.n_edges() as u32);
    for (a, b) in graph.edges() {
        put_u32(out, a);
        put_u32(out, b);
    }
}

/// Writes one fully-framed message: header, then the payload produced by
/// `payload`, then the length field patched in. The single place the
/// header layout and the sender-side payload ceiling live.
fn put_frame(out: &mut Vec<u8>, tag: u8, payload: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag);
    out.extend_from_slice(&[0, 0]); // reserved
    let len_at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]); // payload length, patched below
    let payload_at = out.len();
    payload(out);
    let payload_len = out.len() - payload_at;
    // A real assert, not a debug one: emitting a frame no peer can decode
    // (the receiver's `parse_header` refuses it as `Oversize`) must fail
    // loudly at the sender in every build. Reachable only by exceeding
    // the documented per-frame ceilings (e.g. a policy graph denser than
    // `MAX_POLICY_CELLS` budgets for).
    assert!(payload_len as u32 <= MAX_PAYLOAD, "frame payload too large");
    // panda-check: allow(panic_path): patches the 4 bytes reserved above; encoder-side, no hostile input
    out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Appends `frame`, fully framed (header + payload), to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Submit(r) => put_frame(out, tag::SUBMIT, |out| put_pending(out, r)),
        Frame::SubmitBatch(rs) => encode_submit_batch(rs, out),
        Frame::Ack { accepted } => put_frame(out, tag::ACK, |out| put_u32(out, *accepted)),
        Frame::Nack { reason, accepted } => put_frame(out, tag::NACK, |out| {
            out.push(match reason {
                NackReason::Backpressure => 0,
                NackReason::Closed => 1,
                NackReason::Malformed => 2,
            });
            put_u32(out, *accepted);
        }),
        Frame::SwitchPolicy(p) => put_frame(out, tag::SWITCH_POLICY, |out| put_policy(out, p)),
        Frame::Shutdown => put_frame(out, tag::SHUTDOWN, |_| {}),
        Frame::Report(r) => put_frame(out, tag::REPORT, |out| put_location(out, r)),
        Frame::Assign(a) => put_frame(out, tag::ASSIGN, |out| {
            put_u32(out, a.user.0);
            put_f64(out, a.eps_per_epoch);
            put_u32(out, a.effective_from);
            put_policy(out, &a.policy);
        }),
        Frame::Resend(r) => put_frame(out, tag::RESEND, |out| {
            put_u32(out, r.user.0);
            put_u32(out, r.from);
            put_u32(out, r.to);
            put_f64(out, r.eps_per_epoch);
            put_policy(out, &r.policy);
        }),
        Frame::SubmitSequenced(rs) => encode_submit_sequenced(rs, out),
        Frame::Fetch { user } => put_frame(out, tag::FETCH, |out| put_u32(out, user.0)),
        Frame::StatsRequest => put_frame(out, tag::STATS_REQUEST, |_| {}),
        Frame::StatsReply(text) => {
            // A local programming error, not a wire condition: the
            // registry renderer bounds its output well under the ceiling.
            assert!(
                text.len() <= MAX_STATS_TEXT,
                "stats exposition exceeds the wire ceiling"
            );
            put_frame(out, tag::STATS_REPLY, |out| {
                put_u32(out, text.len() as u32);
                out.extend_from_slice(text.as_bytes());
            });
        }
    }
}

/// Encodes `frame` into a fresh buffer.
pub fn encode_to_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(frame, &mut out);
    out
}

/// Appends a [`Frame::SubmitBatch`] frame encoded directly from a
/// borrowed slice — byte-identical to
/// `encode_frame(&Frame::SubmitBatch(reports.to_vec()), out)` without the
/// owned `Vec`, which the client's retry loop would otherwise re-clone on
/// every resend.
pub fn encode_submit_batch(reports: &[PendingReport], out: &mut Vec<u8>) {
    put_frame(out, tag::SUBMIT_BATCH, |out| {
        put_u32(out, reports.len() as u32);
        for r in reports {
            put_pending(out, r);
        }
    });
}

/// Appends a [`Frame::SubmitSequenced`] frame encoded directly from a
/// borrowed slice — the router's fan-out path, which would otherwise
/// clone each shard sub-batch into an owned `Vec` per forward.
pub fn encode_submit_sequenced(reports: &[SequencedReport], out: &mut Vec<u8>) {
    put_frame(out, tag::SUBMIT_SEQUENCED, |out| {
        put_u32(out, reports.len() as u32);
        for s in reports {
            out.extend_from_slice(&s.seq.to_le_bytes());
            out.push(u8::from(s.released));
            put_pending(out, &s.report);
        }
    });
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let s = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end))
            .ok_or(DecodeError::Malformed("payload shorter than its fields"))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Malformed("boolean byte is neither 0 nor 1")),
        }
    }

    /// The next `N` bytes as a fixed array (`take` already guarantees the
    /// length, so the conversion error is unreachable — but it stays a
    /// typed error, never a panic, on this hostile-bytes path).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.take(N)?
            .try_into()
            .map_err(|_| DecodeError::Malformed("payload shorter than its fields"))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// A float that the receiver will feed into geometry: must be finite.
    fn finite_f64(&mut self) -> Result<f64, DecodeError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(DecodeError::Malformed("non-finite float field"))
        }
    }

    /// The payload must end exactly where its fields do.
    fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Malformed(
                "trailing bytes after payload fields",
            ))
        }
    }
}

fn read_pending(r: &mut Reader<'_>) -> Result<PendingReport, DecodeError> {
    Ok(PendingReport {
        user: UserId(r.u32()?),
        epoch: r.u32()?,
        cell: panda_geo::CellId(r.u32()?),
        resend: r.bool()?,
    })
}

fn read_location(r: &mut Reader<'_>) -> Result<LocationReport, DecodeError> {
    Ok(LocationReport {
        user: UserId(r.u32()?),
        epoch: r.u32()?,
        cell: panda_geo::CellId(r.u32()?),
        resend: r.bool()?,
    })
}

/// Deserialises a policy graph, validating every field **before** touching
/// constructors that assert (hostile input must yield `Err`, not a panic).
fn read_policy(r: &mut Reader<'_>) -> Result<LocationPolicyGraph, DecodeError> {
    let width = r.u32()?;
    let height = r.u32()?;
    if width == 0 || height == 0 {
        return Err(DecodeError::Malformed("policy grid has a zero dimension"));
    }
    let n_cells_wide = u64::from(width) * u64::from(height);
    if n_cells_wide > u64::from(MAX_POLICY_CELLS) {
        return Err(DecodeError::Malformed(
            "policy grid cell count exceeds the wire ceiling",
        ));
    }
    let n_cells = n_cells_wide as u32;
    let cell_size = r.finite_f64()?;
    if cell_size <= 0.0 {
        return Err(DecodeError::Malformed("policy cell size is not positive"));
    }
    let origin_x = r.finite_f64()?;
    let origin_y = r.finite_f64()?;
    let anchor = match r.u8()? {
        0 => None,
        1 => Some((r.finite_f64()?, r.finite_f64()?)),
        _ => return Err(DecodeError::Malformed("anchor flag is neither 0 nor 1")),
    };
    let name_len = r.u32()? as usize;
    if name_len > MAX_NAME_LEN {
        return Err(DecodeError::Malformed(
            "policy name exceeds the wire ceiling",
        ));
    }
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| DecodeError::Malformed("policy name is not UTF-8"))?
        .to_owned();
    let n_edges = r.u32()? as usize;
    // 8 bytes per edge: a count the payload cannot back is hostile, and
    // rejecting it here keeps the builder allocation honest.
    if n_edges
        .checked_mul(8)
        .is_none_or(|bytes| bytes > r.remaining())
    {
        return Err(DecodeError::Malformed("edge count exceeds the payload"));
    }
    let mut builder = GraphBuilder::new(n_cells);
    for _ in 0..n_edges {
        let a = r.u32()?;
        let b = r.u32()?;
        if a == b {
            return Err(DecodeError::Malformed("policy edge is a self-loop"));
        }
        if a >= n_cells || b >= n_cells {
            return Err(DecodeError::Malformed("policy edge endpoint out of range"));
        }
        builder.edge(a, b);
    }
    let mut grid =
        GridMap::new(width, height, cell_size).with_origin(Point::new(origin_x, origin_y));
    if let Some((lat, lon)) = anchor {
        grid = grid.with_anchor(lat, lon);
    }
    Ok(LocationPolicyGraph::from_graph(grid, builder.build(), name))
}

/// Validates the 12-byte header; returns `(frame tag, payload length)`.
fn parse_header(h: &[u8]) -> Result<(u8, u32), DecodeError> {
    // A slice pattern instead of indexing: a short slice is a typed
    // error, never a panic (callers do hand us >= HEADER_LEN bytes).
    let &[m0, m1, m2, m3, version, tag, r0, r1, l0, l1, l2, l3, ..] = h else {
        return Err(DecodeError::Malformed("header shorter than 12 bytes"));
    };
    if [m0, m1, m2, m3] != MAGIC {
        return Err(DecodeError::BadMagic([m0, m1, m2, m3]));
    }
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    if r0 != 0 || r1 != 0 {
        return Err(DecodeError::Malformed("reserved header bytes are not zero"));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_PAYLOAD {
        return Err(DecodeError::Oversize {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((tag, len))
}

/// Decodes one payload according to its tag.
fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, DecodeError> {
    let mut r = Reader::new(payload);
    let frame = match tag {
        tag::SUBMIT => Frame::Submit(read_pending(&mut r)?),
        tag::SUBMIT_BATCH => {
            let count = r.u32()? as usize;
            // 13 bytes per report; a count the payload cannot back is
            // hostile (and would balloon the Vec).
            if count
                .checked_mul(13)
                .is_none_or(|bytes| bytes != r.remaining())
            {
                return Err(DecodeError::Malformed("batch count mismatches the payload"));
            }
            let mut reports = Vec::with_capacity(count);
            for _ in 0..count {
                reports.push(read_pending(&mut r)?);
            }
            Frame::SubmitBatch(reports)
        }
        tag::ACK => Frame::Ack { accepted: r.u32()? },
        tag::NACK => {
            let reason = match r.u8()? {
                0 => NackReason::Backpressure,
                1 => NackReason::Closed,
                2 => NackReason::Malformed,
                _ => return Err(DecodeError::Malformed("unknown nack reason")),
            };
            Frame::Nack {
                reason,
                accepted: r.u32()?,
            }
        }
        tag::SWITCH_POLICY => Frame::SwitchPolicy(read_policy(&mut r)?),
        tag::SHUTDOWN => Frame::Shutdown,
        tag::REPORT => Frame::Report(read_location(&mut r)?),
        tag::ASSIGN => Frame::Assign(PolicyAssignment {
            user: UserId(r.u32()?),
            eps_per_epoch: r.finite_f64()?,
            effective_from: r.u32()?,
            policy: read_policy(&mut r)?,
        }),
        tag::RESEND => {
            let user = UserId(r.u32()?);
            let from = r.u32()?;
            let to = r.u32()?;
            let eps_per_epoch = r.finite_f64()?;
            let policy = read_policy(&mut r)?;
            Frame::Resend(ResendRequest {
                user,
                from,
                to,
                policy,
                eps_per_epoch,
            })
        }
        tag::SUBMIT_SEQUENCED => {
            let count = r.u32()? as usize;
            // 22 bytes per entry (seq + released flag + report); a count
            // the payload cannot back is hostile.
            if count
                .checked_mul(22)
                .is_none_or(|bytes| bytes != r.remaining())
            {
                return Err(DecodeError::Malformed(
                    "sequenced count mismatches the payload",
                ));
            }
            let mut reports = Vec::with_capacity(count);
            for _ in 0..count {
                let seq = r.u64()?;
                let released = r.bool()?;
                let report = read_pending(&mut r)?;
                reports.push(SequencedReport {
                    seq,
                    report,
                    released,
                });
            }
            Frame::SubmitSequenced(reports)
        }
        tag::FETCH => Frame::Fetch {
            user: UserId(r.u32()?),
        },
        tag::STATS_REQUEST => Frame::StatsRequest,
        tag::STATS_REPLY => {
            let text_len = r.u32()? as usize;
            if text_len > MAX_STATS_TEXT {
                return Err(DecodeError::Malformed(
                    "stats exposition exceeds the wire ceiling",
                ));
            }
            let text = std::str::from_utf8(r.take(text_len)?)
                .map_err(|_| DecodeError::Malformed("stats exposition is not UTF-8"))?
                .to_owned();
            Frame::StatsReply(text)
        }
        other => return Err(DecodeError::UnknownFrameTag(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Decodes the frame at the head of `buf`; returns it and the bytes
/// consumed.
///
/// # Errors
///
/// [`DecodeError::Incomplete`] when `buf` holds only a frame prefix (magic
/// and version are *not* judged until a full header is present, so
/// incremental delivery is split-point-invariant); any other variant marks
/// the stream hostile or corrupt.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Incomplete { needed: HEADER_LEN });
    }
    let (tag, len) = parse_header(buf)?;
    let total = HEADER_LEN + len as usize;
    let payload = buf
        .get(HEADER_LEN..total)
        .ok_or(DecodeError::Incomplete { needed: total })?;
    let frame = decode_payload(tag, payload)?;
    Ok((frame, total))
}

/// Incremental frame decoder for byte streams: feed arbitrarily-split
/// chunks, pop whole frames. Split points never change the decoded
/// sequence (tested at every byte boundary).
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next whole frame, or `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] other than `Incomplete` (which is the
    /// `Ok(None)` case here). After an error the stream has lost framing;
    /// drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        self.next_frame_permitted(|_| true)
    }

    /// Like [`FrameDecoder::next_frame`], but consults `permit(tag)` right
    /// after header validation — a refused tag fails **before any payload
    /// byte is parsed** (and before the payload has even arrived), so an
    /// untrusted listener can reject privileged or server-bound frames at
    /// header cost instead of, say, building a quarter-million-node policy
    /// graph from a 60-byte header just to throw it away.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Malformed`] for a refused tag; otherwise as
    /// [`FrameDecoder::next_frame`].
    pub fn next_frame_permitted(
        &mut self,
        permit: impl Fn(u8) -> bool,
    ) -> Result<Option<Frame>, DecodeError> {
        // `start <= buf.len()` is a decoder invariant; `.get` keeps even
        // a violated invariant a wedged stream rather than a panic.
        let pending = self.buf.get(self.start..).unwrap_or(&[]);
        if pending.len() >= HEADER_LEN {
            let (tag, _) = parse_header(pending)?;
            if !permit(tag) {
                return Err(DecodeError::Malformed(
                    "frame kind refused on this listener",
                ));
            }
        }
        match decode_frame(pending) {
            Ok((frame, used)) => {
                self.start += used;
                // Compact once the dead prefix dominates, keeping the
                // buffer proportional to un-decoded bytes.
                if self.start >= 4096 && self.start * 2 >= self.buf.len() {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(frame))
            }
            Err(DecodeError::Incomplete { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Why [`read_frame`] returned without a frame.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The bytes did not decode.
    Decode(DecodeError),
    /// The stream ended inside a frame.
    UnexpectedEof,
}

impl std::fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "i/o error reading frame: {e}"),
            ReadFrameError::Decode(e) => write!(f, "frame decode failed: {e}"),
            ReadFrameError::UnexpectedEof => f.write_str("stream ended inside a frame"),
        }
    }
}

impl std::error::Error for ReadFrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadFrameError::Io(e) => Some(e),
            ReadFrameError::Decode(e) => Some(e),
            ReadFrameError::UnexpectedEof => None,
        }
    }
}

/// Blocking-reads exactly one frame; `Ok(None)` on a clean end-of-stream
/// at a frame boundary. The header is validated before the payload is
/// read, so a hostile length field never drives the allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ReadFrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        // panda-check: allow(panic_path): in bounds by the loop condition (filled < HEADER_LEN = header.len())
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(ReadFrameError::UnexpectedEof)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadFrameError::Io(e)),
        }
    }
    let (tag, len) = parse_header(&header).map_err(ReadFrameError::Decode)?;
    let mut payload = vec![0u8; len as usize];
    // Unlike the header read above, which must tell a clean close from a
    // mid-frame one, the payload read is exactly `read_exact`.
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ReadFrameError::UnexpectedEof
        } else {
            ReadFrameError::Io(e)
        }
    })?;
    decode_payload(tag, &payload)
        .map(Some)
        .map_err(ReadFrameError::Decode)
}

// ---------------------------------------------------------------------------
// Structural equality (policies carry no PartialEq; frames compare by
// observable content so tests can assert round trips)
// ---------------------------------------------------------------------------

/// Structural equality of two policy graphs: same grid geometry, name, and
/// edge set.
pub fn policies_equal(a: &LocationPolicyGraph, b: &LocationPolicyGraph) -> bool {
    let (ga, gb) = (a.grid(), b.grid());
    ga.width() == gb.width()
        && ga.height() == gb.height()
        && ga.cell_size() == gb.cell_size()
        && ga.origin() == gb.origin()
        && ga.anchor() == gb.anchor()
        && a.name() == b.name()
        && a.graph().n_edges() == b.graph().n_edges()
        && a.graph().edges().eq(b.graph().edges())
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Frame::Submit(a), Frame::Submit(b)) => a == b,
            (Frame::SubmitBatch(a), Frame::SubmitBatch(b)) => a == b,
            (Frame::Ack { accepted: a }, Frame::Ack { accepted: b }) => a == b,
            (
                Frame::Nack {
                    reason: ra,
                    accepted: aa,
                },
                Frame::Nack {
                    reason: rb,
                    accepted: ab,
                },
            ) => ra == rb && aa == ab,
            (Frame::SwitchPolicy(a), Frame::SwitchPolicy(b)) => policies_equal(a, b),
            (Frame::Shutdown, Frame::Shutdown) => true,
            (Frame::Report(a), Frame::Report(b)) => a == b,
            (Frame::Assign(a), Frame::Assign(b)) => {
                a.user == b.user
                    && a.eps_per_epoch == b.eps_per_epoch
                    && a.effective_from == b.effective_from
                    && policies_equal(&a.policy, &b.policy)
            }
            (Frame::Resend(a), Frame::Resend(b)) => {
                a.user == b.user
                    && a.from == b.from
                    && a.to == b.to
                    && a.eps_per_epoch == b.eps_per_epoch
                    && policies_equal(&a.policy, &b.policy)
            }
            (Frame::SubmitSequenced(a), Frame::SubmitSequenced(b)) => a == b,
            (Frame::Fetch { user: a }, Frame::Fetch { user: b }) => a == b,
            (Frame::StatsRequest, Frame::StatsRequest) => true,
            (Frame::StatsReply(a), Frame::StatsReply(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::CellId;

    fn sample_policy() -> LocationPolicyGraph {
        LocationPolicyGraph::partition(GridMap::new(4, 3, 250.0), 2, 1)
    }

    fn report(i: u32) -> PendingReport {
        PendingReport {
            user: UserId(i),
            epoch: i * 3,
            cell: CellId(i % 12),
            resend: i.is_multiple_of(2),
        }
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = vec![
            Frame::Submit(report(5)),
            Frame::SubmitBatch((0..40).map(report).collect()),
            Frame::Ack { accepted: 40 },
            Frame::Nack {
                reason: NackReason::Backpressure,
                accepted: 7,
            },
            Frame::SwitchPolicy(sample_policy()),
            Frame::Shutdown,
            Frame::Report(LocationReport {
                user: UserId(2),
                epoch: 9,
                cell: CellId(3),
                resend: true,
            }),
            Frame::Assign(PolicyAssignment {
                user: UserId(1),
                policy: sample_policy(),
                eps_per_epoch: 0.75,
                effective_from: 12,
            }),
            Frame::Resend(ResendRequest {
                user: UserId(4),
                from: 3,
                to: 9,
                policy: sample_policy(),
                eps_per_epoch: 1.25,
            }),
            Frame::StatsRequest,
            Frame::StatsReply(String::new()),
            Frame::StatsReply("# TYPE panda_gateway_frames_total counter\n".into()),
        ];
        for frame in &frames {
            let bytes = encode_to_vec(frame);
            let (decoded, used) = decode_frame(&bytes).expect("round trip");
            assert_eq!(used, bytes.len());
            assert_eq!(&decoded, frame);
        }
    }

    #[test]
    fn anchored_offset_grid_round_trips() {
        let grid = GridMap::new(5, 5, 111.0)
            .with_origin(Point::new(-3.5, 42.25))
            .with_anchor(35.68, 139.76);
        let policy = LocationPolicyGraph::g1_geo_indistinguishability(grid);
        let frame = Frame::SwitchPolicy(policy);
        let (decoded, _) = decode_frame(&encode_to_vec(&frame)).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn header_errors_are_typed() {
        let good = encode_to_vec(&Frame::Shutdown);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            decode_frame(&bad_magic),
            Err(DecodeError::BadMagic([b'X', b'N', b'D', b'A']))
        );

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            decode_frame(&bad_version),
            Err(DecodeError::UnsupportedVersion(9))
        );

        let mut bad_tag = good.clone();
        bad_tag[5] = 0xEE;
        assert_eq!(
            decode_frame(&bad_tag),
            Err(DecodeError::UnknownFrameTag(0xEE))
        );

        let mut reserved = good.clone();
        reserved[6] = 1;
        assert!(matches!(
            decode_frame(&reserved),
            Err(DecodeError::Malformed(_))
        ));

        let mut oversize = good.clone();
        oversize[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&oversize),
            Err(DecodeError::Oversize {
                len: u32::MAX,
                max: MAX_PAYLOAD
            })
        );
    }

    #[test]
    fn truncation_is_incomplete_not_an_error() {
        let bytes = encode_to_vec(&Frame::Submit(report(3)));
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(DecodeError::Incomplete { needed }) => {
                    assert!(needed > cut, "needed {needed} must exceed the cut {cut}")
                }
                other => panic!("cut {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_field_violations_are_malformed() {
        // A batch whose count field claims more reports than the payload
        // carries.
        let mut frame = encode_to_vec(&Frame::SubmitBatch(vec![report(1); 3]));
        let count_at = HEADER_LEN;
        frame[count_at..count_at + 4].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::Malformed(_))
        ));

        // A submit whose resend boolean is 7.
        let mut frame = encode_to_vec(&Frame::Submit(report(1)));
        let resend_at = frame.len() - 1;
        frame[resend_at] = 7;
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::Malformed(_))
        ));

        // Trailing bytes beyond the declared fields (payload length and
        // fields disagree).
        let mut frame = encode_to_vec(&Frame::Ack { accepted: 1 });
        frame.push(0);
        frame[8..12].copy_from_slice(&5u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::Malformed(_))
        ));

        // A stats reply whose text length field exceeds the ceiling, and
        // one whose bytes are not UTF-8.
        let mut frame = encode_to_vec(&Frame::StatsReply("abc".into()));
        frame[HEADER_LEN..HEADER_LEN + 4]
            .copy_from_slice(&((MAX_STATS_TEXT as u32 + 1).to_le_bytes()));
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::Malformed(_))
        ));
        let mut frame = encode_to_vec(&Frame::StatsReply("abc".into()));
        let text_at = HEADER_LEN + 4;
        frame[text_at] = 0xFF;
        assert!(matches!(
            decode_frame(&frame),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_policies_are_malformed() {
        let policy = sample_policy();
        let base = encode_to_vec(&Frame::SwitchPolicy(policy));
        // width = 0
        let mut zero_dim = base.clone();
        zero_dim[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&zero_dim),
            Err(DecodeError::Malformed(_))
        ));
        // width × height overflows u32
        let mut huge = base.clone();
        huge[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        huge[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&huge),
            Err(DecodeError::Malformed(_))
        ));
        // The allocation bomb: dimensions that fit u32 but whose cell
        // count would demand a multi-gigabyte graph allocation from a
        // ~50-byte frame. Must be refused before any allocation.
        let mut bomb = base.clone();
        bomb[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&65_535u32.to_le_bytes());
        bomb[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&65_535u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&bomb),
            Err(DecodeError::Malformed(_))
        ));
        // cell size NaN
        let mut nan = base.clone();
        nan[HEADER_LEN + 8..HEADER_LEN + 16].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(decode_frame(&nan), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn decoder_pops_frames_across_arbitrary_splits() {
        let mut stream = Vec::new();
        let frames = vec![
            Frame::Submit(report(1)),
            Frame::Ack { accepted: 1 },
            Frame::SubmitBatch((0..5).map(report).collect()),
            Frame::Shutdown,
        ];
        for f in &frames {
            encode_frame(f, &mut stream);
        }
        // Byte-by-byte delivery must produce the same sequence.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn read_frame_handles_eof_cases() {
        let bytes = encode_to_vec(&Frame::Ack { accepted: 3 });
        let mut cursor = std::io::Cursor::new(bytes.clone());
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some(Frame::Ack { accepted: 3 })
        );
        // Clean EOF at the boundary.
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // EOF inside a frame.
        let mut cursor = std::io::Cursor::new(bytes[..bytes.len() - 1].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ReadFrameError::UnexpectedEof)
        ));
    }
}
