//! [`IngestGateway`]: the threaded TCP front end over
//! [`IngestHandle`](panda_surveillance::ingest::IngestHandle).
//!
//! One acceptor thread takes connections; each connection gets its own
//! handler thread that decodes frames incrementally and answers every
//! client frame in order (the socket machinery is the shared
//! [`crate::listener`] core, also behind the shard router):
//!
//! * [`Frame::Submit`] / [`Frame::SubmitBatch`] → `try_submit` /
//!   `try_submit_batch` on the pipeline queue. Success is
//!   [`Frame::Ack`]`{accepted}`; a full queue is
//!   [`Frame::Nack`]`{Backpressure, accepted}` (for a batch, `accepted`
//!   counts the enqueued prefix) — the handler **never blocks on the
//!   queue**, so one slow pipeline cannot wedge every socket thread;
//! * [`Frame::Report`] → `try_submit_released`: an already-perturbed
//!   client-side release (the re-send protocol's output) lands verbatim;
//! * [`Frame::Fetch`] → answers with the user's oldest pending
//!   [`Frame::Assign`] / [`Frame::Resend`] from the gateway [`Mailbox`],
//!   or `Ack{0}` when none is pending;
//! * [`Frame::SwitchPolicy`] → on an operator-plane listener
//!   ([`GatewayConfig::allow_wire_policy_switch`]), builds a fresh
//!   `PolicyIndex` and routes it in-band through the queue; on the
//!   default data plane it is a protocol violation — untrusted reporters
//!   must not rewrite everyone's privacy policy. [`Frame::Assign`] and
//!   [`Frame::Resend`] are operator-plane too: they enqueue the
//!   server-initiated half of the re-send protocol into the mailbox;
//! * [`Frame::SubmitSequenced`] → only on a shard plane
//!   ([`GatewayConfig::shard_plane`]): upstream-stamped arrival sequence
//!   numbers key the RNG streams, so accepting them from untrusted
//!   clients would let a reporter choose its noise;
//! * [`Frame::Shutdown`] → acknowledged, then the connection closes;
//! * undecodable bytes, or a frame that is not valid on this plane →
//!   [`Frame::Nack`]`{Malformed}` and the connection closes. The
//!   pipeline is untouched — one hostile client never poisons the
//!   stream of the others.
//!
//! [`IngestGateway::shutdown`] stops accepting, lets every handler finish
//! the frames it has already received (replies included), and joins all
//! threads. Reports the gateway has acked are in the pipeline queue by
//! definition, so `gateway.shutdown()` followed by `pipeline.shutdown()`
//! loses no acknowledged report.

use crate::listener::{CoreStats, Disposition, FrameService, Listener};
use crate::mailbox::{Mailbox, ServerMessage};
use crate::wire::{clamp_stats_text, encode_frame, Frame, NackReason};
use panda_check::ordered::{rank, OrderedMutex};
use panda_core::PolicyIndex;
use panda_obs::{Counter, Registry};
use panda_surveillance::ingest::{IngestHandle, TrySubmitError, TrySwitchError};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables of a gateway; the defaults suit loopback and LAN deployments.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Socket read buffer handed to each connection handler.
    pub read_buf: usize,
    /// How often an idle handler wakes to check for gateway shutdown (the
    /// socket read timeout).
    pub poll_interval: Duration,
    /// How long a reply write may stall before the connection is dropped
    /// (a client that stops reading its acks cannot wedge shutdown).
    pub write_timeout: Duration,
    /// Drop a connection after this long without receiving any bytes.
    /// Idle sockets hold a [`GatewayConfig::max_connections`] slot and a
    /// handler thread; without a deadline, an attacker could pin the whole
    /// cap with silent connections and starve legitimate clients. Clients
    /// that outlive the deadline simply reconnect.
    pub idle_timeout: Duration,
    /// Ceiling on concurrently-served connections. Each connection costs
    /// an OS thread plus read/decode buffers, so an unbounded accept loop
    /// is a resource-exhaustion DoS against an open ingest port; at the
    /// cap, further connections are accepted and immediately dropped
    /// (counted in [`GatewayStats::rejected_connections`]) until one
    /// closes.
    pub max_connections: usize,
    /// Whether [`Frame::SwitchPolicy`], [`Frame::Assign`] and
    /// [`Frame::Resend`] are honoured from this listener.
    ///
    /// **Off by default**: a policy switch weakens or changes the privacy
    /// guarantee of every later report from *every* client, and
    /// assignments/re-send requests impersonate the server half of the
    /// re-send protocol — privileged control operations all. An open
    /// ingest port serving untrusted reporters must refuse them (the
    /// gateway answers `Nack{Malformed}` and drops the connection, like
    /// any other protocol violation). Enable only on a listener reserved
    /// for the trusted operator plane (loopback, an authenticated
    /// sidecar, or a firewalled admin port).
    pub allow_wire_policy_switch: bool,
    /// Whether [`Frame::SubmitSequenced`] is honoured from this listener.
    ///
    /// **Off by default**: the stamped sequence numbers key the
    /// per-report RNG streams, so a client that chooses them chooses its
    /// own noise. Enable only on a shard node's listener serving a
    /// trusted routing tier ([`GatewayConfig::shard_plane`]).
    pub allow_sequenced_submit: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            read_buf: 64 * 1024,
            poll_interval: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_connections: 1024,
            allow_wire_policy_switch: false,
            allow_sequenced_submit: false,
        }
    }
}

impl GatewayConfig {
    /// The default config with [`GatewayConfig::allow_wire_policy_switch`]
    /// enabled — for operator-plane listeners.
    #[must_use]
    pub fn operator() -> Self {
        GatewayConfig {
            allow_wire_policy_switch: true,
            ..Default::default()
        }
    }

    /// The config for a shard node's listener serving a trusted routing
    /// tier: sequenced submission **and** operator frames are honoured
    /// (the router forwards policy broadcasts down the same link).
    #[must_use]
    pub fn shard_plane() -> Self {
        GatewayConfig {
            allow_wire_policy_switch: true,
            allow_sequenced_submit: true,
            ..Default::default()
        }
    }
}

/// Lifetime counters of a gateway, snapshotted by [`IngestGateway::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections dropped at the [`GatewayConfig::max_connections`] cap.
    pub rejected_connections: u64,
    /// Connections that ended non-cleanly: read/write error, idle
    /// timeout, or a protocol violation (a clean `Shutdown` or EOF does
    /// not count).
    pub dropped_connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Reports enqueued into the pipeline (and therefore acked).
    pub reports_enqueued: u64,
    /// `Nack{Backpressure}` replies sent.
    pub backpressure_nacks: u64,
    /// `Nack{Closed}` replies sent.
    pub closed_nacks: u64,
    /// `Nack{Malformed}` replies sent (each closes its connection).
    pub malformed_nacks: u64,
    /// In-band policy switches applied.
    pub policy_switches: u64,
    /// Mailbox fetches answered with a pending [`ServerMessage`].
    pub fetches_served: u64,
}

/// Service-level counters (socket-level ones live in [`CoreStats`]).
#[derive(Default)]
struct ServiceStats {
    reports_enqueued: Counter,
    backpressure_nacks: Counter,
    closed_nacks: Counter,
    policy_switches: Counter,
    fetches_served: Counter,
}

impl ServiceStats {
    fn register_into(&self, registry: &Registry) {
        registry.register_counter(
            "panda_gateway_reports_enqueued_total",
            &self.reports_enqueued,
        );
        registry.register_counter(
            "panda_gateway_backpressure_nacks_total",
            &self.backpressure_nacks,
        );
        registry.register_counter("panda_gateway_closed_nacks_total", &self.closed_nacks);
        registry.register_counter("panda_gateway_policy_switches_total", &self.policy_switches);
        registry.register_counter("panda_gateway_fetches_served_total", &self.fetches_served);
    }
}

/// One connection's submission counters, snapshotted by
/// [`IngestGateway::connection_stats`] — the router's per-downstream
/// health view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Reports this connection has had accepted (acked into the queue).
    pub accepted: u64,
    /// Nack replies this connection has received.
    pub nacked: u64,
    /// Whether the connection is still being served.
    pub live: bool,
}

/// Live per-connection counters, registered at accept. `live` stays a
/// plain `AtomicBool`: it is functional state (registry pruning), not
/// telemetry, so it must survive `--cfg panda_obs_off`.
#[derive(Default)]
struct ConnCounters {
    accepted: Counter,
    nacked: Counter,
    live: AtomicBool,
}

/// The gateway's [`FrameService`]: frames drive the ingest pipeline.
struct PipelineService {
    ingest: IngestHandle,
    config: GatewayConfig,
    core: Arc<CoreStats>,
    stats: Arc<ServiceStats>,
    mailbox: Arc<Mailbox>,
    connections: OrderedMutex<Vec<Arc<ConnCounters>>>,
    /// This gateway's own scrape scope. Each gateway owns its own
    /// registry (two listeners over one pipeline must not collide);
    /// scrapes merge it with the pipeline's registry snapshot.
    registry: Arc<Registry>,
}

/// A running TCP ingest gateway; dropping it shuts it down.
pub struct IngestGateway {
    addr: SocketAddr,
    listener: Listener<PipelineService>,
    service: Arc<PipelineService>,
}

impl IngestGateway {
    /// Binds on `addr` (use port 0 for an ephemeral port) and starts
    /// accepting clients that feed `ingest`, under default
    /// [`GatewayConfig`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, ingest: IngestHandle) -> std::io::Result<Self> {
        Self::bind_with(addr, ingest, GatewayConfig::default())
    }

    /// [`IngestGateway::bind`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        ingest: IngestHandle,
        config: GatewayConfig,
    ) -> std::io::Result<Self> {
        Self::bind_shared(addr, ingest, config, Arc::new(Mailbox::new()))
    }

    /// [`IngestGateway::bind_with`] with an explicit [`Mailbox`], so a
    /// data-plane and an operator-plane listener over the same pipeline
    /// can share one: the operator enqueues [`Frame::Assign`] /
    /// [`Frame::Resend`] on its plane, reporters poll [`Frame::Fetch`] on
    /// theirs.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_shared(
        addr: impl ToSocketAddrs,
        ingest: IngestHandle,
        config: GatewayConfig,
        mailbox: Arc<Mailbox>,
    ) -> std::io::Result<Self> {
        let core = Arc::new(CoreStats::default());
        let stats = Arc::new(ServiceStats::default());
        let registry = Arc::new(Registry::new());
        core.register_into(&registry, "gateway");
        stats.register_into(&registry);
        let service = Arc::new(PipelineService {
            ingest,
            config: config.clone(),
            core: Arc::clone(&core),
            stats,
            mailbox,
            connections: OrderedMutex::new(rank::GATEWAY_CONNECTIONS, Vec::new()),
            registry,
        });
        let listener = Listener::bind(addr, Arc::clone(&service), config, core, "panda-gateway")?;
        let addr = listener.local_addr();
        Ok(IngestGateway {
            addr,
            listener,
            service,
        })
    }

    /// The bound address (with the resolved port when bound on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The mailbox backing this gateway's [`Frame::Fetch`] /
    /// [`Frame::Assign`] / [`Frame::Resend`] handling.
    pub fn mailbox(&self) -> Arc<Mailbox> {
        Arc::clone(&self.service.mailbox)
    }

    /// A snapshot of the lifetime counters — a thin read of the same
    /// `panda-obs` cells the scrape plane exposes (all zero when the
    /// workspace is built with `--cfg panda_obs_off`).
    pub fn stats(&self) -> GatewayStats {
        let core = &self.service.core;
        let stats = &self.service.stats;
        GatewayStats {
            connections: core.connections.get(),
            rejected_connections: core.rejected_connections.get(),
            dropped_connections: core.dropped_connections.get(),
            frames: core.frames.get(),
            reports_enqueued: stats.reports_enqueued.get(),
            backpressure_nacks: stats.backpressure_nacks.get(),
            closed_nacks: stats.closed_nacks.get(),
            malformed_nacks: core.malformed_nacks.get(),
            policy_switches: stats.policy_switches.get(),
            fetches_served: stats.fetches_served.get(),
        }
    }

    /// The deterministic text exposition of this gateway's metrics merged
    /// with its pipeline's — the same text [`Frame::StatsRequest`] returns
    /// over the wire on an operator/shard plane.
    pub fn metrics_dump(&self) -> String {
        self.service.metrics_text()
    }

    /// Per-connection submission counters: every connection still being
    /// served, plus those that closed since the last accept pruned the
    /// registry. The router reads this (with
    /// [`IngestHandle::queue_len`](panda_surveillance::ingest::IngestHandle::queue_len))
    /// as its downstream health view.
    pub fn connection_stats(&self) -> Vec<ConnectionStats> {
        self.service
            .connections
            .lock()
            .iter()
            .map(|c| ConnectionStats {
                accepted: c.accepted.get(),
                nacked: c.nacked.get(),
                live: c.live.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Graceful shutdown: stop accepting, drain every live connection
    /// (frames already received are processed and answered), join all
    /// threads, and return the final counters. Every report acked before
    /// this returns sits in the pipeline queue — follow with
    /// `IngestPipeline::shutdown()` to land them all.
    pub fn shutdown(mut self) -> GatewayStats {
        self.listener.shutdown_in_place();
        self.stats()
    }
}

impl FrameService for PipelineService {
    type Conn = Arc<ConnCounters>;

    fn open(&self) -> Arc<ConnCounters> {
        let counters = Arc::new(ConnCounters {
            live: AtomicBool::new(true),
            ..Default::default()
        });
        let mut registry = self.connections.lock();
        // Prune entries whose connection has closed, so a long-lived
        // gateway's registry tracks churn instead of history.
        registry.retain(|c| c.live.load(Ordering::Relaxed));
        registry.push(Arc::clone(&counters));
        counters
    }

    /// Which frame tags this listener is willing to *decode*: submissions
    /// (pending and released), fetch polls and clean shutdown always;
    /// policy switches, assignments, re-send requests and stats scrapes
    /// only on the operator plane; sequenced submission only on a shard
    /// plane. Everything else — server → client tags, unknown tags — is
    /// refused at header cost.
    fn permits(&self, t: u8) -> bool {
        use crate::wire::tag;
        matches!(
            t,
            tag::SUBMIT | tag::SUBMIT_BATCH | tag::SHUTDOWN | tag::REPORT | tag::FETCH
        ) || (self.config.allow_wire_policy_switch
            && matches!(
                t,
                tag::SWITCH_POLICY | tag::ASSIGN | tag::RESEND | tag::STATS_REQUEST
            ))
            || (self.config.allow_sequenced_submit && t == tag::SUBMIT_SEQUENCED)
    }

    fn handle(
        &self,
        conn: &mut Arc<ConnCounters>,
        frame: Frame,
        replies: &mut Vec<u8>,
    ) -> Disposition {
        match frame {
            Frame::Submit(report) => {
                let outcome = match self.ingest.try_submit(report) {
                    Ok(()) => Ok(1),
                    Err(TrySubmitError::Full(_)) => Err((NackReason::Backpressure, 0)),
                    Err(TrySubmitError::Closed(_)) => Err((NackReason::Closed, 0)),
                };
                self.reply_submission(conn, 1, outcome, replies)
            }
            Frame::SubmitBatch(reports) => {
                let outcome = match self.ingest.try_submit_batch(&reports) {
                    Ok(accepted) if accepted == reports.len() => Ok(accepted),
                    Ok(accepted) => Err((NackReason::Backpressure, accepted)),
                    Err(_) => Err((NackReason::Closed, 0)),
                };
                self.reply_submission(conn, reports.len(), outcome, replies)
            }
            Frame::Report(report) => {
                let outcome = match self.ingest.try_submit_released(&[report]) {
                    Ok(1) => Ok(1),
                    Ok(_) => Err((NackReason::Backpressure, 0)),
                    Err(_) => Err((NackReason::Closed, 0)),
                };
                self.reply_submission(conn, 1, outcome, replies)
            }
            Frame::SubmitSequenced(reports) => {
                if !self.config.allow_sequenced_submit {
                    return self.violation(conn, replies);
                }
                let outcome = match self.ingest.try_submit_sequenced(&reports) {
                    Ok(accepted) if accepted == reports.len() => Ok(accepted),
                    Ok(accepted) => Err((NackReason::Backpressure, accepted)),
                    Err(_) => Err((NackReason::Closed, 0)),
                };
                self.reply_submission(conn, reports.len(), outcome, replies)
            }
            Frame::Fetch { user } => {
                let reply = match self.mailbox.fetch(user) {
                    Some(msg) => {
                        self.stats.fetches_served.inc();
                        msg.into_frame()
                    }
                    None => Frame::Ack { accepted: 0 },
                };
                encode_frame(&reply, replies);
                Disposition::Continue
            }
            Frame::Assign(assignment) => {
                if !self.config.allow_wire_policy_switch {
                    return self.violation(conn, replies);
                }
                self.mailbox
                    .push(assignment.user, ServerMessage::Assign(assignment));
                encode_frame(&Frame::Ack { accepted: 0 }, replies);
                Disposition::Continue
            }
            Frame::Resend(request) => {
                if !self.config.allow_wire_policy_switch {
                    return self.violation(conn, replies);
                }
                self.mailbox
                    .push(request.user, ServerMessage::Resend(request));
                encode_frame(&Frame::Ack { accepted: 0 }, replies);
                Disposition::Continue
            }
            Frame::SwitchPolicy(policy) => {
                if !self.config.allow_wire_policy_switch {
                    // A policy switch changes the privacy guarantee for
                    // every client; on a data-plane listener it is a
                    // protocol violation, refused like any other hostile
                    // frame.
                    return self.violation(conn, replies);
                }
                // `try_switch_policy`, not the blocking variant: the
                // handler contract is that socket threads never park on
                // the queue. The operator client retries on backpressure
                // like a submit.
                let reply = match self
                    .ingest
                    .try_switch_policy(Arc::new(PolicyIndex::new(policy)))
                {
                    Ok(()) => {
                        self.stats.policy_switches.inc();
                        Frame::Ack { accepted: 0 }
                    }
                    Err(TrySwitchError::Full(_)) => {
                        self.stats.backpressure_nacks.inc();
                        conn.nacked.inc();
                        Frame::Nack {
                            reason: NackReason::Backpressure,
                            accepted: 0,
                        }
                    }
                    Err(TrySwitchError::Closed(_)) => {
                        self.stats.closed_nacks.inc();
                        conn.nacked.inc();
                        Frame::Nack {
                            reason: NackReason::Closed,
                            accepted: 0,
                        }
                    }
                };
                encode_frame(&reply, replies);
                Disposition::Continue
            }
            Frame::StatsRequest => {
                if !self.config.allow_wire_policy_switch {
                    // Stats expose queue depths and per-stage health —
                    // operator-plane intelligence an open ingest port
                    // must not hand to untrusted reporters.
                    return self.violation(conn, replies);
                }
                encode_frame(&Frame::StatsReply(self.metrics_text()), replies);
                Disposition::Continue
            }
            Frame::Shutdown => {
                encode_frame(&Frame::Ack { accepted: 0 }, replies);
                Disposition::Close
            }
            // Server → client frames arriving at the server are a
            // protocol violation: refuse and close, exactly like
            // undecodable bytes.
            Frame::Ack { .. } | Frame::Nack { .. } | Frame::StatsReply(_) => {
                self.violation(conn, replies)
            }
        }
    }

    fn closed(&self, conn: Arc<ConnCounters>, _dropped: bool) {
        conn.live.store(false, Ordering::Relaxed);
    }
}

impl PipelineService {
    /// Encodes the Ack/Nack for a submission of `len` reports whose
    /// try-path accepted `Ok(n)` or refused with a reason and an accepted
    /// prefix, updating gateway and per-connection counters.
    fn reply_submission(
        &self,
        conn: &Arc<ConnCounters>,
        _len: usize,
        outcome: Result<usize, (NackReason, usize)>,
        replies: &mut Vec<u8>,
    ) -> Disposition {
        let reply = match outcome {
            Ok(accepted) => {
                self.count_accepted(conn, accepted);
                Frame::Ack {
                    accepted: accepted as u32,
                }
            }
            Err((reason, accepted)) => {
                self.count_accepted(conn, accepted);
                match reason {
                    NackReason::Backpressure => self.stats.backpressure_nacks.inc(),
                    _ => self.stats.closed_nacks.inc(),
                };
                conn.nacked.inc();
                Frame::Nack {
                    reason,
                    accepted: accepted as u32,
                }
            }
        };
        encode_frame(&reply, replies);
        Disposition::Continue
    }

    fn count_accepted(&self, conn: &Arc<ConnCounters>, accepted: usize) {
        if accepted > 0 {
            self.stats.reports_enqueued.add(accepted as u64);
            conn.accepted.add(accepted as u64);
        }
    }

    /// The merged exposition text served to scrapes: the gateway's own
    /// frame/connection metrics joined with the pipeline's ingest-side
    /// registry (disjoint name prefixes, so the merge never clashes).
    fn metrics_text(&self) -> String {
        let mut snap = self.registry.snapshot();
        snap.merge(&self.ingest.metrics().snapshot());
        clamp_stats_text(snap.render())
    }

    /// A protocol violation on this plane: `Nack{Malformed}` and drop.
    fn violation(&self, conn: &Arc<ConnCounters>, replies: &mut Vec<u8>) -> Disposition {
        self.core.malformed_nacks.inc();
        conn.nacked.inc();
        encode_frame(
            &Frame::Nack {
                reason: NackReason::Malformed,
                accepted: 0,
            },
            replies,
        );
        Disposition::Drop
    }
}
