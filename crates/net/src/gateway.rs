//! [`IngestGateway`]: the threaded TCP front end over
//! [`IngestHandle`](panda_surveillance::ingest::IngestHandle).
//!
//! One acceptor thread takes connections; each connection gets its own
//! handler thread that decodes frames incrementally and answers every
//! client frame in order:
//!
//! * [`Frame::Submit`] / [`Frame::SubmitBatch`] → `try_submit` /
//!   `try_submit_batch` on the pipeline queue. Success is
//!   [`Frame::Ack`]`{accepted}`; a full queue is
//!   [`Frame::Nack`]`{Backpressure, accepted}` (for a batch, `accepted`
//!   counts the enqueued prefix) — the handler **never blocks on the
//!   queue**, so one slow pipeline cannot wedge every socket thread;
//! * [`Frame::SwitchPolicy`] → on an operator-plane listener
//!   ([`GatewayConfig::allow_wire_policy_switch`]), builds a fresh
//!   `PolicyIndex` and routes it in-band through the queue; on the
//!   default data plane it is a protocol violation — untrusted reporters
//!   must not rewrite everyone's privacy policy;
//! * [`Frame::Shutdown`] → acknowledged, then the connection closes;
//! * undecodable bytes, or a frame that is not valid client → server
//!   traffic → [`Frame::Nack`]`{Malformed}` and the connection closes.
//!   The pipeline is untouched — one hostile client never poisons the
//!   stream of the others.
//!
//! [`IngestGateway::shutdown`] stops accepting, lets every handler finish
//! the frames it has already received (replies included), and joins all
//! threads. Reports the gateway has acked are in the pipeline queue by
//! definition, so `gateway.shutdown()` followed by `pipeline.shutdown()`
//! loses no acknowledged report.

use crate::wire::{encode_frame, Frame, FrameDecoder, NackReason};
use panda_core::PolicyIndex;
use panda_surveillance::ingest::{IngestHandle, TrySubmitError, TrySwitchError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tunables of a gateway; the defaults suit loopback and LAN deployments.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Socket read buffer handed to each connection handler.
    pub read_buf: usize,
    /// How often an idle handler wakes to check for gateway shutdown (the
    /// socket read timeout).
    pub poll_interval: Duration,
    /// How long a reply write may stall before the connection is dropped
    /// (a client that stops reading its acks cannot wedge shutdown).
    pub write_timeout: Duration,
    /// Drop a connection after this long without receiving any bytes.
    /// Idle sockets hold a [`GatewayConfig::max_connections`] slot and a
    /// handler thread; without a deadline, an attacker could pin the whole
    /// cap with silent connections and starve legitimate clients. Clients
    /// that outlive the deadline simply reconnect.
    pub idle_timeout: Duration,
    /// Ceiling on concurrently-served connections. Each connection costs
    /// an OS thread plus read/decode buffers, so an unbounded accept loop
    /// is a resource-exhaustion DoS against an open ingest port; at the
    /// cap, further connections are accepted and immediately dropped
    /// (counted in [`GatewayStats::rejected_connections`]) until one
    /// closes.
    pub max_connections: usize,
    /// Whether [`Frame::SwitchPolicy`] is honoured from this listener.
    ///
    /// **Off by default**: a policy switch weakens or changes the privacy
    /// guarantee of every later report from *every* client, so it is a
    /// privileged control operation — an open ingest port serving
    /// untrusted reporters must refuse it (the gateway answers
    /// `Nack{Malformed}` and drops the connection, like any other
    /// protocol violation). Enable only on a listener reserved for the
    /// trusted operator plane (loopback, an authenticated sidecar, or a
    /// firewalled admin port).
    pub allow_wire_policy_switch: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            read_buf: 64 * 1024,
            poll_interval: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_connections: 1024,
            allow_wire_policy_switch: false,
        }
    }
}

impl GatewayConfig {
    /// The default config with [`GatewayConfig::allow_wire_policy_switch`]
    /// enabled — for operator-plane listeners.
    #[must_use]
    pub fn operator() -> Self {
        GatewayConfig {
            allow_wire_policy_switch: true,
            ..Default::default()
        }
    }
}

/// Lifetime counters of a gateway, snapshotted by [`IngestGateway::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections dropped at the [`GatewayConfig::max_connections`] cap.
    pub rejected_connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Reports enqueued into the pipeline (and therefore acked).
    pub reports_enqueued: u64,
    /// `Nack{Backpressure}` replies sent.
    pub backpressure_nacks: u64,
    /// `Nack{Closed}` replies sent.
    pub closed_nacks: u64,
    /// `Nack{Malformed}` replies sent (each closes its connection).
    pub malformed_nacks: u64,
    /// In-band policy switches applied.
    pub policy_switches: u64,
}

#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    rejected_connections: AtomicU64,
    frames: AtomicU64,
    reports_enqueued: AtomicU64,
    backpressure_nacks: AtomicU64,
    closed_nacks: AtomicU64,
    malformed_nacks: AtomicU64,
    policy_switches: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> GatewayStats {
        GatewayStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            reports_enqueued: self.reports_enqueued.load(Ordering::Relaxed),
            backpressure_nacks: self.backpressure_nacks.load(Ordering::Relaxed),
            closed_nacks: self.closed_nacks.load(Ordering::Relaxed),
            malformed_nacks: self.malformed_nacks.load(Ordering::Relaxed),
            policy_switches: self.policy_switches.load(Ordering::Relaxed),
        }
    }
}

/// A running TCP ingest gateway; dropping it shuts it down.
pub struct IngestGateway {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<StatsInner>,
}

impl IngestGateway {
    /// Binds on `addr` (use port 0 for an ephemeral port) and starts
    /// accepting clients that feed `ingest`, under default
    /// [`GatewayConfig`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, ingest: IngestHandle) -> std::io::Result<Self> {
        Self::bind_with(addr, ingest, GatewayConfig::default())
    }

    /// [`IngestGateway::bind`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        ingest: IngestHandle,
        config: GatewayConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(StatsInner::default());
        let acceptor = {
            let (stop, handlers, stats) =
                (Arc::clone(&stop), Arc::clone(&handlers), Arc::clone(&stats));
            std::thread::Builder::new()
                .name("panda-gateway-accept".into())
                .spawn(move || {
                    accept_loop(listener, ingest, config, stop, handlers, stats);
                })
                .expect("spawn gateway acceptor")
        };
        Ok(IngestGateway {
            addr,
            stop,
            acceptor: Some(acceptor),
            handlers,
            stats,
        })
    }

    /// The bound address (with the resolved port when bound on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain every live connection
    /// (frames already received are processed and answered), join all
    /// threads, and return the final counters. Every report acked before
    /// this returns sits in the pipeline queue — follow with
    /// `IngestPipeline::shutdown()` to land them all.
    pub fn shutdown(mut self) -> GatewayStats {
        self.shutdown_in_place();
        self.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor polls a non-blocking listener, so it observes the
        // flag within one poll interval (no wake-up connection needed —
        // connecting could itself fail under fd exhaustion).
        acceptor.join().expect("gateway acceptor panicked");
        let handlers =
            std::mem::take(&mut *self.handlers.lock().expect("handler registry poisoned"));
        for h in handlers {
            h.join().expect("gateway connection handler panicked");
        }
    }
}

impl Drop for IngestGateway {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: TcpListener,
    ingest: IngestHandle,
    config: GatewayConfig,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    stats: Arc<StatsInner>,
) {
    // Polling a non-blocking listener (instead of parking in `accept`)
    // keeps shutdown independent of network traffic: the stop flag is
    // observed within one poll interval even under fd exhaustion, when a
    // wake-up connection could not be made. The idle poll is 1 ms — cheap
    // on an idle acceptor thread, and small enough not to tax connect
    // latency or per-connection benchmarks.
    const ACCEPT_POLL: Duration = Duration::from_millis(1);
    listener
        .set_nonblocking(true)
        .expect("set gateway listener non-blocking");
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient accept failures (per-connection resets, fd
            // exhaustion) must not kill the loop — and must not spin it
            // hot either; the longer pause gives the fd table room to
            // recover.
            Err(_) => {
                std::thread::sleep(config.poll_interval);
                continue;
            }
        };
        // Some platforms hand the accepted socket the listener's
        // non-blocking flag; the handler's read-timeout logic expects a
        // blocking stream.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let mut registry = handlers.lock().expect("handler registry poisoned");
        // Reap finished handlers as connections churn, so a long-lived
        // gateway holds registry entries (and thread stacks) only for
        // live connections. Finished threads join instantly.
        let mut live = Vec::with_capacity(registry.len() + 1);
        for h in registry.drain(..) {
            if h.is_finished() {
                h.join().expect("gateway connection handler panicked");
            } else {
                live.push(h);
            }
        }
        // The connection cap: a thread + buffers per connection must not
        // be mintable without bound by whoever can reach the port.
        if live.len() >= config.max_connections.max(1) {
            stats.rejected_connections.fetch_add(1, Ordering::Relaxed);
            *registry = live;
            drop(registry);
            drop(stream);
            continue;
        }
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let handler = {
            let (ingest, stop, stats, config) = (
                ingest.clone(),
                Arc::clone(&stop),
                Arc::clone(&stats),
                config.clone(),
            );
            std::thread::Builder::new()
                .name("panda-gateway-conn".into())
                .spawn(move || serve_connection(stream, &ingest, &config, &stop, &stats))
                .expect("spawn gateway connection handler")
        };
        live.push(handler);
        *registry = live;
    }
}

/// What a frame asks the connection to do next.
enum Disposition {
    /// Keep serving.
    Continue,
    /// Close after flushing replies (clean `Shutdown`, protocol
    /// violation, or a decode error).
    Close,
}

fn serve_connection(
    mut stream: TcpStream,
    ingest: &IngestHandle,
    config: &GatewayConfig,
    stop: &AtomicBool,
    stats: &StatsInner,
) {
    // Per-frame acks on a stream of small frames need low latency;
    // timeouts keep both directions from wedging shutdown.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; config.read_buf.max(1)];
    let mut replies = Vec::new();
    let mut eof = false;
    let mut last_bytes = std::time::Instant::now();
    loop {
        if !eof {
            match stream.read(&mut buf) {
                Ok(0) => eof = true,
                Ok(n) => {
                    decoder.feed(&buf[..n]);
                    last_bytes = std::time::Instant::now();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        // Gateway shutdown: drain what already arrived,
                        // reply, then close.
                        eof = true;
                    } else if last_bytes.elapsed() >= config.idle_timeout {
                        // A silent socket must not pin a connection slot
                        // forever; drop it (the client reconnects).
                        break;
                    } else {
                        continue;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        replies.clear();
        let mut disposition = Disposition::Continue;
        loop {
            // Privilege is enforced at the tag, before payload decode: a
            // data-plane client cannot make the server build a policy
            // graph (or parse any other privileged/server-bound payload)
            // just to have it refused.
            match decoder.next_frame_permitted(|t| tag_permitted(t, config)) {
                Ok(Some(frame)) => {
                    stats.frames.fetch_add(1, Ordering::Relaxed);
                    disposition = handle_frame(frame, ingest, config, stats, &mut replies);
                    if matches!(disposition, Disposition::Close) {
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing is lost: refuse and drop the connection. The
                    // pipeline never saw the bytes, so other clients are
                    // unaffected.
                    stats.malformed_nacks.fetch_add(1, Ordering::Relaxed);
                    encode_frame(
                        &Frame::Nack {
                            reason: NackReason::Malformed,
                            accepted: 0,
                        },
                        &mut replies,
                    );
                    disposition = Disposition::Close;
                    break;
                }
            }
        }
        if !replies.is_empty() && stream.write_all(&replies).is_err() {
            break;
        }
        if matches!(disposition, Disposition::Close) || eof {
            break;
        }
        // A client that keeps the socket busy must not outlive shutdown:
        // the flag is re-checked here, not only on idle read timeouts.
        // One more iteration drains frames already buffered, then exits.
        if stop.load(Ordering::SeqCst) {
            eof = true;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Which frame tags this listener is willing to *decode*: submissions and
/// clean shutdown always; a policy switch only on the operator plane.
/// Everything else — server → client tags, unknown tags — is refused at
/// header cost.
fn tag_permitted(t: u8, config: &GatewayConfig) -> bool {
    use crate::wire::tag;
    matches!(t, tag::SUBMIT | tag::SUBMIT_BATCH | tag::SHUTDOWN)
        || (t == tag::SWITCH_POLICY && config.allow_wire_policy_switch)
}

/// Applies one decoded frame to the pipeline and queues the reply.
fn handle_frame(
    frame: Frame,
    ingest: &IngestHandle,
    config: &GatewayConfig,
    stats: &StatsInner,
    replies: &mut Vec<u8>,
) -> Disposition {
    match frame {
        Frame::Submit(report) => {
            let reply = match ingest.try_submit(report) {
                Ok(()) => {
                    stats.reports_enqueued.fetch_add(1, Ordering::Relaxed);
                    Frame::Ack { accepted: 1 }
                }
                Err(TrySubmitError::Full(_)) => {
                    stats.backpressure_nacks.fetch_add(1, Ordering::Relaxed);
                    Frame::Nack {
                        reason: NackReason::Backpressure,
                        accepted: 0,
                    }
                }
                Err(TrySubmitError::Closed(_)) => {
                    stats.closed_nacks.fetch_add(1, Ordering::Relaxed);
                    Frame::Nack {
                        reason: NackReason::Closed,
                        accepted: 0,
                    }
                }
            };
            encode_frame(&reply, replies);
            Disposition::Continue
        }
        Frame::SubmitBatch(reports) => {
            let reply = match ingest.try_submit_batch(&reports) {
                Ok(accepted) => {
                    stats
                        .reports_enqueued
                        .fetch_add(accepted as u64, Ordering::Relaxed);
                    if accepted == reports.len() {
                        Frame::Ack {
                            accepted: accepted as u32,
                        }
                    } else {
                        stats.backpressure_nacks.fetch_add(1, Ordering::Relaxed);
                        Frame::Nack {
                            reason: NackReason::Backpressure,
                            accepted: accepted as u32,
                        }
                    }
                }
                Err(_) => {
                    stats.closed_nacks.fetch_add(1, Ordering::Relaxed);
                    Frame::Nack {
                        reason: NackReason::Closed,
                        accepted: 0,
                    }
                }
            };
            encode_frame(&reply, replies);
            Disposition::Continue
        }
        Frame::SwitchPolicy(policy) => {
            if !config.allow_wire_policy_switch {
                // A policy switch changes the privacy guarantee for every
                // client; on a data-plane listener it is a protocol
                // violation, refused like any other hostile frame.
                stats.malformed_nacks.fetch_add(1, Ordering::Relaxed);
                encode_frame(
                    &Frame::Nack {
                        reason: NackReason::Malformed,
                        accepted: 0,
                    },
                    replies,
                );
                return Disposition::Close;
            }
            // `try_switch_policy`, not the blocking variant: the handler
            // contract is that socket threads never park on the queue.
            // The operator client retries on backpressure like a submit.
            let reply = match ingest.try_switch_policy(Arc::new(PolicyIndex::new(policy))) {
                Ok(()) => {
                    stats.policy_switches.fetch_add(1, Ordering::Relaxed);
                    Frame::Ack { accepted: 0 }
                }
                Err(TrySwitchError::Full(_)) => {
                    stats.backpressure_nacks.fetch_add(1, Ordering::Relaxed);
                    Frame::Nack {
                        reason: NackReason::Backpressure,
                        accepted: 0,
                    }
                }
                Err(TrySwitchError::Closed(_)) => {
                    stats.closed_nacks.fetch_add(1, Ordering::Relaxed);
                    Frame::Nack {
                        reason: NackReason::Closed,
                        accepted: 0,
                    }
                }
            };
            encode_frame(&reply, replies);
            Disposition::Continue
        }
        Frame::Shutdown => {
            encode_frame(&Frame::Ack { accepted: 0 }, replies);
            Disposition::Close
        }
        // Server → client frames arriving at the server are a protocol
        // violation: refuse and close, exactly like undecodable bytes.
        Frame::Ack { .. }
        | Frame::Nack { .. }
        | Frame::Report(_)
        | Frame::Assign(_)
        | Frame::Resend(_) => {
            stats.malformed_nacks.fetch_add(1, Ordering::Relaxed);
            encode_frame(
                &Frame::Nack {
                    reason: NackReason::Malformed,
                    accepted: 0,
                },
                replies,
            );
            Disposition::Close
        }
    }
}
