//! [`ShardRouter`]: the routing tier in front of per-shard ingest nodes.
//!
//! Clients speak the exact same framed protocol to a router as to a
//! single [`crate::IngestGateway`] — the sharded topology is invisible
//! from outside. Behind the listener, the router:
//!
//! * **stamps** every stream position with a cluster-wide arrival
//!   sequence number (one `AtomicU64`), reserved on first sight and kept
//!   across retries, so the per-report RNG streams — and therefore the
//!   released cells — are identical to the single-process pipeline's for
//!   the same arrival order;
//! * **splits** each `Submit`/`SubmitBatch`/`Report` by
//!   [`shard_of`](panda_surveillance::shard_of) — the same hash the
//!   monolithic server stripes its shards with — and fans the stamped
//!   sub-batches to per-shard backends ([`ShardBackend`]): in-process
//!   [`IngestNode`]s or remote shard gateways over
//!   [`GatewayClient::submit_sequenced`];
//! * **accounts honestly**: each backend accepts a prefix of its
//!   sub-batch, and the client is acked exactly the contiguous accepted
//!   prefix of *its stream*. A report whose shard backpressured is nacked
//!   and retried by the client; on retry, positions that already made it
//!   into some shard's queue are skipped (their reserved stamp is kept,
//!   they are never forwarded twice), so nothing is lost or
//!   double-counted even when shards fill unevenly;
//! * **broadcasts** operator-plane [`Frame::SwitchPolicy`]
//!   all-or-nothing: every backend must take the new policy, or the ones
//!   that did are rolled back to the previous one and the operator is
//!   nacked — the cluster never splits into shards releasing under
//!   different policies because of one full queue;
//! * **carries the re-send protocol**: operator-pushed
//!   [`Frame::Assign`] / [`Frame::Resend`] land in the router's
//!   [`Mailbox`] for the user's next data-plane [`Frame::Fetch`], and the
//!   client's re-released reports come back as [`Frame::Report`] frames
//!   routed like any other submission.
//!
//! ## Determinism caveat
//!
//! One client connection is one stream: its positions get contiguous
//! ascending stamps and land byte-identically to in-process submission in
//! the same order (CI-enforced at N = 1, 2 and 4 nodes, including under
//! mid-stream backpressure). Across *concurrent* connections the stamp
//! interleaving is decided by arrival at the router — exactly as
//! concurrent in-process producers interleave on the pipeline queue.

use crate::client::GatewayClient;
use crate::gateway::GatewayConfig;
use crate::listener::{CoreStats, Disposition, FrameService, Listener};
use crate::mailbox::{Mailbox, ServerMessage};
use crate::wire::{clamp_stats_text, encode_frame, Frame, NackReason, MAX_REPORTS_PER_FRAME};
use panda_check::ordered::{rank, OrderedMutex};
use panda_core::LocationPolicyGraph;
use panda_core::PolicyIndex;
use panda_obs::{Counter, Histogram, Registry};
use panda_surveillance::ingest::{PendingReport, SequencedReport, TrySwitchError};
use panda_surveillance::node::IngestNode;
use panda_surveillance::shard_of;
use std::collections::VecDeque;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One shard's downstream link from the router.
pub enum ShardBackend {
    /// An in-process node (a
    /// [`ShardNode`](panda_surveillance::node::ShardNode) or a plain
    /// pipeline handle) — the zero-copy topology for tests, benches and
    /// single-process deployments.
    Local(Arc<dyn IngestNode>),
    /// A remote shard node behind its own gateway, reached over one
    /// persistent connection on the shard plane
    /// ([`GatewayConfig::shard_plane`]). Build with
    /// [`ShardBackend::remote`].
    Remote(OrderedMutex<GatewayClient>),
}

impl ShardBackend {
    /// Wraps a connected shard-plane client as a remote backend (the link
    /// lock joins the router's lock order below the policy record).
    pub fn remote(client: GatewayClient) -> Self {
        ShardBackend::Remote(OrderedMutex::new(rank::ROUTER_BACKEND, client))
    }

    /// Forwards a stamped sub-batch; returns the accepted prefix length.
    /// Any downstream failure — shut-down pipeline, torn connection,
    /// protocol breakage — is `Err`: the router cannot know those reports
    /// landed, so it must not ack them.
    fn submit_sequenced(&self, reports: &[SequencedReport]) -> Result<usize, ()> {
        match self {
            ShardBackend::Local(node) => node.try_submit_sequenced(reports).map_err(|_| ()),
            ShardBackend::Remote(client) => client.lock().submit_sequenced(reports).map_err(|_| ()),
        }
    }

    /// Applies a policy switch to this shard, riding out a full queue for
    /// a bounded number of attempts.
    fn switch_policy(
        &self,
        policy: &LocationPolicyGraph,
        retries: u32,
        backoff: Duration,
    ) -> Result<(), NackReason> {
        match self {
            ShardBackend::Local(node) => {
                let mut attempts = 0u32;
                loop {
                    match node.try_switch_policy(Arc::new(PolicyIndex::new(policy.clone()))) {
                        Ok(()) => return Ok(()),
                        Err(TrySwitchError::Full(_)) => {
                            attempts += 1;
                            if attempts >= retries.max(1) {
                                return Err(NackReason::Backpressure);
                            }
                            std::thread::sleep(backoff);
                        }
                        Err(TrySwitchError::Closed(_)) => return Err(NackReason::Closed),
                    }
                }
            }
            ShardBackend::Remote(client) => {
                // `GatewayClient::switch_policy` already retries
                // backpressure under its own policy.
                match client.lock().switch_policy(policy) {
                    Ok(()) => Ok(()),
                    Err(crate::client::ClientError::Saturated) => Err(NackReason::Backpressure),
                    Err(_) => Err(NackReason::Closed),
                }
            }
        }
    }
}

/// Tunables of a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Socket tunables for the router's listeners (buffer sizes,
    /// timeouts, connection cap). The privilege flags are ignored — the
    /// data plane is always unprivileged and
    /// [`ShardRouter::bind_operator`] is always privileged.
    pub listener: GatewayConfig,
    /// Full-queue attempts per backend in a policy broadcast before the
    /// broadcast is abandoned (and rolled back).
    pub switch_retries: u32,
    /// Pause between those attempts.
    pub switch_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            listener: GatewayConfig::default(),
            switch_retries: 64,
            switch_backoff: Duration::from_micros(500),
        }
    }
}

/// Lifetime counters of a router, snapshotted by [`ShardRouter::stats`]
/// (listener counters aggregate the data and operator planes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections dropped at the connection cap.
    pub rejected_connections: u64,
    /// Connections that ended non-cleanly.
    pub dropped_connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Reports accepted by a shard and acked to clients.
    pub reports_routed: u64,
    /// Stamped sub-batches forwarded to backends (the fan-out factor:
    /// `fanout_batches / frames` worth of downstream round trips per
    /// client frame).
    pub fanout_batches: u64,
    /// `Nack{Backpressure}` replies sent to clients.
    pub backpressure_nacks: u64,
    /// `Nack{Closed}` replies sent to clients.
    pub closed_nacks: u64,
    /// `Nack{Malformed}` replies sent (each closes its connection).
    pub malformed_nacks: u64,
    /// Policy broadcasts applied on every shard.
    pub policy_switches: u64,
    /// Failed broadcasts whose partial application was rolled back.
    pub policy_rollbacks: u64,
    /// Mailbox fetches answered with a pending message.
    pub fetches_served: u64,
}

#[derive(Default)]
struct RouterCounters {
    reports_routed: Counter,
    fanout_batches: Counter,
    backpressure_nacks: Counter,
    closed_nacks: Counter,
    policy_switches: Counter,
    policy_rollbacks: Counter,
    fetches_served: Counter,
    /// Size in reports of each stamped sub-batch forwarded downstream —
    /// the fan-out shape (how well client batches pack per shard).
    fanout_batch_reports: Histogram,
    /// Client frames answered with a short contiguous prefix: some
    /// position was stamped but its shard backpressured, so the ack
    /// stalled behind it. The stall signal for router capacity planning.
    ack_prefix_stalls: Counter,
}

impl RouterCounters {
    fn register_into(&self, registry: &Registry) {
        registry.register_counter("panda_router_reports_routed_total", &self.reports_routed);
        registry.register_counter("panda_router_fanout_batches_total", &self.fanout_batches);
        registry.register_counter(
            "panda_router_backpressure_nacks_total",
            &self.backpressure_nacks,
        );
        registry.register_counter("panda_router_closed_nacks_total", &self.closed_nacks);
        registry.register_counter("panda_router_policy_switches_total", &self.policy_switches);
        registry.register_counter(
            "panda_router_policy_rollbacks_total",
            &self.policy_rollbacks,
        );
        registry.register_counter("panda_router_fetches_served_total", &self.fetches_served);
        registry.register_histogram(
            "panda_router_fanout_batch_reports",
            &self.fanout_batch_reports,
        );
        registry.register_counter(
            "panda_router_ack_prefix_stalls_total",
            &self.ack_prefix_stalls,
        );
    }
}

/// State shared by the router's data and operator planes.
struct RouterShared {
    backends: Vec<ShardBackend>,
    /// The cluster-wide arrival-sequence reservation counter.
    next_seq: AtomicU64,
    mailbox: Arc<Mailbox>,
    /// The last policy successfully broadcast to every shard — the
    /// rollback target when a later broadcast fails halfway. Held across
    /// a whole broadcast, serializing concurrent switches — which nests
    /// the backend-link locks inside it, hence its lower rank.
    current_policy: OrderedMutex<Option<LocationPolicyGraph>>,
    counters: RouterCounters,
    core: Arc<CoreStats>,
    /// The router's scrape scope (both planes share it, like the core
    /// counters); served to [`Frame::StatsRequest`] on the operator plane.
    registry: Arc<Registry>,
}

/// One stream position the router has seen but not yet retired: its
/// reserved stamp, and whether some shard already queued it.
struct TailSlot {
    seq: u64,
    accepted: bool,
}

/// Per-connection routing state: `acked` stream positions are retired;
/// `tail` covers positions `acked..acked + tail.len()` — stamped, possibly
/// queued on a shard, but not yet part of the contiguous acked prefix.
struct RouterConn {
    acked: u64,
    tail: VecDeque<TailSlot>,
}

/// The router's [`FrameService`]; one instance per plane, sharing
/// [`RouterShared`].
struct RouterService {
    shared: Arc<RouterShared>,
    operator_plane: bool,
    config: RouterConfig,
}

/// A running shard router; dropping it shuts it down (backends are
/// dropped with it — remote links close cleanly by EOF).
pub struct ShardRouter {
    addr: SocketAddr,
    operator_addr: Option<SocketAddr>,
    data: Listener<RouterService>,
    operator: Option<Listener<RouterService>>,
    shared: Arc<RouterShared>,
    config: RouterConfig,
}

impl ShardRouter {
    /// Binds the client-facing data plane on `addr` (port 0 for
    /// ephemeral) routing across `backends`. `shard_of(user,
    /// backends.len())` decides placement, so the backend order must
    /// match the server slices' shard indices.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: Vec<ShardBackend>,
        config: RouterConfig,
    ) -> std::io::Result<Self> {
        let core = Arc::new(CoreStats::default());
        let counters = RouterCounters::default();
        let registry = Arc::new(Registry::new());
        core.register_into(&registry, "router");
        counters.register_into(&registry);
        let shared = Arc::new(RouterShared {
            backends,
            next_seq: AtomicU64::new(0),
            mailbox: Arc::new(Mailbox::new()),
            current_policy: OrderedMutex::new(rank::ROUTER_POLICY, None),
            counters,
            core: Arc::clone(&core),
            registry,
        });
        let data_config = GatewayConfig {
            allow_wire_policy_switch: false,
            allow_sequenced_submit: false,
            ..config.listener.clone()
        };
        let service = Arc::new(RouterService {
            shared: Arc::clone(&shared),
            operator_plane: false,
            config: config.clone(),
        });
        let data = Listener::bind(addr, service, data_config, core, "panda-router")?;
        let addr = data.local_addr();
        Ok(ShardRouter {
            addr,
            operator_addr: None,
            data,
            operator: None,
            shared,
            config,
        })
    }

    /// Binds the privileged operator plane on `addr`: the listener that
    /// honours `SwitchPolicy` broadcasts and `Assign`/`Resend` mailbox
    /// pushes. Keep it off the open ingest port (loopback, an
    /// authenticated sidecar, or a firewalled admin port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_operator(&mut self, addr: impl ToSocketAddrs) -> std::io::Result<SocketAddr> {
        let operator_config = GatewayConfig {
            allow_wire_policy_switch: true,
            allow_sequenced_submit: false,
            ..self.config.listener.clone()
        };
        let service = Arc::new(RouterService {
            shared: Arc::clone(&self.shared),
            operator_plane: true,
            config: self.config.clone(),
        });
        let listener = Listener::bind(
            addr,
            service,
            operator_config,
            Arc::clone(&self.shared.core),
            "panda-router-op",
        )?;
        let addr = listener.local_addr();
        self.operator = Some(listener);
        self.operator_addr = Some(addr);
        Ok(addr)
    }

    /// The data plane's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The operator plane's bound address, when one is bound.
    pub fn operator_addr(&self) -> Option<SocketAddr> {
        self.operator_addr
    }

    /// The mailbox backing `Fetch`/`Assign`/`Resend` across both planes.
    pub fn mailbox(&self) -> Arc<Mailbox> {
        Arc::clone(&self.shared.mailbox)
    }

    /// A snapshot of the lifetime counters (both planes aggregated) — a
    /// thin read of the same `panda-obs` cells the scrape plane exposes
    /// (all zero when built with `--cfg panda_obs_off`).
    pub fn stats(&self) -> RouterStats {
        let core = &self.shared.core;
        let c = &self.shared.counters;
        RouterStats {
            connections: core.connections.get(),
            rejected_connections: core.rejected_connections.get(),
            dropped_connections: core.dropped_connections.get(),
            frames: core.frames.get(),
            reports_routed: c.reports_routed.get(),
            fanout_batches: c.fanout_batches.get(),
            backpressure_nacks: c.backpressure_nacks.get(),
            closed_nacks: c.closed_nacks.get(),
            malformed_nacks: core.malformed_nacks.get(),
            policy_switches: c.policy_switches.get(),
            policy_rollbacks: c.policy_rollbacks.get(),
            fetches_served: c.fetches_served.get(),
        }
    }

    /// The deterministic text exposition of the router's metrics — the
    /// same text [`Frame::StatsRequest`] returns on the operator plane.
    pub fn metrics_dump(&self) -> String {
        clamp_stats_text(self.shared.registry.render())
    }

    /// Graceful shutdown: both planes stop accepting, every live
    /// connection drains (frames already received are answered), all
    /// threads join. Every report acked before this returns is in some
    /// shard's queue — shut the shard nodes down afterwards to land them.
    pub fn shutdown(mut self) -> RouterStats {
        self.data.shutdown_in_place();
        if let Some(op) = self.operator.as_mut() {
            op.shutdown_in_place();
        }
        self.stats()
    }
}

impl FrameService for RouterService {
    type Conn = RouterConn;

    fn open(&self) -> RouterConn {
        RouterConn {
            acked: 0,
            tail: VecDeque::new(),
        }
    }

    /// Data plane: submissions (pending and released), fetch polls, clean
    /// shutdown. Operator plane additionally honours policy broadcasts,
    /// mailbox pushes and stats scrapes. `SubmitSequenced` is **never**
    /// decoded here — stamps are the router's to reserve; a client
    /// choosing its own would choose its own noise.
    fn permits(&self, t: u8) -> bool {
        use crate::wire::tag;
        matches!(
            t,
            tag::SUBMIT | tag::SUBMIT_BATCH | tag::SHUTDOWN | tag::REPORT | tag::FETCH
        ) || (self.operator_plane
            && matches!(
                t,
                tag::SWITCH_POLICY | tag::ASSIGN | tag::RESEND | tag::STATS_REQUEST
            ))
    }

    fn handle(&self, conn: &mut RouterConn, frame: Frame, replies: &mut Vec<u8>) -> Disposition {
        match frame {
            Frame::Submit(report) => self.route_submission(conn, &[(report, false)], replies),
            Frame::SubmitBatch(reports) => {
                let entries: Vec<(PendingReport, bool)> =
                    reports.into_iter().map(|r| (r, false)).collect();
                self.route_submission(conn, &entries, replies)
            }
            Frame::Report(r) => {
                // An already-perturbed client release: lands verbatim,
                // but still takes a stamp — the stamp fixes its overwrite
                // order against pending reports in the same stream.
                let pending = PendingReport {
                    user: r.user,
                    epoch: r.epoch,
                    cell: r.cell,
                    resend: r.resend,
                };
                self.route_submission(conn, &[(pending, true)], replies)
            }
            Frame::Fetch { user } => {
                let reply = match self.shared.mailbox.fetch(user) {
                    Some(msg) => {
                        self.shared.counters.fetches_served.inc();
                        msg.into_frame()
                    }
                    None => Frame::Ack { accepted: 0 },
                };
                encode_frame(&reply, replies);
                Disposition::Continue
            }
            Frame::Assign(assignment) => {
                if !self.operator_plane {
                    return self.violation(replies);
                }
                self.shared
                    .mailbox
                    .push(assignment.user, ServerMessage::Assign(assignment));
                encode_frame(&Frame::Ack { accepted: 0 }, replies);
                Disposition::Continue
            }
            Frame::Resend(request) => {
                if !self.operator_plane {
                    return self.violation(replies);
                }
                self.shared
                    .mailbox
                    .push(request.user, ServerMessage::Resend(request));
                encode_frame(&Frame::Ack { accepted: 0 }, replies);
                Disposition::Continue
            }
            Frame::SwitchPolicy(policy) => {
                if !self.operator_plane {
                    return self.violation(replies);
                }
                let reply = self.broadcast_policy(policy);
                encode_frame(&reply, replies);
                Disposition::Continue
            }
            Frame::StatsRequest => {
                if !self.operator_plane {
                    return self.violation(replies);
                }
                let text = clamp_stats_text(self.shared.registry.render());
                encode_frame(&Frame::StatsReply(text), replies);
                Disposition::Continue
            }
            Frame::Shutdown => {
                encode_frame(&Frame::Ack { accepted: 0 }, replies);
                Disposition::Close
            }
            Frame::Ack { .. }
            | Frame::Nack { .. }
            | Frame::SubmitSequenced(_)
            | Frame::StatsReply(_) => self.violation(replies),
        }
    }

    fn closed(&self, _conn: RouterConn, _dropped: bool) {}
}

impl RouterService {
    /// Routes one client frame's worth of stream positions: reserve (or
    /// reuse) stamps, fan the not-yet-queued positions to their shards,
    /// advance the contiguous accepted prefix, and ack it honestly.
    fn route_submission(
        &self,
        conn: &mut RouterConn,
        entries: &[(PendingReport, bool)],
        replies: &mut Vec<u8>,
    ) -> Disposition {
        let k = entries.len();
        let shared = &self.shared;
        let n_shards = shared.backends.len();
        // Positions `acked..acked+k`. A conforming client's retry resends
        // exactly the unaccepted remainder, so the first tail slots line
        // up with the incoming reports: slots hold the stamps reserved
        // last time (and remember which positions some shard already
        // queued); any positions beyond the tail are new — reserve fresh
        // stamps in stream order.
        while conn.tail.len() < k {
            let seq = shared.next_seq.fetch_add(1, Ordering::Relaxed);
            conn.tail.push_back(TailSlot {
                seq,
                accepted: false,
            });
        }
        // Group the not-yet-queued positions by shard, preserving stream
        // order, stamped with their reserved sequence numbers.
        let mut per_shard: Vec<Vec<SequencedReport>> = vec![Vec::new(); n_shards];
        let mut slots_per_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (i, &(report, released)) in entries.iter().enumerate() {
            let slot = &conn.tail[i];
            if slot.accepted {
                // Queued on its shard in a previous attempt; never
                // forwarded twice, counted once (below, when the prefix
                // reaches it).
                continue;
            }
            let shard = shard_of(report.user, n_shards);
            per_shard[shard].push(SequencedReport {
                seq: slot.seq,
                report,
                released,
            });
            slots_per_shard[shard].push(i);
        }
        let mut closed = false;
        for (shard, batch) in per_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            for chunk_start in (0..batch.len()).step_by(MAX_REPORTS_PER_FRAME) {
                let chunk =
                    &batch[chunk_start..(chunk_start + MAX_REPORTS_PER_FRAME).min(batch.len())];
                shared.counters.fanout_batches.inc();
                shared
                    .counters
                    .fanout_batch_reports
                    .record(chunk.len() as u64);
                match shared.backends[shard].submit_sequenced(chunk) {
                    Ok(n) => {
                        for &i in &slots_per_shard[shard][chunk_start..chunk_start + n] {
                            conn.tail[i].accepted = true;
                        }
                        if n < chunk.len() {
                            // This shard is full; the rest of its
                            // sub-batch waits for the client's retry.
                            break;
                        }
                    }
                    Err(()) => {
                        closed = true;
                        break;
                    }
                }
            }
        }
        // Retire the contiguous accepted prefix — that, and only that, is
        // what the client is told. Capped at `k` so the reply can never
        // claim more than this frame carried (surplus accepted slots from
        // a nonconforming client's shrunken retry are credited on its
        // next frame).
        let mut frame_accepted = 0usize;
        while frame_accepted < k {
            match conn.tail.front() {
                Some(front) if front.accepted => {
                    conn.tail.pop_front();
                    conn.acked += 1;
                    frame_accepted += 1;
                }
                _ => break,
            }
        }
        if frame_accepted > 0 {
            shared.counters.reports_routed.add(frame_accepted as u64);
        }
        let reply = if closed {
            shared.counters.closed_nacks.inc();
            Frame::Nack {
                reason: NackReason::Closed,
                accepted: frame_accepted as u32,
            }
        } else if frame_accepted == k {
            Frame::Ack {
                accepted: frame_accepted as u32,
            }
        } else {
            // The contiguous prefix stalled behind a backpressured shard:
            // the remainder waits for the client's retry.
            shared.counters.ack_prefix_stalls.inc();
            shared.counters.backpressure_nacks.inc();
            Frame::Nack {
                reason: NackReason::Backpressure,
                accepted: frame_accepted as u32,
            }
        };
        encode_frame(&reply, replies);
        Disposition::Continue
    }

    /// All-or-nothing policy broadcast: either every shard takes the new
    /// policy, or the shards that did are rolled back to the previous one
    /// and the operator is nacked. Serialized by the `current_policy`
    /// lock.
    fn broadcast_policy(&self, policy: LocationPolicyGraph) -> Frame {
        let shared = &self.shared;
        let mut current = shared.current_policy.lock();
        for (i, backend) in shared.backends.iter().enumerate() {
            if let Err(reason) = backend.switch_policy(
                &policy,
                self.config.switch_retries,
                self.config.switch_backoff,
            ) {
                // Roll the shards that already switched back to the last
                // policy every shard is known to share. Without a
                // recorded one (no broadcast has succeeded yet) there is
                // no baseline to restore — the shards keep whatever they
                // were spawned with, which the failed broadcast never
                // touched... except the first `i`; best effort only.
                if let Some(previous) = current.as_ref() {
                    for rolled in &shared.backends[..i] {
                        let _ = rolled.switch_policy(
                            previous,
                            self.config.switch_retries,
                            self.config.switch_backoff,
                        );
                    }
                    shared.counters.policy_rollbacks.inc();
                }
                match reason {
                    NackReason::Backpressure => shared.counters.backpressure_nacks.inc(),
                    _ => shared.counters.closed_nacks.inc(),
                };
                return Frame::Nack {
                    reason,
                    accepted: 0,
                };
            }
        }
        *current = Some(policy);
        shared.counters.policy_switches.inc();
        Frame::Ack { accepted: 0 }
    }

    /// A protocol violation on this plane: `Nack{Malformed}` and drop.
    fn violation(&self, replies: &mut Vec<u8>) -> Disposition {
        self.shared.core.malformed_nacks.inc();
        encode_frame(
            &Frame::Nack {
                reason: NackReason::Malformed,
                accepted: 0,
            },
            replies,
        );
        Disposition::Drop
    }
}
