//! Multi-node loopback cluster tests: a [`ShardRouter`] in front of N
//! shard nodes (local and remote backends) must be observationally
//! identical to the single-process pipeline — byte-identical merged
//! databases for the same arrival order, across flush timings, under
//! mid-stream backpressure, with all-or-nothing policy broadcast and the
//! re-send protocol riding the same planes.

use panda_core::{GraphExponential, LocationPolicyGraph, PolicyIndex};
use panda_geo::{CellId, GridMap};
use panda_mobility::{Timestamp, UserId};
use panda_net::{
    ClientError, GatewayClient, GatewayConfig, IngestGateway, RetryPolicy, RouterConfig,
    ServerMessage, ShardBackend, ShardRouter,
};
use panda_surveillance::ingest::{IngestConfig, IngestPipeline, PendingReport};
use panda_surveillance::node::{merge_reported_dbs, IngestNode, ShardNode};
use panda_surveillance::protocol::PolicyAssignment;
use panda_surveillance::{shard_of, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const HORIZON: Timestamp = 16;

fn grid() -> GridMap {
    GridMap::new(8, 8, 100.0)
}

fn index() -> Arc<PolicyIndex> {
    Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
        grid(),
        2,
        2,
    )))
}

fn trace(n: usize, seed: u64) -> Vec<PendingReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| PendingReport {
            user: UserId(rng.gen_range(0..200)),
            epoch: (i / 200) as Timestamp,
            cell: CellId(rng.gen_range(0..64)),
            resend: false,
        })
        .collect()
}

/// The single-process database for `reports` submitted in order.
fn reference_db(
    reports: &[PendingReport],
    config: IngestConfig,
) -> Vec<panda_mobility::Trajectory> {
    let server = Arc::new(Server::new(grid()));
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index(),
        Arc::new(GraphExponential),
        config,
    );
    let handle = pipeline.handle();
    for &r in reports {
        handle.submit(r).unwrap();
    }
    pipeline.shutdown();
    server.reported_db(HORIZON).trajectories().to_vec()
}

/// N shard nodes, each behind its own shard-plane gateway, with a router
/// fanning out over remote links — the full three-tier TCP topology.
struct Cluster {
    nodes: Vec<ShardNode>,
    gateways: Vec<IngestGateway>,
    router: ShardRouter,
}

fn spawn_cluster(n: usize, config: IngestConfig) -> Cluster {
    let nodes: Vec<ShardNode> = (0..n)
        .map(|_| {
            ShardNode::spawn(
                Arc::new(Server::new(grid())),
                index(),
                Arc::new(GraphExponential),
                config.clone(),
            )
        })
        .collect();
    let gateways: Vec<IngestGateway> = nodes
        .iter()
        .map(|node| {
            IngestGateway::bind_with("127.0.0.1:0", node.handle(), GatewayConfig::shard_plane())
                .expect("bind shard gateway")
        })
        .collect();
    let backends = gateways
        .iter()
        .map(|gw| {
            ShardBackend::remote(
                GatewayClient::connect(gw.local_addr()).expect("connect shard link"),
            )
        })
        .collect();
    let router =
        ShardRouter::bind("127.0.0.1:0", backends, RouterConfig::default()).expect("bind router");
    Cluster {
        nodes,
        gateways,
        router,
    }
}

impl Cluster {
    /// Shuts the tiers down top-to-bottom and returns the merged database.
    fn merged_db(self) -> Vec<panda_mobility::Trajectory> {
        self.router.shutdown();
        for gw in self.gateways {
            gw.shutdown();
        }
        let servers: Vec<Arc<Server>> = self
            .nodes
            .iter()
            .map(|node| Arc::clone(node.server()))
            .collect();
        for node in self.nodes {
            node.shutdown();
        }
        merge_reported_dbs(grid(), &servers, HORIZON)
            .trajectories()
            .to_vec()
    }
}

/// The acceptance criterion: a client submitting a trace through the
/// router to an N-node loopback cluster (N = 1, 2, 4) lands a merged
/// database byte-identical to the single-process pipeline fed the same
/// order — across flush timings, for batched and per-report frames.
#[test]
fn cluster_matches_single_process_pipeline() {
    let reports = trace(3_000, 42);
    let flush_configs = [
        IngestConfig {
            max_batch: 64,
            release_lanes: 2,
            seed: 7,
            ..Default::default()
        },
        IngestConfig {
            max_batch: usize::MAX,
            max_delay: Duration::from_micros(200),
            release_lanes: 4,
            seed: 7,
            ..Default::default()
        },
    ];
    for config in flush_configs {
        let want = reference_db(&reports, config.clone());
        for n in [1usize, 2, 4] {
            let cluster = spawn_cluster(n, config.clone());
            let mut client = GatewayClient::connect(cluster.router.local_addr()).unwrap();
            for chunk in reports.chunks(333) {
                client.submit_batch(chunk).unwrap();
            }
            client.shutdown().unwrap();
            let stats = cluster.router.stats();
            assert_eq!(stats.reports_routed as usize, reports.len());
            assert_eq!(
                cluster.merged_db(),
                want,
                "{n}-node cluster diverged (max_batch={})",
                config.max_batch
            );
        }
    }
}

/// One shard backpressuring mid-stream must not break byte-identity: the
/// router nacks the honest accepted prefix, the client's retry resumes
/// from it, and retried positions keep their originally-reserved stamps —
/// nothing lost, nothing double-counted, same bytes.
#[test]
fn cluster_backpressure_mid_stream_keeps_byte_identity() {
    let reports = trace(1_200, 99);
    let config = IngestConfig {
        max_batch: 64,
        release_lanes: 2,
        seed: 7,
        ..Default::default()
    };
    let want = reference_db(&reports, config.clone());

    // Node 0 gets a 2-slot queue (and a slow drain): most frames hit a
    // full shard and must be retried; node 1 keeps the default capacity,
    // so shards fill unevenly and accepted prefixes get holes.
    let throttled = IngestConfig {
        queue_capacity: 2,
        ..config.clone()
    };
    let nodes = vec![
        ShardNode::spawn(
            Arc::new(Server::new(grid())),
            index(),
            Arc::new(GraphExponential),
            throttled,
        ),
        ShardNode::spawn(
            Arc::new(Server::new(grid())),
            index(),
            Arc::new(GraphExponential),
            config,
        ),
    ];
    let gateways: Vec<IngestGateway> = nodes
        .iter()
        .map(|node| {
            IngestGateway::bind_with("127.0.0.1:0", node.handle(), GatewayConfig::shard_plane())
                .unwrap()
        })
        .collect();
    let backends = gateways
        .iter()
        .map(|gw| ShardBackend::remote(GatewayClient::connect(gw.local_addr()).unwrap()))
        .collect();
    let router = ShardRouter::bind("127.0.0.1:0", backends, RouterConfig::default()).unwrap();

    let mut client = GatewayClient::connect(router.local_addr())
        .unwrap()
        .with_retry(RetryPolicy {
            max_attempts: 100_000,
            backoff: Duration::from_micros(200),
        });
    for chunk in reports.chunks(64) {
        client.submit_batch(chunk).unwrap();
    }
    assert!(
        client.backpressure_retries() > 0,
        "a 2-slot shard must backpressure 64-report frames"
    );
    client.shutdown().unwrap();
    let stats = router.stats();
    assert!(stats.backpressure_nacks > 0);
    assert_eq!(stats.reports_routed as usize, reports.len());
    let cluster = Cluster {
        nodes,
        gateways,
        router,
    };
    assert_eq!(
        cluster.merged_db(),
        want,
        "mid-stream backpressure broke cluster byte-identity"
    );
}

/// An operator-plane `SwitchPolicy` through the router is all-or-nothing:
/// with every shard up it lands on all of them; with one shard down, the
/// ones that switched are rolled back to the previous policy and the
/// operator is nacked — no split-policy cluster.
#[test]
fn policy_broadcast_is_all_or_nothing_with_rollback() {
    let grid = grid();
    let policy_a = LocationPolicyGraph::partition(grid.clone(), 4, 4);
    let policy_b = LocationPolicyGraph::isolated(grid.clone());

    let pipelines: Vec<IngestPipeline> = (0..2)
        .map(|_| {
            IngestPipeline::spawn(
                Arc::new(Server::new(grid.clone())),
                index(),
                Arc::new(GraphExponential),
                IngestConfig::default(),
            )
        })
        .collect();
    let backends: Vec<ShardBackend> = pipelines
        .iter()
        .map(|p| ShardBackend::Local(Arc::new(p.handle()) as Arc<dyn IngestNode>))
        .collect();
    let mut router = ShardRouter::bind("127.0.0.1:0", backends, RouterConfig::default()).unwrap();
    let operator_addr = router.bind_operator("127.0.0.1:0").unwrap();
    let mut operator = GatewayClient::connect(operator_addr).unwrap();

    // Both shards up: the broadcast lands everywhere.
    operator.switch_policy(&policy_a).unwrap();
    assert_eq!(router.stats().policy_switches, 1);

    // Shard 1 down: the broadcast must fail as a unit, and shard 0 — which
    // took policy_b first — must be rolled back to policy_a.
    let mut pipelines = pipelines.into_iter();
    let survivor = pipelines.next().unwrap();
    pipelines.next().unwrap().shutdown();
    assert!(matches!(
        operator.switch_policy(&policy_b),
        Err(ClientError::Closed)
    ));
    let stats = router.stats();
    assert_eq!(
        stats.policy_switches, 1,
        "the failed broadcast must not count"
    );
    assert_eq!(stats.policy_rollbacks, 1);
    operator.shutdown().unwrap();
    router.shutdown();
    // Shard 0 saw: policy_a, policy_b, then the rollback to policy_a.
    let survivor_stats = survivor.shutdown();
    assert_eq!(survivor_stats.policy_switches, 3);
}

/// The router's stats plane: the operator listener serves the routing
/// tier's exposition (fan-out batch sizes, routed totals), the shard-plane
/// gateways each serve their node's merged exposition, and the router's
/// data plane refuses the scrape.
#[test]
fn router_and_shard_planes_serve_stats() {
    let cluster = spawn_cluster(2, IngestConfig::default());
    let mut router = cluster.router;
    let operator_addr = router.bind_operator("127.0.0.1:0").unwrap();

    let reports = trace(500, 17);
    let mut client = GatewayClient::connect(router.local_addr()).unwrap();
    for chunk in reports.chunks(100) {
        client.submit_batch(chunk).unwrap();
    }

    let mut operator = GatewayClient::connect(operator_addr).unwrap();
    let text = operator.stats().unwrap();
    assert!(text.contains("panda_router_reports_routed_total 500"));
    assert!(text.contains("# TYPE panda_router_fanout_batch_reports histogram"));
    assert!(text.contains("panda_router_fanout_batch_reports_count 10"));
    // The in-process dump serves the same plane (the scrape frame itself
    // records its own latency after rendering, so only the counters are
    // compared, not the frame histogram).
    let dump = router.metrics_dump();
    assert!(dump.contains("panda_router_reports_routed_total 500"));
    assert!(dump.contains("panda_router_fanout_batches_total 10"));

    // Shard-plane gateways are scrapeable too: each node's landed total is
    // visible at its gateway, and the two sum to the routed total.
    let mut landed = 0u64;
    for gw in &cluster.gateways {
        let mut shard_client = GatewayClient::connect(gw.local_addr()).unwrap();
        let t0 = std::time::Instant::now();
        landed += loop {
            let text = shard_client.stats().unwrap();
            if let Some(n) = text.lines().find_map(|l| {
                l.strip_prefix("panda_ingest_landed_reports_total ")
                    .and_then(|v| v.parse::<u64>().ok())
            }) {
                if n > 0 {
                    break n;
                }
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "shard scrape never showed landings:\n{text}"
            );
            std::thread::sleep(Duration::from_millis(2));
        };
        shard_client.shutdown().unwrap();
    }
    // Both shards keep landing after the scrape polls; once quiesced the
    // stripes must account for every routed report.
    let t0 = std::time::Instant::now();
    loop {
        let total: usize = cluster.nodes.iter().map(|n| n.server().n_received()).sum();
        if total == reports.len() {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "landings stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(landed > 0 && landed <= reports.len() as u64);

    // The router's data plane refuses the scrape.
    assert!(
        client.stats().is_err(),
        "the data plane must not serve the stats frame"
    );
    operator.shutdown().unwrap();
    router.shutdown();
    for gw in cluster.gateways {
        gw.shutdown();
    }
    for node in cluster.nodes {
        node.shutdown();
    }
}

/// The re-send protocol rides the router's planes: an operator push on
/// the privileged listener is collected by the user's data-plane fetch,
/// and the re-released `Report` lands verbatim on the user's shard.
#[test]
fn router_carries_the_resend_protocol_to_the_right_shard() {
    let cluster = spawn_cluster(2, IngestConfig::default());
    let mut router = cluster.router;
    let operator_addr = router.bind_operator("127.0.0.1:0").unwrap();
    let user = UserId(7);
    let shard = shard_of(user, 2);

    let mut operator = GatewayClient::connect(operator_addr).unwrap();
    let assignment = PolicyAssignment {
        user,
        policy: LocationPolicyGraph::partition(grid(), 4, 4),
        eps_per_epoch: 0.5,
        effective_from: 3,
    };
    operator.push_assignment(&assignment).unwrap();

    let mut reporter = GatewayClient::connect(router.local_addr()).unwrap();
    match reporter.fetch(user).unwrap() {
        Some(ServerMessage::Assign(a)) => {
            assert_eq!(a.user, user);
            assert_eq!(a.effective_from, 3);
        }
        other => panic!("expected the pushed assignment, got {other:?}"),
    }
    assert!(reporter.fetch(user).unwrap().is_none());
    // A data-plane client must not be able to push server messages.
    assert!(matches!(
        reporter.push_assignment(&assignment),
        Err(ClientError::Rejected)
    ));

    // The re-released report (as the re-send protocol would produce it)
    // lands verbatim on the user's shard.
    let mut reporter = GatewayClient::connect(router.local_addr()).unwrap();
    reporter
        .send_report(panda_surveillance::protocol::LocationReport {
            user,
            epoch: 3,
            cell: CellId(42),
            resend: true,
        })
        .unwrap();
    reporter.shutdown().unwrap();
    operator.shutdown().unwrap();
    assert_eq!(router.stats().fetches_served, 1);
    router.shutdown();
    for gw in cluster.gateways {
        gw.shutdown();
    }
    let servers: Vec<Arc<Server>> = cluster
        .nodes
        .iter()
        .map(|node| Arc::clone(node.server()))
        .collect();
    for node in cluster.nodes {
        node.shutdown();
    }
    assert_eq!(servers[shard].reported_cell(user, 3), Some(CellId(42)));
    assert_eq!(servers[shard].n_resends(), 1);
    assert_eq!(servers[1 - shard].n_received(), 0);
}
