//! End-to-end loopback tests for the TCP ingest gateway: the determinism
//! contract (TCP delivery ≡ in-process submission), hostile-input
//! survival, wire-visible backpressure, and the no-acked-report-lost
//! shutdown drain.

use panda_core::{GraphExponential, LocationPolicyGraph, PolicyIndex};
use panda_geo::{CellId, GridMap};
use panda_mobility::{Timestamp, UserId};
use panda_net::wire::{decode_frame, encode_to_vec, HEADER_LEN, MAGIC, VERSION};
use panda_net::{
    ClientError, Frame, GatewayClient, GatewayConfig, IngestGateway, NackReason, RetryPolicy,
    ServerMessage,
};
use panda_surveillance::client::{Client, ClientConfig};
use panda_surveillance::ingest::{IngestConfig, IngestPipeline, PendingReport};
use panda_surveillance::protocol::ResendRequest;
use panda_surveillance::Server;
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn setup(shards: usize) -> (Arc<Server>, Arc<PolicyIndex>) {
    let grid = GridMap::new(8, 8, 100.0);
    let server = Arc::new(Server::with_shards(grid.clone(), shards));
    let index = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(grid, 2, 2)));
    (server, index)
}

fn spawn_stack(config: IngestConfig) -> (Arc<Server>, IngestPipeline, IngestGateway) {
    let (server, index) = setup(16);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        config,
    );
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).expect("bind loopback");
    (server, pipeline, gateway)
}

fn trace(n: usize, seed: u64) -> Vec<PendingReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| PendingReport {
            user: UserId(rng.gen_range(0..200)),
            epoch: (i / 200) as Timestamp,
            cell: CellId(rng.gen_range(0..64)),
            resend: false,
        })
        .collect()
}

/// The acceptance criterion: a single client submitting a trace over
/// loopback TCP lands a database byte-identical to in-process
/// `IngestHandle::submit` with the same arrival order — across flush
/// timings and lane counts, and for both per-report and batched frames.
#[test]
fn tcp_delivery_matches_in_process_submission() {
    let trace = trace(2_000, 41);
    let horizon = 16;
    let flush_configs = [
        IngestConfig {
            max_batch: 512,
            release_lanes: 1,
            seed: 9,
            ..Default::default()
        },
        IngestConfig {
            max_batch: 64,
            release_lanes: 4,
            seed: 9,
            ..Default::default()
        },
        IngestConfig {
            max_batch: usize::MAX,
            max_delay: Duration::from_micros(200),
            release_lanes: 8,
            seed: 9,
            ..Default::default()
        },
    ];
    for config in flush_configs {
        // In-process reference.
        let (ref_server, index) = setup(16);
        let ref_pipeline = IngestPipeline::spawn(
            Arc::clone(&ref_server),
            index,
            Arc::new(GraphExponential),
            config.clone(),
        );
        let handle = ref_pipeline.handle();
        for &r in &trace {
            handle.submit(r).unwrap();
        }
        let ref_stats = ref_pipeline.shutdown();
        assert_eq!(ref_stats.landed, trace.len());
        let ref_db = ref_server.reported_db(horizon);

        // One report per frame.
        let (server, pipeline, gateway) = spawn_stack(config.clone());
        let mut client = GatewayClient::connect(gateway.local_addr()).unwrap();
        for &r in &trace {
            client.submit(r).unwrap();
        }
        client.shutdown().unwrap();
        gateway.shutdown();
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, trace.len());
        assert_eq!(
            server.reported_db(horizon).trajectories(),
            ref_db.trajectories(),
            "per-report TCP delivery diverged (lanes={}, max_batch={})",
            config.release_lanes,
            config.max_batch
        );

        // Batched frames (mixed chunk sizes).
        let (server, pipeline, gateway) = spawn_stack(config.clone());
        let mut client = GatewayClient::connect(gateway.local_addr()).unwrap();
        for chunk in trace.chunks(333) {
            client.submit_batch(chunk).unwrap();
        }
        client.shutdown().unwrap();
        gateway.shutdown();
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, trace.len());
        assert_eq!(
            server.reported_db(horizon).trajectories(),
            ref_db.trajectories(),
            "batched TCP delivery diverged (lanes={}, max_batch={})",
            config.release_lanes,
            config.max_batch
        );
    }
}

/// An in-band `SwitchPolicy` over the wire (on an operator-plane
/// listener) is the same clean boundary as the in-process switch:
/// everything after it releases under the new policy.
#[test]
fn switch_policy_over_the_wire_is_a_clean_boundary() {
    let grid = GridMap::new(8, 8, 100.0);
    let server = Arc::new(Server::new(grid.clone()));
    let coarse = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
        grid.clone(),
        4,
        4,
    )));
    let isolated = LocationPolicyGraph::isolated(grid);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        coarse,
        Arc::new(GraphExponential),
        IngestConfig::default(),
    );
    let gateway =
        IngestGateway::bind_with("127.0.0.1:0", pipeline.handle(), GatewayConfig::operator())
            .unwrap();
    let mut client = GatewayClient::connect(gateway.local_addr()).unwrap();
    let epoch0: Vec<PendingReport> = (0..50u32)
        .map(|i| PendingReport {
            user: UserId(i),
            epoch: 0,
            cell: CellId(i % 64),
            resend: false,
        })
        .collect();
    let epoch1: Vec<PendingReport> = epoch0
        .iter()
        .map(|r| PendingReport { epoch: 1, ..*r })
        .collect();
    client.submit_batch(&epoch0).unwrap();
    client.switch_policy(&isolated).unwrap();
    client.submit_batch(&epoch1).unwrap();
    client.shutdown().unwrap();
    let gw_stats = gateway.shutdown();
    assert_eq!(gw_stats.policy_switches, 1);
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, 100);
    assert_eq!(stats.policy_switches, 1);
    for i in 0..50u32 {
        assert_eq!(
            server.reported_cell(UserId(i), 1),
            Some(CellId(i % 64)),
            "isolated policy must release exactly after the wire switch"
        );
    }
}

/// The re-send protocol round-trips over TCP with budget accounting
/// identical to the in-process path: the operator pushes a
/// `ResendRequest` on its plane, the reporter's `Fetch` poll collects it
/// on the data plane, `Client::handle_resend` charges the same ledger
/// either way, and the re-released reports land the same database bytes.
#[test]
fn resend_over_tcp_matches_in_process_budget_and_db() {
    let grid = GridMap::new(8, 8, 100.0);
    let initial = LocationPolicyGraph::partition(grid.clone(), 2, 2);
    let request = ResendRequest {
        user: UserId(7),
        from: 2,
        to: 8,
        policy: LocationPolicyGraph::partition(grid, 4, 4),
        eps_per_epoch: 0.5,
    };
    let make_client = || {
        let mut c = Client::new(
            UserId(7),
            ClientConfig::default(),
            initial.clone(),
            Box::new(GraphExponential),
            0.5,
        );
        for t in 0..10 {
            c.observe(t, CellId(t % 64));
        }
        c
    };

    // In-process reference: handle the request directly, land the
    // re-released reports through the pipeline.
    let (ref_server, index) = setup(16);
    let ref_pipeline = IngestPipeline::spawn(
        Arc::clone(&ref_server),
        index,
        Arc::new(GraphExponential),
        IngestConfig::default(),
    );
    let mut alice = make_client();
    let mut rng = SmallRng::seed_from_u64(5);
    let reports = alice.handle_resend(&request, &mut rng).unwrap();
    assert!(!reports.is_empty(), "the window must re-send something");
    ref_pipeline.handle().submit_released(&reports).unwrap();
    ref_pipeline.shutdown();

    // Over the wire: same request, same client state, same rng seed —
    // pushed through the operator plane and fetched from the data plane.
    let (server, index) = setup(16);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        IngestConfig::default(),
    );
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).unwrap();
    let operator_gw = IngestGateway::bind_shared(
        "127.0.0.1:0",
        pipeline.handle(),
        GatewayConfig::operator(),
        gateway.mailbox(),
    )
    .unwrap();
    let mut operator = GatewayClient::connect(operator_gw.local_addr()).unwrap();
    operator.push_resend(&request).unwrap();

    let mut reporter = GatewayClient::connect(gateway.local_addr()).unwrap();
    let fetched = match reporter.fetch(UserId(7)).unwrap() {
        Some(ServerMessage::Resend(r)) => r,
        other => panic!("expected the pushed resend request, got {other:?}"),
    };
    assert!(
        reporter.fetch(UserId(7)).unwrap().is_none(),
        "one push, one fetch"
    );
    let mut bob = make_client();
    let mut rng = SmallRng::seed_from_u64(5);
    let wire_reports = bob.handle_resend(&fetched, &mut rng).unwrap();
    assert_eq!(wire_reports, reports, "transport must not change releases");
    assert_eq!(
        bob.budget_remaining(),
        alice.budget_remaining(),
        "budget accounting must not depend on the transport"
    );
    for &r in &wire_reports {
        reporter.send_report(r).unwrap();
    }
    reporter.shutdown().unwrap();
    operator.shutdown().unwrap();
    let gw_stats = gateway.shutdown();
    assert_eq!(gw_stats.fetches_served, 1);
    operator_gw.shutdown();
    pipeline.shutdown();
    assert_eq!(server.n_resends(), ref_server.n_resends());
    assert_eq!(
        server.reported_db(16).trajectories(),
        ref_server.reported_db(16).trajectories(),
        "re-sent reports over TCP diverged from the in-process landing"
    );
}

/// The gateway's per-connection stats snapshot: accepted/nacked counters
/// per live connection, pruned as connections churn.
#[test]
fn per_connection_stats_track_each_client() {
    let (_server, pipeline, gateway) = spawn_stack(IngestConfig::default());
    let addr = gateway.local_addr();
    let mut a = GatewayClient::connect(addr).unwrap();
    let mut b = GatewayClient::connect(addr).unwrap();
    a.submit_batch(&trace(10, 1)).unwrap();
    b.submit_batch(&trace(25, 2)).unwrap();
    b.submit(trace(1, 3)[0]).unwrap();
    let wait_until = |pred: &dyn Fn(&[panda_net::ConnectionStats]) -> bool| {
        let t0 = std::time::Instant::now();
        loop {
            let stats = gateway.connection_stats();
            if pred(&stats) {
                return stats;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "connection stats never converged: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    let stats = wait_until(&|s| {
        let mut accepted: Vec<u64> = s.iter().map(|c| c.accepted).collect();
        accepted.sort_unstable();
        accepted == [10, 26]
    });
    assert!(stats.iter().all(|c| c.live && c.nacked == 0));
    a.shutdown().unwrap();
    wait_until(&|s| s.iter().filter(|c| c.live).count() == 1);
    b.shutdown().unwrap();
    gateway.shutdown();
    pipeline.shutdown();
}

/// Backpressure surfaces on the wire: a queue bounded far below the batch
/// size forces `Nack{Backpressure}` with a partial prefix, the client's
/// retry loop rides it out, and every report still lands exactly once in
/// order.
#[test]
fn saturated_queue_yields_backpressure_nacks_and_client_retries() {
    let trace = trace(400, 77);
    let (server, index) = setup(16);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        IngestConfig {
            // A 2-slot queue: every 64-report frame can enqueue at most 2
            // before the gateway must nack — backpressure is guaranteed,
            // not scheduling-dependent.
            queue_capacity: 2,
            max_batch: 64,
            ..Default::default()
        },
    );
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).unwrap();
    let mut client = GatewayClient::connect(gateway.local_addr())
        .unwrap()
        .with_retry(RetryPolicy {
            max_attempts: 10_000,
            backoff: Duration::from_micros(200),
        });
    for chunk in trace.chunks(64) {
        client.submit_batch(chunk).unwrap();
    }
    assert!(
        client.backpressure_retries() > 0,
        "a 2-slot queue must nack 64-report frames"
    );
    client.shutdown().unwrap();
    let gw_stats = gateway.shutdown();
    assert!(gw_stats.backpressure_nacks > 0);
    assert_eq!(gw_stats.reports_enqueued as usize, trace.len());
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, trace.len(), "every acked report lands");
    assert_eq!(server.n_received(), trace.len());
}

/// Submissions against a shut-down pipeline are refused with
/// `Nack{Closed}`, surfaced by the SDK as [`ClientError::Closed`] — the
/// gateway itself stays responsive.
#[test]
fn closed_pipeline_surfaces_as_closed() {
    let (server, index) = setup(4);
    let pipeline = IngestPipeline::spawn(
        server,
        index,
        Arc::new(GraphExponential),
        IngestConfig::default(),
    );
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).unwrap();
    pipeline.shutdown();
    let mut client = GatewayClient::connect(gateway.local_addr()).unwrap();
    let r = PendingReport {
        user: UserId(0),
        epoch: 0,
        cell: CellId(0),
        resend: false,
    };
    assert!(matches!(client.submit(r), Err(ClientError::Closed)));
    assert!(matches!(
        client.submit_batch(&[r; 3]),
        Err(ClientError::Closed)
    ));
    let stats = gateway.shutdown();
    assert!(stats.closed_nacks >= 2);
}

/// Hostile bytes — garbage, wrong version, oversize length, a truncated
/// frame, a protocol-violating (server → client) frame — get
/// `Nack{Malformed}` and/or a dropped connection, and the pipeline keeps
/// serving well-behaved clients afterwards.
#[test]
fn hostile_input_closes_the_connection_without_poisoning_the_pipeline() {
    let (server, pipeline, gateway) = spawn_stack(IngestConfig::default());
    let addr = gateway.local_addr();

    let read_reply = |stream: &mut TcpStream| -> Option<Frame> {
        let mut bytes = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut chunk = [0u8; 1024];
        loop {
            if let Ok((frame, _)) = decode_frame(&bytes) {
                return Some(frame);
            }
            match stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => bytes.extend_from_slice(&chunk[..n]),
                Err(_) => return None,
            }
        }
    };
    let expect_malformed_then_close = |payload: &[u8]| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload).unwrap();
        match read_reply(&mut stream) {
            Some(Frame::Nack {
                reason: NackReason::Malformed,
                ..
            }) => {}
            other => panic!("expected Nack::Malformed, got {other:?}"),
        }
        // The gateway closes after the nack: the next read is EOF.
        let mut rest = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            matches!(stream.read_to_end(&mut rest), Ok(0)),
            "connection must be closed after a malformed frame"
        );
    };

    // Pure garbage.
    expect_malformed_then_close(b"GET / HTTP/1.1\r\n\r\n");
    // Right magic, wrong version.
    let mut wrong_version = encode_to_vec(&Frame::Shutdown);
    wrong_version[4] = VERSION + 1;
    expect_malformed_then_close(&wrong_version);
    // Hostile length field (would be 4 GiB).
    let mut oversize = Vec::new();
    oversize.extend_from_slice(&MAGIC);
    oversize.push(VERSION);
    oversize.push(0x01);
    oversize.extend_from_slice(&[0, 0]);
    oversize.extend_from_slice(&u32::MAX.to_le_bytes());
    expect_malformed_then_close(&oversize);
    // A server → client frame at the server.
    expect_malformed_then_close(&encode_to_vec(&Frame::Ack { accepted: 1 }));
    // A policy switch on the data plane: valid wire bytes, but a
    // privileged operation untrusted reporters must not perform — the
    // privacy policy of every other client is not theirs to rewrite.
    expect_malformed_then_close(&encode_to_vec(&Frame::SwitchPolicy(
        LocationPolicyGraph::isolated(GridMap::new(8, 8, 100.0)),
    )));
    // A batch whose count field lies about the payload.
    let mut lying = encode_to_vec(&Frame::SubmitBatch(vec![
        PendingReport {
            user: UserId(1),
            epoch: 0,
            cell: CellId(1),
            resend: false,
        };
        2
    ]));
    lying[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&9999u32.to_le_bytes());
    expect_malformed_then_close(&lying);

    // A truncated frame followed by a silent close: no reply owed, and no
    // harm done.
    let mut stream = TcpStream::connect(addr).unwrap();
    let full = encode_to_vec(&Frame::Submit(PendingReport {
        user: UserId(3),
        epoch: 0,
        cell: CellId(3),
        resend: false,
    }));
    stream.write_all(&full[..full.len() - 2]).unwrap();
    drop(stream);

    // After all of that, a well-behaved client still gets clean service.
    let survivors = trace(200, 3);
    let mut client = GatewayClient::connect(addr).unwrap();
    client.submit_batch(&survivors).unwrap();
    client.shutdown().unwrap();
    let gw_stats = gateway.shutdown();
    assert!(gw_stats.malformed_nacks >= 5);
    assert_eq!(gw_stats.reports_enqueued as usize, survivors.len());
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, survivors.len());
    assert_eq!(server.n_received(), survivors.len());
}

/// The graceful-shutdown drain: reports acked before `gateway.shutdown()`
/// are all landed by the subsequent pipeline shutdown, even with the
/// client connection still open and a flush policy that never fires on
/// its own.
#[test]
fn shutdown_drain_loses_no_acked_report() {
    let trace = trace(700, 13);
    let (server, pipeline, gateway) = spawn_stack(IngestConfig {
        // Neither flush bound fires before shutdown: the drain does all
        // the landing.
        max_batch: usize::MAX,
        max_delay: Duration::from_secs(3600),
        ..Default::default()
    });
    let mut client = GatewayClient::connect(gateway.local_addr()).unwrap();
    client.submit_batch(&trace[..500]).unwrap();
    for &r in &trace[500..] {
        client.submit(r).unwrap();
    }
    // No client shutdown, no frame in flight: kill the gateway under the
    // open connection.
    let gw_stats = gateway.shutdown();
    assert_eq!(gw_stats.reports_enqueued as usize, trace.len());
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, trace.len(), "acked ⇒ landed");
    assert_eq!(server.n_received(), trace.len());
    // The abandoned client observes the close, not a hang.
    let r = trace[0];
    assert!(client.submit(r).is_err());
}

/// The idle deadline: a silent connection is dropped (freeing its
/// `max_connections` slot) while an active one lives on — idle sockets
/// cannot pin the cap and starve real clients.
#[test]
fn idle_connections_are_dropped() {
    let (server, index) = setup(4);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        IngestConfig::default(),
    );
    let gateway = IngestGateway::bind_with(
        "127.0.0.1:0",
        pipeline.handle(),
        GatewayConfig {
            idle_timeout: Duration::from_millis(100),
            poll_interval: Duration::from_millis(10),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = gateway.local_addr();
    // A silent socket: the server must hang up on it.
    let mut silent = TcpStream::connect(addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    assert!(
        matches!(silent.read_to_end(&mut sink), Ok(0)),
        "an idle connection must be closed by the gateway"
    );
    // An active client with pauses below the deadline keeps its session.
    let mut client = GatewayClient::connect(addr).unwrap();
    let r = PendingReport {
        user: UserId(1),
        epoch: 0,
        cell: CellId(1),
        resend: false,
    };
    for _ in 0..4 {
        client.submit(r).unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    client.shutdown().unwrap();
    gateway.shutdown();
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, 4);
    assert_eq!(server.n_received(), 4);
}

/// The connection cap: beyond `max_connections` live connections, new
/// ones are dropped (no thread, no buffers) until one closes — an open
/// port cannot be made to mint unbounded threads.
#[test]
fn connection_cap_rejects_excess_clients() {
    let (server, index) = setup(4);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        IngestConfig::default(),
    );
    let gateway = IngestGateway::bind_with(
        "127.0.0.1:0",
        pipeline.handle(),
        GatewayConfig {
            max_connections: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = gateway.local_addr();
    let r = PendingReport {
        user: UserId(1),
        epoch: 0,
        cell: CellId(1),
        resend: false,
    };
    let mut a = GatewayClient::connect(addr).unwrap();
    let mut b = GatewayClient::connect(addr).unwrap();
    a.submit(r).unwrap();
    b.submit(r).unwrap();
    // Both slots taken: the third connection is dropped without service.
    let mut c = GatewayClient::connect(addr).unwrap();
    assert!(
        c.submit(r).is_err(),
        "a capped-out connection must not be served"
    );
    let t0 = std::time::Instant::now();
    while gateway.stats().rejected_connections == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "rejected connection never counted"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Freeing a slot re-opens the door (the reap runs on later accepts).
    a.shutdown().unwrap();
    let t0 = std::time::Instant::now();
    loop {
        let mut d = GatewayClient::connect(addr).unwrap();
        if d.submit(r).is_ok() {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "slot never became available after a client closed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    b.shutdown().unwrap();
    gateway.shutdown();
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, 3);
}

/// The wire-scrapeable stats plane: a privileged client scrapes the
/// gateway's merged exposition over live loopback TCP and sees the
/// gateway, pipeline, pool, and per-stripe server counters move — while
/// the untrusted data plane refuses the same request.
#[test]
fn stats_scrape_over_the_wire() {
    let (_server, index) = setup(16);
    let pipeline = IngestPipeline::spawn(
        _server,
        index,
        Arc::new(GraphExponential),
        IngestConfig {
            max_batch: 10,
            ..Default::default()
        },
    );
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).unwrap();
    let operator_gw = IngestGateway::bind_shared(
        "127.0.0.1:0",
        pipeline.handle(),
        GatewayConfig::operator(),
        gateway.mailbox(),
    )
    .unwrap();

    let mut reporter = GatewayClient::connect(gateway.local_addr()).unwrap();
    reporter.submit_batch(&trace(100, 11)).unwrap();

    let mut operator = GatewayClient::connect(operator_gw.local_addr()).unwrap();
    let t0 = std::time::Instant::now();
    let text = loop {
        let text = operator.stats().unwrap();
        if text.contains("panda_ingest_landed_reports_total 100") {
            break text;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "scrape never caught up:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    // One exposition carries every scope: the serving gateway's own
    // counters, the pipeline's, and the handles it adopted from its
    // neighbours (index, pool, server stripes).
    assert!(text.contains("# TYPE panda_gateway_frames_total counter"));
    assert!(text.contains("panda_ingest_submitted_reports_total 100"));
    assert!(text.contains("panda_ingest_flush_ns_count"));
    assert!(text.contains("panda_pool_busy_workers"));
    assert!(text.contains("panda_index_distribution_touches_total"));
    let striped: u64 = text
        .lines()
        .filter(|l| l.starts_with("panda_server_shard_") && l.contains("_received_total "))
        .map(|l| l.split_whitespace().last().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(striped, 100, "per-stripe landings must sum to the batch");
    // The in-process dump serves the same plane without a socket.
    assert!(gateway
        .metrics_dump()
        .contains("# TYPE panda_gateway_frames_total counter"));

    // The data plane refuses the scrape: stats are operator business.
    assert!(
        reporter.stats().is_err(),
        "an untrusted reporter must not scrape the stats plane"
    );

    operator.shutdown().unwrap();
    gateway.shutdown();
    operator_gw.shutdown();
    pipeline.shutdown();
}

/// The telemetry non-interference contract, end to end: an operator
/// scraping the stats plane as fast as it can, concurrent with a seeded
/// ingest stream, must not move a single released byte relative to an
/// unobserved run with the same seed and arrival order.
#[test]
fn concurrent_scraping_never_perturbs_the_landed_db() {
    let trace = trace(2_000, 59);
    let horizon = 16;
    let config = IngestConfig {
        max_batch: 64,
        release_lanes: 4,
        seed: 21,
        ..Default::default()
    };

    // Unobserved reference run.
    let (ref_server, index) = setup(16);
    let ref_pipeline = IngestPipeline::spawn(
        Arc::clone(&ref_server),
        index,
        Arc::new(GraphExponential),
        config.clone(),
    );
    for &r in &trace {
        ref_pipeline.handle().submit(r).unwrap();
    }
    ref_pipeline.shutdown();
    let ref_db = ref_server.reported_db(horizon);

    // Same run with a scraper hammering the stats plane throughout.
    let (server, index) = setup(16);
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        config,
    );
    let gateway = IngestGateway::bind("127.0.0.1:0", pipeline.handle()).unwrap();
    let operator_gw = IngestGateway::bind_shared(
        "127.0.0.1:0",
        pipeline.handle(),
        GatewayConfig::operator(),
        gateway.mailbox(),
    )
    .unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let addr = operator_gw.local_addr();
        std::thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).unwrap();
            let mut scrapes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                assert!(!client.stats().unwrap().is_empty());
                scrapes += 1;
            }
            client.shutdown().unwrap();
            scrapes
        })
    };
    let mut client = GatewayClient::connect(gateway.local_addr()).unwrap();
    for chunk in trace.chunks(100) {
        client.submit_batch(chunk).unwrap();
    }
    client.shutdown().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    assert!(scrapes > 0, "the scraper must have observed the run");
    gateway.shutdown();
    operator_gw.shutdown();
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, trace.len());
    assert_eq!(
        server.reported_db(horizon).trajectories(),
        ref_db.trajectories(),
        "a concurrent stats scraper must never perturb released bytes"
    );
}

/// Many concurrent clients: all reports land exactly once, the per-client
/// per-frame ack discipline holds, and shutdown drains everyone.
#[test]
fn concurrent_clients_all_land() {
    let (server, pipeline, gateway) = spawn_stack(IngestConfig {
        max_batch: 256,
        ..Default::default()
    });
    let addr = gateway.local_addr();
    let per_client = 1_500usize;
    let clients: Vec<_> = (0..4u32)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = GatewayClient::connect(addr).unwrap();
                let reports: Vec<PendingReport> = (0..per_client as u32)
                    .map(|i| PendingReport {
                        user: UserId(c * 100_000 + i % 300),
                        epoch: (i / 300) as Timestamp,
                        cell: CellId(i % 64),
                        resend: false,
                    })
                    .collect();
                for chunk in reports.chunks(128) {
                    client.submit_batch(chunk).unwrap();
                }
                client.shutdown().unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let gw_stats = gateway.shutdown();
    assert_eq!(gw_stats.connections, 4);
    assert_eq!(gw_stats.reports_enqueued as usize, 4 * per_client);
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, 4 * per_client);
    assert_eq!(server.n_received(), 4 * per_client);
}
