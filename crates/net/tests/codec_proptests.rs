//! Property-based robustness tests for the wire codec: round trips over
//! every frame type, split-point invariance of the incremental decoder,
//! and the hostile-input contract (malformed bytes are always a typed
//! [`DecodeError`], never a panic).

use panda_core::LocationPolicyGraph;
use panda_geo::{CellId, GridMap, Point};
use panda_mobility::UserId;
use panda_net::wire::{decode_frame, encode_frame, encode_to_vec, DecodeError, HEADER_LEN};
use panda_net::{Frame, FrameDecoder, NackReason};
use panda_surveillance::ingest::{PendingReport, SequencedReport};
use panda_surveillance::protocol::{LocationReport, PolicyAssignment, ResendRequest};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn arb_pending() -> impl Strategy<Value = PendingReport> {
    (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
        |(user, epoch, cell, resend)| PendingReport {
            user: UserId(user),
            epoch,
            cell: CellId(cell),
            resend,
        },
    )
}

fn arb_location() -> impl Strategy<Value = LocationReport> {
    (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
        |(user, epoch, cell, resend)| LocationReport {
            user: UserId(user),
            epoch,
            cell: CellId(cell),
            resend,
        },
    )
}

/// A small random policy: random grid geometry (optionally anchored or
/// offset) and a random edge set over its cells.
fn arb_policy() -> impl Strategy<Value = LocationPolicyGraph> {
    (
        1u32..7,
        1u32..7,
        1u64..1000,
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
        0.0f64..0.5,
    )
        .prop_map(|(w, h, size_milli, seed, offset, anchored, density)| {
            let mut grid = GridMap::new(w, h, size_milli as f64 / 10.0);
            if offset {
                grid = grid.with_origin(Point::new(-12.5, 3.25));
            }
            if anchored {
                grid = grid.with_anchor(35.68, 139.76);
            }
            let n = grid.n_cells();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut builder = panda_graph::GraphBuilder::new(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(density) {
                        builder.edge(a, b);
                    }
                }
            }
            LocationPolicyGraph::from_graph(grid, builder.build(), format!("prop-{seed}"))
        })
}

fn arb_sequenced() -> impl Strategy<Value = SequencedReport> {
    (arb_pending(), any::<u64>(), any::<bool>()).prop_map(|(report, seq, released)| {
        SequencedReport {
            seq,
            report,
            released,
        }
    })
}

fn arb_nack_reason() -> impl Strategy<Value = NackReason> {
    prop_oneof![
        Just(NackReason::Backpressure),
        Just(NackReason::Closed),
        Just(NackReason::Malformed),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_pending().prop_map(Frame::Submit),
        proptest::collection::vec(arb_pending(), 0..60).prop_map(Frame::SubmitBatch),
        any::<u32>().prop_map(|accepted| Frame::Ack { accepted }),
        (arb_nack_reason(), any::<u32>())
            .prop_map(|(reason, accepted)| Frame::Nack { reason, accepted }),
        arb_policy().prop_map(Frame::SwitchPolicy),
        Just(Frame::Shutdown),
        arb_location().prop_map(Frame::Report),
        (arb_policy(), any::<u32>(), 0.0f64..8.0, any::<u32>()).prop_map(
            |(policy, user, eps, from)| {
                Frame::Assign(PolicyAssignment {
                    user: UserId(user),
                    policy,
                    eps_per_epoch: eps,
                    effective_from: from,
                })
            }
        ),
        (
            arb_policy(),
            any::<u32>(),
            0.0f64..8.0,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(policy, user, eps, from, to)| {
                Frame::Resend(ResendRequest {
                    user: UserId(user),
                    from,
                    to,
                    policy,
                    eps_per_epoch: eps,
                })
            }),
        proptest::collection::vec(arb_sequenced(), 0..60).prop_map(Frame::SubmitSequenced),
        any::<u32>().prop_map(|user| Frame::Fetch { user: UserId(user) }),
        Just(Frame::StatsRequest),
        // Arbitrary unicode (not just exposition-shaped text): the codec
        // must carry any string the renderer could ever produce.
        (any::<u64>(), 0usize..200).prop_map(|(seed, len)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let text: String = (0..len)
                .map(|_| char::from_u32(rng.gen::<u32>() % 0x11_0000).unwrap_or('\u{FFFD}'))
                .collect();
            Frame::StatsReply(text)
        }),
    ]
}

proptest! {
    /// Every frame round-trips bit-exactly through encode → decode.
    #[test]
    fn frames_round_trip(frame in arb_frame()) {
        let bytes = encode_to_vec(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("round trip decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// The incremental decoder yields the same frame sequence no matter
    /// where the byte stream is split — including byte-by-byte delivery.
    #[test]
    fn decoding_is_split_point_invariant(
        frames in proptest::collection::vec(arb_frame(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            encode_frame(f, &mut stream);
        }
        // Random split points.
        let mut cut_at: Vec<usize> = cuts.iter().map(|i| i % (stream.len() + 1)).collect();
        cut_at.push(0);
        cut_at.push(stream.len());
        cut_at.sort_unstable();
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for pair in cut_at.windows(2) {
            decoder.feed(&stream[pair[0]..pair[1]]);
            while let Some(f) = decoder.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// Truncating a valid frame at ANY byte boundary yields `Incomplete`
    /// from the one-shot decoder (and silence, not an error, from the
    /// incremental one) — never a panic, never a bogus frame.
    #[test]
    fn truncation_at_every_boundary_is_incomplete(frame in arb_frame()) {
        let bytes = encode_to_vec(&frame);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(DecodeError::Incomplete { needed }) => prop_assert!(needed > cut),
                other => prop_assert!(false, "cut {}: {:?}", cut, other),
            }
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bytes[..cut]);
            prop_assert_eq!(decoder.next_frame().expect("prefix is not hostile"), None);
        }
    }

    /// Arbitrary bytes never panic the decoder: they decode, wait, or fail
    /// with a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        while let Ok(Some(_)) = decoder.next_frame() {}
    }

    /// Corrupting one byte of a valid frame never panics, and header
    /// corruption is always caught (payload corruption may decode to a
    /// different valid frame — the codec carries no checksum — but must
    /// stay typed).
    #[test]
    fn single_byte_corruption_never_panics(
        frame in arb_frame(),
        at in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_to_vec(&frame);
        let at = at % bytes.len();
        bytes[at] ^= xor;
        match decode_frame(&bytes) {
            Ok(_) | Err(_) => {}
        }
    }
}

/// Deterministic spot check: a corrupted length field either truncates
/// (Incomplete), overruns (Oversize), or misparses (Malformed) — the three
/// typed outcomes ISSUE 5 demands for hostile framing.
#[test]
fn corrupted_length_field_is_typed() {
    let frame = Frame::SubmitBatch(vec![
        PendingReport {
            user: UserId(1),
            epoch: 2,
            cell: CellId(3),
            resend: false,
        };
        4
    ]);
    let good = encode_to_vec(&frame);
    for fake_len in [0u32, 1, 13, 1 << 30, u32::MAX] {
        let mut bytes = good.clone();
        bytes[8..12].copy_from_slice(&fake_len.to_le_bytes());
        match decode_frame(&bytes) {
            Ok(_) => panic!("length {fake_len} must not decode"),
            Err(
                DecodeError::Incomplete { .. }
                | DecodeError::Oversize { .. }
                | DecodeError::Malformed(_),
            ) => {}
            Err(other) => panic!("length {fake_len}: unexpected {other:?}"),
        }
    }
}

/// The decoder survives an adversarial stream that interleaves valid
/// frames with garbage: every frame before the corruption decodes, the
/// corruption is a typed error, and nothing panics.
#[test]
fn valid_prefix_then_garbage_is_cleanly_split() {
    let mut stream = Vec::new();
    let frames = [
        Frame::Submit(PendingReport {
            user: UserId(1),
            epoch: 0,
            cell: CellId(5),
            resend: true,
        }),
        Frame::Ack { accepted: 1 },
    ];
    for f in &frames {
        encode_frame(f, &mut stream);
    }
    stream.extend_from_slice(b"GARBAGEGARBAGEGARBAGE");
    let mut decoder = FrameDecoder::new();
    decoder.feed(&stream);
    assert_eq!(decoder.next_frame().unwrap(), Some(frames[0].clone()));
    assert_eq!(decoder.next_frame().unwrap(), Some(frames[1].clone()));
    assert!(matches!(
        decoder.next_frame(),
        Err(DecodeError::BadMagic(_))
    ));
}

/// A sequenced-submit frame whose report count disagrees with its payload
/// length — in either direction — is malformed, never a short read or an
/// over-read into adjacent frames.
#[test]
fn sequenced_count_payload_mismatch_is_malformed() {
    let frame = Frame::SubmitSequenced(vec![
        SequencedReport {
            seq: 7,
            report: PendingReport {
                user: UserId(1),
                epoch: 2,
                cell: CellId(3),
                resend: false,
            },
            released: false,
        };
        3
    ]);
    let good = encode_to_vec(&frame);
    // The count field sits right after the header.
    for fake_count in [0u32, 1, 2, 4, 4096, u32::MAX] {
        let mut bytes = good.clone();
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&fake_count.to_le_bytes());
        assert!(
            matches!(decode_frame(&bytes), Err(DecodeError::Malformed(_))),
            "count {fake_count} must be malformed"
        );
    }
}

/// Re-send protocol frames (`Assign`/`Resend`) carry a whole policy graph;
/// truncating the payload mid-policy — after the count/config fields but
/// inside the edge list — must stay a typed error through the incremental
/// decoder, never a panic or a bogus assignment.
#[test]
fn truncated_resend_payload_is_typed() {
    let grid = GridMap::new(4, 4, 50.0);
    let frame = Frame::Resend(ResendRequest {
        user: UserId(9),
        from: 2,
        to: 10,
        policy: LocationPolicyGraph::partition(grid, 2, 2),
        eps_per_epoch: 0.75,
    });
    let good = encode_to_vec(&frame);
    for cut in HEADER_LEN..good.len() {
        let mut bytes = good[..cut].to_vec();
        // Patch the header length down so the *frame* looks complete but
        // the *payload* is short: the inner payload parse must catch it.
        let inner = (cut - HEADER_LEN) as u32;
        bytes[8..12].copy_from_slice(&inner.to_le_bytes());
        match decode_frame(&bytes) {
            Err(DecodeError::Malformed(_)) => {}
            Ok((f, _)) => panic!("cut {cut} decoded to {f:?}"),
            Err(other) => panic!("cut {cut}: unexpected {other:?}"),
        }
    }
}

/// Padding after the declared payload is trailing-byte tampering, caught
/// even when the rest of the frame is intact.
#[test]
fn inflated_length_with_padding_is_malformed() {
    let mut bytes = encode_to_vec(&Frame::Ack { accepted: 9 });
    let padded_len = (bytes.len() - HEADER_LEN + 3) as u32;
    bytes[8..12].copy_from_slice(&padded_len.to_le_bytes());
    bytes.extend_from_slice(&[0, 0, 0]);
    assert!(matches!(
        decode_frame(&bytes),
        Err(DecodeError::Malformed(_))
    ));
}
