//! # panda-surveillance
//!
//! The PANDA system itself (paper Figs. 1 and 3): privacy-preserving
//! epidemic surveillance assembled from the PGLP core and the substrates.
//!
//! * [`client`] — a user's device: local location database holding the past
//!   two weeks (Fig. 1), consent checks, mechanism invocation, privacy
//!   budget ledger.
//! * [`server`] — the semi-honest collector: stores only *perturbed*
//!   reports, runs the three applications, never sees raw data except what
//!   policies deliberately disclose.
//! * [`ingest`] — the streaming front end: a bounded-queue pipeline that
//!   micro-batches open-loop report streams (size/deadline flush policy,
//!   backpressure), releases them over the persistent pool and lands them
//!   on the server.
//! * [`policy_config`] — the Location Policy Configuration module (Fig. 3):
//!   recommends `Ga`/`Gb`/`Gc` per application and recomputes per-user
//!   policies when diagnoses arrive.
//! * [`monitoring`] — location monitoring: coarse-area occupancy and
//!   movement matrices ("people moving between different cities").
//! * [`analysis`] — epidemic analysis: contact-rate and `R0` estimation
//!   from (perturbed) location data.
//! * [`tracing`] — contact tracing with the paper's co-location rule and
//!   the dynamic policy-update / re-send protocol of §3.2.
//! * [`health_code`] — the "health code" certification service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod client;
pub mod dashboard;
pub mod health_code;
pub mod ingest;
pub mod monitoring;
pub mod node;
pub mod policy_config;
pub mod protocol;
pub mod server;
pub mod simulation;
pub mod tracing;

pub use client::{Client, ClientConfig, ConsentRule};
pub use ingest::{
    IngestConfig, IngestHandle, IngestPipeline, IngestStats, PendingReport, SequencedReport,
};
pub use node::{merge_reported_dbs, IngestNode, ShardNode};
pub use policy_config::PolicyConfigurator;
pub use protocol::{LocationReport, PolicyAssignment, ResendRequest};
pub use server::{shard_of, Server};
pub use tracing::{ContactRule, ContactTracer, TraceOutcome};
