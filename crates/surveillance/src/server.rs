//! The semi-honest server: stores perturbed reports, serves the apps.
//!
//! The server never sees raw locations — only what clients release under
//! consented policies. It is shared state (`parking_lot::RwLock`) so the
//! three applications and the experiment harness can read concurrently
//! while reports stream in.

use crate::protocol::LocationReport;
use panda_geo::{CellId, GridMap};
use panda_mobility::{Timestamp, Trajectory, TrajectoryDb, UserId};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// Server-side state.
#[derive(Debug, Default)]
struct State {
    /// Latest report per (user, epoch) — re-sends overwrite.
    reports: HashMap<UserId, BTreeMap<Timestamp, CellId>>,
    /// Diagnosed patients with diagnosis epoch.
    diagnoses: Vec<(UserId, Timestamp)>,
    /// Confirmed infected `(epoch, cell)` visits (from patient disclosures).
    infected_visits: Vec<(Timestamp, CellId)>,
    n_received: usize,
    n_resends: usize,
}

/// The PANDA collection server.
#[derive(Debug)]
pub struct Server {
    grid: GridMap,
    state: RwLock<State>,
}

impl Server {
    /// A fresh server for the given location domain.
    pub fn new(grid: GridMap) -> Self {
        Server {
            grid,
            state: RwLock::new(State::default()),
        }
    }

    /// The location domain.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// Ingests one report (re-sends overwrite the original epoch).
    pub fn receive(&self, report: LocationReport) {
        let mut st = self.state.write();
        st.n_received += 1;
        if report.resend {
            st.n_resends += 1;
        }
        st.reports
            .entry(report.user)
            .or_default()
            .insert(report.epoch, report.cell);
    }

    /// Ingests a batch.
    pub fn receive_all<I: IntoIterator<Item = LocationReport>>(&self, reports: I) {
        for r in reports {
            self.receive(r);
        }
    }

    /// Total reports received (including overwritten ones).
    pub fn n_received(&self) -> usize {
        self.state.read().n_received
    }

    /// Number of re-sent reports received.
    pub fn n_resends(&self) -> usize {
        self.state.read().n_resends
    }

    /// Users that have reported at least once, sorted.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.state.read().reports.keys().copied().collect();
        users.sort_unstable();
        users
    }

    /// The stored (perturbed) cell for `(user, epoch)`.
    pub fn reported_cell(&self, user: UserId, epoch: Timestamp) -> Option<CellId> {
        self.state
            .read()
            .reports
            .get(&user)
            .and_then(|m| m.get(&epoch))
            .copied()
    }

    /// Registers a diagnosis (from the health system, out of band).
    pub fn record_diagnosis(&self, user: UserId, epoch: Timestamp) {
        self.state.write().diagnoses.push((user, epoch));
    }

    /// All diagnoses so far.
    pub fn diagnoses(&self) -> Vec<(UserId, Timestamp)> {
        self.state.read().diagnoses.clone()
    }

    /// Records confirmed infected visits (a diagnosed patient's disclosed
    /// history).
    pub fn record_infected_visits(&self, visits: &[(Timestamp, CellId)]) {
        self.state.write().infected_visits.extend_from_slice(visits);
    }

    /// All confirmed infected `(epoch, cell)` visits.
    pub fn infected_visits(&self) -> Vec<(Timestamp, CellId)> {
        self.state.read().infected_visits.clone()
    }

    /// The distinct confirmed infected cells.
    pub fn infected_cells(&self) -> Vec<CellId> {
        let st = self.state.read();
        let mut cells: Vec<CellId> = st.infected_visits.iter().map(|&(_, c)| c).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Materialises the server's view as a dense [`TrajectoryDb`] over
    /// `[0, horizon)`, holding the last known position for missing epochs
    /// (users with no reports at all are dropped).
    ///
    /// This is what the monitoring/analysis apps consume: the *perturbed*
    /// counterpart of the population's true trajectory database.
    pub fn reported_db(&self, horizon: Timestamp) -> TrajectoryDb {
        let st = self.state.read();
        let mut users: Vec<(&UserId, &BTreeMap<Timestamp, CellId>)> = st.reports.iter().collect();
        users.sort_by_key(|(u, _)| **u);
        let trajectories: Vec<Trajectory> = users
            .into_iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(user, m)| {
                let first = *m.values().next().expect("non-empty");
                let mut cells = Vec::with_capacity(horizon as usize);
                let mut current = first;
                for t in 0..horizon {
                    if let Some(&c) = m.get(&t) {
                        current = c;
                    }
                    cells.push(current);
                }
                Trajectory { user: *user, cells }
            })
            .collect();
        TrajectoryDb::new(self.grid.clone(), trajectories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(user: u32, epoch: Timestamp, cell: u32, resend: bool) -> LocationReport {
        LocationReport {
            user: UserId(user),
            epoch,
            cell: CellId(cell),
            resend,
        }
    }

    #[test]
    fn receive_and_query() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.receive(report(0, 0, 3, false));
        s.receive(report(0, 1, 4, false));
        s.receive(report(1, 0, 7, false));
        assert_eq!(s.n_received(), 3);
        assert_eq!(s.users(), vec![UserId(0), UserId(1)]);
        assert_eq!(s.reported_cell(UserId(0), 1), Some(CellId(4)));
        assert_eq!(s.reported_cell(UserId(1), 1), None);
    }

    #[test]
    fn resend_overwrites() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.receive(report(0, 0, 3, false));
        s.receive(report(0, 0, 9, true));
        assert_eq!(s.reported_cell(UserId(0), 0), Some(CellId(9)));
        assert_eq!(s.n_resends(), 1);
        assert_eq!(s.n_received(), 2);
    }

    #[test]
    fn reported_db_holds_last_position() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.receive_all([report(0, 0, 1, false), report(0, 3, 5, false)]);
        let db = s.reported_db(5);
        let tr = db.trajectory(UserId(0)).unwrap();
        assert_eq!(
            tr.cells,
            vec![CellId(1), CellId(1), CellId(1), CellId(5), CellId(5)]
        );
    }

    #[test]
    fn diagnoses_and_infected_cells() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.record_diagnosis(UserId(2), 40);
        s.record_infected_visits(&[(38, CellId(3)), (39, CellId(3)), (40, CellId(8))]);
        assert_eq!(s.diagnoses(), vec![(UserId(2), 40)]);
        assert_eq!(s.infected_cells(), vec![CellId(3), CellId(8)]);
    }

    #[test]
    fn concurrent_reads_while_writing() {
        use std::sync::Arc;
        let s = Arc::new(Server::new(GridMap::new(4, 4, 100.0)));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for t in 0..200 {
                    s.receive(report(0, t, t % 16, false));
                }
            })
        };
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    seen = seen.max(s.n_received());
                }
                seen
            })
        };
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(seen <= 200);
        assert_eq!(s.n_received(), 200);
    }
}
