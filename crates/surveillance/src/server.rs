//! The semi-honest server: stores perturbed reports, serves the apps.
//!
//! The server never sees raw locations — only what clients release under
//! consented policies. Report storage is **sharded by user** into
//! lock-striped partitions so millions of concurrent report streams don't
//! serialise on one global lock:
//!
//! * [`Server::receive`] locks exactly one shard;
//! * [`Server::receive_batch`] groups the batch by shard first and then
//!   locks each touched shard **once**, which is how the parallel release
//!   engine (`panda_core::release::ParallelReleaser`) feeds output in;
//! * ingest counters are per-shard atomics (no lock at all), aggregated on
//!   read;
//! * low-volume epidemiological facts (diagnoses, infected visits) stay
//!   under a single `RwLock` — they arrive out of band, not on the ingest
//!   hot path.
//!
//! Read-side queries aggregate across shards; between ingest rounds a
//! sharded server is observationally equivalent to the PR-1 single-lock
//! server (see the `sharding_is_observationally_equivalent` test). A
//! reader racing an in-flight `receive_batch` may observe the batch
//! partially applied (per-shard atomicity, not whole-batch) — the price of
//! lock striping; the surveillance apps read between phases, never
//! mid-ingest.

use crate::protocol::LocationReport;
use panda_check::ordered::{rank, OrderedRwLock};
use panda_geo::{CellId, GridMap};
use panda_mobility::{Timestamp, Trajectory, TrajectoryDb, UserId};
use panda_obs::{Counter, Registry};
// Per-user stores are keyed by UserId; every read path (users,
// reported_db) sorts before exposing an iteration order.
// panda-check: allow(unordered_iter): read paths sort first
use std::collections::{BTreeMap, HashMap};

/// One lock stripe: the report store of every user hashing to this shard,
/// plus its lock-free ingest counters.
#[derive(Debug)]
struct Shard {
    /// Latest report per (user, epoch) — re-sends overwrite.
    // panda-check: allow(unordered_iter): read paths sort (see module doc).
    reports: OrderedRwLock<HashMap<UserId, BTreeMap<Timestamp, CellId>>>,
    n_received: Counter,
    n_resends: Counter,
}

impl Shard {
    fn new() -> Self {
        Shard {
            // panda-check: allow(unordered_iter): same store as the field.
            reports: OrderedRwLock::new(rank::SERVER_STRIPE, HashMap::new()),
            n_received: Counter::new(),
            n_resends: Counter::new(),
        }
    }
}

/// Out-of-band epidemiological state (not sharded: low volume).
#[derive(Debug, Default)]
struct HealthState {
    /// Diagnosed patients with diagnosis epoch.
    diagnoses: Vec<(UserId, Timestamp)>,
    /// Confirmed infected `(epoch, cell)` visits (from patient disclosures).
    infected_visits: Vec<(Timestamp, CellId)>,
}

/// The PANDA collection server.
#[derive(Debug)]
pub struct Server {
    grid: GridMap,
    shards: Vec<Shard>,
    health: OrderedRwLock<HealthState>,
}

/// The shard a user routes to out of `n_shards` (≥ 1) — the one pure
/// function behind **every** user-partitioned tier: the server's lock
/// stripes, and the multi-node router's shard-node fan-out
/// (`panda_net::router::ShardRouter`). Sharing it is what makes "shard
/// node *i* owns exactly the users the server would stripe to *i*" true by
/// construction.
///
/// The raw ID is mixed through a SplitMix64-style finaliser before the
/// modulo: `user.0 % n_shards` would collapse any stride-aligned ID
/// population (IDs stepping by 16 with 16 stripes, a common allocator
/// pattern) onto a single stripe and serialise the whole tier. The
/// finaliser is bijective, so distinct users still spread and the routing
/// stays a pure function of the ID.
#[inline]
pub fn shard_of(user: UserId, n_shards: usize) -> usize {
    let z = panda_core::release::splitmix64(u64::from(user.0).wrapping_add(0x9E37_79B9_7F4A_7C15));
    (z % n_shards.max(1) as u64) as usize
}

impl Server {
    /// Default shard count: enough stripes that a batch from each core
    /// rarely contends, without fragmenting read-side aggregation.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A fresh server for the given location domain with
    /// [`Server::DEFAULT_SHARDS`] lock stripes.
    pub fn new(grid: GridMap) -> Self {
        Self::with_shards(grid, Self::DEFAULT_SHARDS)
    }

    /// A fresh server with an explicit shard count (≥ 1). `with_shards(g, 1)`
    /// is the PR-1 single-lock server.
    pub fn with_shards(grid: GridMap, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let mut shards = Vec::with_capacity(n_shards);
        shards.resize_with(n_shards, Shard::new);
        Server {
            grid,
            shards,
            health: OrderedRwLock::new(rank::SERVER_HEALTH, HealthState::default()),
        }
    }

    /// The location domain.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// Number of lock stripes.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The lock stripe of a user (stable for the server's lifetime):
    /// the free function [`shard_of`] over this server's stripe count.
    #[inline]
    fn shard_of(&self, user: UserId) -> usize {
        shard_of(user, self.shards.len())
    }

    /// Reports received per lock stripe (ingest-side load view, aggregated
    /// from the per-shard atomic counters). A healthy ID population spreads
    /// across all stripes; a single hot stripe means routing collapse.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.n_received.get() as usize)
            .collect()
    }

    /// Adopts the per-stripe landing counters into `registry` under
    /// zero-padded `panda_server_shard_*` names (so the rendered exposition
    /// keeps stripe order under lexicographic sorting).
    pub fn register_metrics(&self, registry: &Registry) {
        for (i, shard) in self.shards.iter().enumerate() {
            registry.register_counter(
                &format!("panda_server_shard_{i:03}_received_total"),
                &shard.n_received,
            );
            registry.register_counter(
                &format!("panda_server_shard_{i:03}_resends_total"),
                &shard.n_resends,
            );
        }
    }

    /// Ingests one report (re-sends overwrite the original epoch). Locks
    /// exactly one shard.
    pub fn receive(&self, report: LocationReport) {
        let shard = &self.shards[self.shard_of(report.user)];
        shard.n_received.inc();
        if report.resend {
            shard.n_resends.inc();
        }
        shard
            .reports
            .write()
            .entry(report.user)
            .or_default()
            .insert(report.epoch, report.cell);
    }

    /// Ingests a batch: groups reports by shard, then locks each touched
    /// shard once. Within a user the input order is preserved, so
    /// re-send overwrite semantics match sequential [`Server::receive`]
    /// calls.
    pub fn receive_batch(&self, reports: Vec<LocationReport>) {
        let mut by_shard: Vec<Vec<LocationReport>> = Vec::new();
        by_shard.resize_with(self.shards.len(), Vec::new);
        for r in reports {
            by_shard[self.shard_of(r.user)].push(r);
        }
        for (shard, group) in self.shards.iter().zip(by_shard) {
            if group.is_empty() {
                continue;
            }
            shard.n_received.add(group.len() as u64);
            let resends = group.iter().filter(|r| r.resend).count();
            if resends > 0 {
                shard.n_resends.add(resends as u64);
            }
            let mut store = shard.reports.write();
            for r in group {
                store.entry(r.user).or_default().insert(r.epoch, r.cell);
            }
        }
    }

    /// Ingests from an iterator (collects, then batches by shard).
    pub fn receive_all<I: IntoIterator<Item = LocationReport>>(&self, reports: I) {
        self.receive_batch(reports.into_iter().collect());
    }

    /// Total reports received (including overwritten ones), aggregated
    /// across shards.
    pub fn n_received(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.n_received.get() as usize)
            .sum()
    }

    /// Number of re-sent reports received, aggregated across shards.
    pub fn n_resends(&self) -> usize {
        self.shards.iter().map(|s| s.n_resends.get() as usize).sum()
    }

    /// Users that have reported at least once, sorted.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self
            .shards
            .iter()
            .flat_map(|s| s.reports.read().keys().copied().collect::<Vec<_>>())
            .collect();
        users.sort_unstable();
        users
    }

    /// The stored (perturbed) cell for `(user, epoch)`.
    pub fn reported_cell(&self, user: UserId, epoch: Timestamp) -> Option<CellId> {
        self.shards[self.shard_of(user)]
            .reports
            .read()
            .get(&user)
            .and_then(|m| m.get(&epoch))
            .copied()
    }

    /// Registers a diagnosis (from the health system, out of band).
    pub fn record_diagnosis(&self, user: UserId, epoch: Timestamp) {
        self.health.write().diagnoses.push((user, epoch));
    }

    /// All diagnoses so far.
    pub fn diagnoses(&self) -> Vec<(UserId, Timestamp)> {
        self.health.read().diagnoses.clone()
    }

    /// Records confirmed infected visits (a diagnosed patient's disclosed
    /// history).
    pub fn record_infected_visits(&self, visits: &[(Timestamp, CellId)]) {
        self.health
            .write()
            .infected_visits
            .extend_from_slice(visits);
    }

    /// All confirmed infected `(epoch, cell)` visits.
    pub fn infected_visits(&self) -> Vec<(Timestamp, CellId)> {
        self.health.read().infected_visits.clone()
    }

    /// The distinct confirmed infected cells.
    pub fn infected_cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self
            .health
            .read()
            .infected_visits
            .iter()
            .map(|&(_, c)| c)
            .collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Materialises the server's view as a dense [`TrajectoryDb`] over
    /// `[0, horizon)`, holding the last known position for missing epochs
    /// (users with no reports at all are dropped).
    ///
    /// This is what the monitoring/analysis apps consume: the *perturbed*
    /// counterpart of the population's true trajectory database.
    pub fn reported_db(&self, horizon: Timestamp) -> TrajectoryDb {
        let mut trajectories: Vec<Trajectory> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let store = shard.reports.read();
                store
                    .iter()
                    .filter(|(_, m)| !m.is_empty())
                    .map(|(user, m)| {
                        let first = *m.values().next().expect("non-empty");
                        let mut cells = Vec::with_capacity(horizon as usize);
                        let mut current = first;
                        for t in 0..horizon {
                            if let Some(&c) = m.get(&t) {
                                current = c;
                            }
                            cells.push(current);
                        }
                        Trajectory { user: *user, cells }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        trajectories.sort_by_key(|tr| tr.user);
        TrajectoryDb::new(self.grid.clone(), trajectories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn report(user: u32, epoch: Timestamp, cell: u32, resend: bool) -> LocationReport {
        LocationReport {
            user: UserId(user),
            epoch,
            cell: CellId(cell),
            resend,
        }
    }

    #[test]
    fn receive_and_query() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.receive(report(0, 0, 3, false));
        s.receive(report(0, 1, 4, false));
        s.receive(report(1, 0, 7, false));
        assert_eq!(s.n_received(), 3);
        assert_eq!(s.users(), vec![UserId(0), UserId(1)]);
        assert_eq!(s.reported_cell(UserId(0), 1), Some(CellId(4)));
        assert_eq!(s.reported_cell(UserId(1), 1), None);
    }

    #[test]
    fn resend_overwrites() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.receive(report(0, 0, 3, false));
        s.receive(report(0, 0, 9, true));
        assert_eq!(s.reported_cell(UserId(0), 0), Some(CellId(9)));
        assert_eq!(s.n_resends(), 1);
        assert_eq!(s.n_received(), 2);
    }

    #[test]
    fn batch_preserves_per_user_order() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        // Same (user, epoch) twice in one batch: the later entry wins, as
        // with sequential receive calls.
        s.receive_batch(vec![report(3, 0, 1, false), report(3, 0, 2, true)]);
        assert_eq!(s.reported_cell(UserId(3), 0), Some(CellId(2)));
        assert_eq!(s.n_received(), 2);
        assert_eq!(s.n_resends(), 1);
    }

    #[test]
    fn reported_db_holds_last_position() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.receive_all([report(0, 0, 1, false), report(0, 3, 5, false)]);
        let db = s.reported_db(5);
        let tr = db.trajectory(UserId(0)).unwrap();
        assert_eq!(
            tr.cells,
            vec![CellId(1), CellId(1), CellId(1), CellId(5), CellId(5)]
        );
    }

    #[test]
    fn diagnoses_and_infected_cells() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        s.record_diagnosis(UserId(2), 40);
        s.record_infected_visits(&[(38, CellId(3)), (39, CellId(3)), (40, CellId(8))]);
        assert_eq!(s.diagnoses(), vec![(UserId(2), 40)]);
        assert_eq!(s.infected_cells(), vec![CellId(3), CellId(8)]);
    }

    /// The scripted op-sequence oracle: every observable of a sharded
    /// server must match the single-lock (`with_shards == 1`) server under
    /// an identical interleaving of receives, re-sends and reads.
    #[test]
    fn sharding_is_observationally_equivalent() {
        let grid = GridMap::new(8, 8, 100.0);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut ops: Vec<LocationReport> = Vec::new();
        for _ in 0..2000 {
            ops.push(report(
                rng.gen_range(0..37),
                rng.gen_range(0..24),
                rng.gen_range(0..64),
                rng.gen_bool(0.2),
            ));
        }
        let single = Server::with_shards(grid.clone(), 1);
        let sharded = Server::with_shards(grid.clone(), 7);
        // Interleave single receives, batches and mid-stream reads.
        for (i, chunk) in ops.chunks(17).enumerate() {
            if i % 2 == 0 {
                for &r in chunk {
                    single.receive(r);
                    sharded.receive(r);
                }
            } else {
                single.receive_batch(chunk.to_vec());
                sharded.receive_batch(chunk.to_vec());
            }
            assert_eq!(single.n_received(), sharded.n_received());
            assert_eq!(single.n_resends(), sharded.n_resends());
        }
        assert_eq!(single.users(), sharded.users());
        for u in single.users() {
            for t in 0..24 {
                assert_eq!(single.reported_cell(u, t), sharded.reported_cell(u, t));
            }
        }
        let (a, b) = (single.reported_db(24), sharded.reported_db(24));
        assert_eq!(a.trajectories(), b.trajectories());
    }

    /// Regression: `user.0 % shards` sent every stride-aligned ID
    /// population (IDs stepping by the stripe count) to one stripe. The
    /// mixed routing must spread such a workload across all stripes while
    /// staying a stable pure function of the user ID.
    #[test]
    fn stride_aligned_users_spread_across_all_stripes() {
        let s = Server::new(GridMap::new(4, 4, 100.0));
        assert_eq!(s.n_shards(), 16);
        // 256 users whose IDs step by exactly the stripe count — the
        // worst case for the raw modulo, which maps them all to stripe 0.
        for i in 0..256u32 {
            s.receive(report(i * 16, 0, 3, false));
        }
        let loads = s.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 256);
        let occupied = loads.iter().filter(|&&n| n > 0).count();
        assert_eq!(
            occupied,
            s.n_shards(),
            "stride-16 workload collapsed onto {occupied} stripes: {loads:?}"
        );
        // No pathological hot stripe either: each holds well under the
        // whole population (expected 16 ± a few under the mixed routing).
        assert!(loads.iter().all(|&n| n < 64), "hot stripe in {loads:?}");
    }

    /// Per-user routing is stable: every observable keyed by user works
    /// after the mix, and repeated sends for one user land on one stripe.
    #[test]
    fn mixed_shard_routing_is_stable_per_user() {
        let s = Server::with_shards(GridMap::new(4, 4, 100.0), 7);
        for t in 0..20 {
            s.receive(report(4242, t, t % 16, false));
        }
        // All 20 reports routed to the same stripe…
        let loads = s.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 20);
        assert_eq!(loads.iter().filter(|&&n| n > 0).count(), 1);
        // …and the read path finds them all again.
        for t in 0..20 {
            assert_eq!(s.reported_cell(UserId(4242), t), Some(CellId(t % 16)));
        }
    }

    #[test]
    fn concurrent_batch_ingest_totals() {
        use std::sync::Arc;
        let s = Arc::new(Server::with_shards(GridMap::new(4, 4, 100.0), 8));
        let writers: Vec<_> = (0..4u32)
            .map(|w| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let batch: Vec<LocationReport> = (0..500)
                        .map(|i| report(w * 100 + i % 50, i / 50, (w + i) % 16, false))
                        .collect();
                    s.receive_batch(batch);
                })
            })
            .collect();
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    seen = seen.max(s.n_received());
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let seen = reader.join().unwrap();
        assert!(seen <= 2000);
        assert_eq!(s.n_received(), 2000);
        assert_eq!(s.users().len(), 200);
    }

    #[test]
    fn concurrent_reads_while_writing() {
        use std::sync::Arc;
        let s = Arc::new(Server::new(GridMap::new(4, 4, 100.0)));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for t in 0..200 {
                    s.receive(report(0, t, t % 16, false));
                }
            })
        };
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    seen = seen.max(s.n_received());
                }
                seen
            })
        };
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(seen <= 200);
        assert_eq!(s.n_received(), 200);
    }
}
