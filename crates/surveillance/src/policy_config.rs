//! The Location Policy Configuration module (Fig. 3).
//!
//! "Location Policy Configuration defines different location policies
//! according to the application of epidemic surveillance" (§3.1). This
//! module encodes the three recommendations of Fig. 4 and the dynamic
//! update that drives contact tracing: when a patient's location history is
//! confirmed, their visited cells are isolated in the policies of at-risk
//! users so those locations can be disclosed on re-send (§3.2).

use panda_core::LocationPolicyGraph;
use panda_geo::{CellId, GridMap};

/// Policy recommender for the three surveillance applications.
#[derive(Debug, Clone)]
pub struct PolicyConfigurator {
    grid: GridMap,
    /// Block size (cells) of the coarse `Ga` partition.
    pub coarse_block: u32,
    /// Block size (cells) of the finer `Gb` partition.
    pub fine_block: u32,
}

impl PolicyConfigurator {
    /// A configurator with the given partition granularities.
    ///
    /// # Panics
    ///
    /// Panics when the fine block is not strictly smaller than the coarse
    /// block (the whole point of `Gb` is finer granularity).
    pub fn new(grid: GridMap, coarse_block: u32, fine_block: u32) -> Self {
        assert!(
            fine_block < coarse_block,
            "Gb must be finer-grained than Ga"
        );
        assert!(fine_block >= 1);
        PolicyConfigurator {
            grid,
            coarse_block,
            fine_block,
        }
    }

    /// The shared grid.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// `Ga` (Fig. 4 left): coarse areas for **location monitoring** —
    /// "indistinguishability inside each coarse-grained area", movement
    /// between areas visible.
    pub fn for_monitoring(&self) -> LocationPolicyGraph {
        LocationPolicyGraph::partition(self.grid.clone(), self.coarse_block, self.coarse_block)
    }

    /// `Gb` (Fig. 4 middle): finer areas for **epidemic analysis**, where
    /// fine-grained data improves parameter estimation (R0).
    pub fn for_analysis(&self) -> LocationPolicyGraph {
        LocationPolicyGraph::partition(self.grid.clone(), self.fine_block, self.fine_block)
    }

    /// `Gc` (Fig. 4 right): the **contact tracing** policy — the analysis
    /// policy with every infected cell isolated, so that visiting an
    /// infected location may be disclosed exactly while all other locations
    /// keep their indistinguishability.
    pub fn for_contact_tracing(&self, infected_cells: &[CellId]) -> LocationPolicyGraph {
        self.for_analysis().with_isolated(infected_cells)
    }

    /// Dynamic update on diagnosis (§3.2): given the patient's confirmed
    /// `(epoch, cell)` history, produce the updated policy for at-risk
    /// users. The infected-location set is the patient's distinct cells.
    pub fn update_on_diagnosis(
        &self,
        patient_history: &[(panda_mobility::Timestamp, CellId)],
    ) -> LocationPolicyGraph {
        let mut cells: Vec<CellId> = patient_history.iter().map(|&(_, c)| c).collect();
        cells.sort_unstable();
        cells.dedup();
        self.for_contact_tracing(&cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configurator() -> PolicyConfigurator {
        PolicyConfigurator::new(GridMap::new(8, 8, 100.0), 4, 2)
    }

    #[test]
    fn ga_is_coarser_than_gb() {
        let c = configurator();
        let ga = c.for_monitoring();
        let gb = c.for_analysis();
        assert_eq!(ga.n_components(), 4); // 8x8 with 4x4 blocks
        assert_eq!(gb.n_components(), 16); // 2x2 blocks
                                           // Coarser partition = larger components = higher per-cell degree.
        assert!(ga.graph().degree(0) > gb.graph().degree(0));
    }

    #[test]
    fn gc_isolates_infected_cells_only() {
        let c = configurator();
        let infected = vec![CellId(0), CellId(9)];
        let gc = c.for_contact_tracing(&infected);
        assert!(gc.is_isolated_cell(CellId(0)));
        assert!(gc.is_isolated_cell(CellId(9)));
        // A cell in another block keeps its clique.
        assert!(!gc.is_isolated_cell(CellId(36)));
        // Its component is its Gb block minus nothing.
        assert_eq!(gc.component_cells(CellId(36)).len(), 4);
    }

    #[test]
    fn update_on_diagnosis_dedups_history() {
        let c = configurator();
        let history = vec![(0, CellId(5)), (1, CellId(5)), (2, CellId(12))];
        let gc = c.update_on_diagnosis(&history);
        assert!(gc.is_isolated_cell(CellId(5)));
        assert!(gc.is_isolated_cell(CellId(12)));
        assert!(!gc.is_isolated_cell(CellId(0)));
    }

    #[test]
    #[should_panic(expected = "finer-grained")]
    fn inverted_granularity_panics() {
        PolicyConfigurator::new(GridMap::new(8, 8, 100.0), 2, 4);
    }
}
