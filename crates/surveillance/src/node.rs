//! [`ShardNode`]: one shard's slice of the ingest stack as a unit.
//!
//! PANDA's deployment shape is population-scale; one process cannot own
//! the whole ingest tier forever. This module slices the monolith —
//! gateway → pipeline → server — along the user-sharding axis that the
//! server already has: a `ShardNode` owns **one** [`Server`] slice, its
//! own [`IngestPipeline`] (with its own release lanes), and its own
//! policy index, and a routing tier (`panda_net::router::ShardRouter`)
//! fans client streams across N of them by [`shard_of`].
//!
//! The single-process pipeline is the N=1 degenerate case: both
//! [`IngestHandle`] and [`ShardNode`] implement [`IngestNode`], so every
//! consumer of the trait — the router's local backend, tests, benches —
//! runs unchanged against either topology.
//!
//! ## Determinism
//!
//! A node releases pending reports from `chunk_rng(seed, seq)` where
//! `seq` is stamped **upstream** (the router stamps client stream
//! positions). All nodes of a cluster share one seed, users are disjoint
//! across nodes (routing is a pure function of the ID), and released
//! cells are pure functions of `(seed, seq)` — so merging the per-node
//! databases ([`merge_reported_dbs`]) reproduces the single-process
//! pipeline's database byte for byte for the same arrival order.

use crate::ingest::{
    IngestConfig, IngestHandle, IngestPipeline, IngestStats, SequencedReport, TrySubmitError,
    TrySwitchError,
};
use crate::protocol::LocationReport;
use crate::server::Server;
use panda_core::{Mechanism, PolicyIndex, ReleasePool};
use panda_geo::GridMap;
use panda_mobility::{Timestamp, Trajectory, TrajectoryDb};
use std::sync::Arc;

/// The ingest-tier surface a routing tier needs from one shard's slice,
/// implemented by both the single-process [`IngestHandle`] (the N=1
/// degenerate case) and a [`ShardNode`].
///
/// Everything is non-blocking: a router thread must never park on a
/// downstream queue, so submission returns an **accepted prefix** and a
/// full queue is partial progress, not an error.
pub trait IngestNode: Send + Sync {
    /// Enqueues the longest prefix of upstream-sequenced reports that
    /// fits right now and returns its length (see
    /// [`IngestHandle::try_submit_sequenced`]).
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Closed`] when the node has shut down.
    fn try_submit_sequenced(&self, reports: &[SequencedReport]) -> Result<usize, TrySubmitError>;

    /// Enqueues the longest prefix of already-perturbed reports that fits
    /// right now and returns its length (see
    /// [`IngestHandle::try_submit_released`]).
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Closed`] when the node has shut down.
    fn try_submit_released(&self, reports: &[LocationReport]) -> Result<usize, TrySubmitError>;

    /// Switches the policy index for all later reports, failing fast at
    /// capacity (see [`IngestHandle::try_switch_policy`]).
    ///
    /// # Errors
    ///
    /// [`TrySwitchError::Full`] at capacity, [`TrySwitchError::Closed`]
    /// when the node has shut down.
    fn try_switch_policy(&self, index: Arc<PolicyIndex>) -> Result<(), TrySwitchError>;

    /// Messages currently queued (racy by nature; backpressure/health
    /// observable for the router and for drain assertions in tests).
    fn queue_len(&self) -> usize;

    /// The bounded queue's fixed capacity.
    fn queue_capacity(&self) -> usize;
}

impl IngestNode for IngestHandle {
    fn try_submit_sequenced(&self, reports: &[SequencedReport]) -> Result<usize, TrySubmitError> {
        IngestHandle::try_submit_sequenced(self, reports)
    }

    fn try_submit_released(&self, reports: &[LocationReport]) -> Result<usize, TrySubmitError> {
        IngestHandle::try_submit_released(self, reports)
    }

    fn try_switch_policy(&self, index: Arc<PolicyIndex>) -> Result<(), TrySwitchError> {
        IngestHandle::try_switch_policy(self, index)
    }

    fn queue_len(&self) -> usize {
        IngestHandle::queue_len(self)
    }

    fn queue_capacity(&self) -> usize {
        IngestHandle::queue_capacity(self)
    }
}

/// One shard's slice of the ingest stack: a [`Server`] holding only this
/// shard's users, an [`IngestPipeline`] releasing over the node's **own**
/// [`ReleasePool`] lanes, and the node's current policy index.
///
/// Nodes are self-contained on purpose — each can run as its own process
/// behind a `panda_net::IngestGateway`, or in-process as a router's local
/// backend; the loopback cluster tests run both shapes.
pub struct ShardNode {
    server: Arc<Server>,
    handle: IngestHandle,
    pipeline: Option<IngestPipeline>,
    // Dropped after the pipeline: flushes in flight borrow its workers.
    _pool: Option<Arc<ReleasePool>>,
}

impl ShardNode {
    /// Spawns a node over `server`, releasing through `mech` under
    /// `index`, with `release_lanes` dedicated pool workers (the node
    /// owns its lanes — one node's flush storm cannot starve another's).
    pub fn spawn(
        server: Arc<Server>,
        index: Arc<PolicyIndex>,
        mech: Arc<dyn Mechanism + Send + Sync>,
        config: IngestConfig,
    ) -> Self {
        let pool = Arc::new(ReleasePool::new(config.release_lanes.max(1)));
        let pipeline =
            IngestPipeline::spawn_on(Arc::clone(&server), index, mech, config, Arc::clone(&pool));
        let handle = pipeline.handle();
        ShardNode {
            server,
            handle,
            pipeline: Some(pipeline),
            _pool: Some(pool),
        }
    }

    /// This node's server slice.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// A producer handle onto the node's queue (clone freely).
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Shuts the pipeline down (drains everything queued before the call)
    /// and returns its stats.
    pub fn shutdown(mut self) -> IngestStats {
        self.pipeline
            .take()
            .expect("pipeline shut down once")
            .shutdown()
    }
}

impl IngestNode for ShardNode {
    fn try_submit_sequenced(&self, reports: &[SequencedReport]) -> Result<usize, TrySubmitError> {
        self.handle.try_submit_sequenced(reports)
    }

    fn try_submit_released(&self, reports: &[LocationReport]) -> Result<usize, TrySubmitError> {
        self.handle.try_submit_released(reports)
    }

    fn try_switch_policy(&self, index: Arc<PolicyIndex>) -> Result<(), TrySwitchError> {
        self.handle.try_switch_policy(index)
    }

    fn queue_len(&self) -> usize {
        self.handle.queue_len()
    }

    fn queue_capacity(&self) -> usize {
        self.handle.queue_capacity()
    }
}

/// Merges per-node reported databases into the single database the
/// monolithic server would have produced.
///
/// Routing partitions users across nodes (disjoint by construction), so
/// the merge is a concatenation of each node's
/// [`Server::reported_db`] trajectories re-sorted by user — no conflict
/// resolution exists to do. All nodes must share `grid`.
pub fn merge_reported_dbs(
    grid: GridMap,
    nodes: &[Arc<Server>],
    horizon: Timestamp,
) -> TrajectoryDb {
    let mut trajectories: Vec<Trajectory> = nodes
        .iter()
        .flat_map(|s| s.reported_db(horizon).trajectories().to_vec())
        .collect();
    trajectories.sort_by_key(|tr| tr.user);
    TrajectoryDb::new(grid, trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::PendingReport;
    use crate::server::shard_of;
    use panda_core::{GraphExponential, LocationPolicyGraph};
    use panda_geo::CellId;
    use panda_mobility::UserId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn grid() -> GridMap {
        GridMap::new(8, 8, 100.0)
    }

    fn index() -> Arc<PolicyIndex> {
        Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
            grid(),
            2,
            2,
        )))
    }

    fn trace(n: usize, seed: u64) -> Vec<PendingReport> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| PendingReport {
                user: UserId(rng.gen_range(0..200)),
                epoch: (i / 200) as Timestamp,
                cell: CellId(rng.gen_range(0..64)),
                resend: false,
            })
            .collect()
    }

    fn config() -> IngestConfig {
        IngestConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(1),
            release_lanes: 2,
            seed: 7,
            ..IngestConfig::default()
        }
    }

    /// N shard nodes fed stamped stream positions land byte-identically
    /// to the single-process pipeline fed the same order — in-process,
    /// before any wire gets involved (the loopback cluster tests add the
    /// TCP layers on top).
    #[test]
    fn sharded_nodes_merge_to_the_single_process_db() {
        let reports = trace(3000, 42);

        let reference = Arc::new(Server::new(grid()));
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&reference),
            index(),
            Arc::new(GraphExponential),
            config(),
        );
        let h = pipeline.handle();
        for &r in &reports {
            h.submit(r).unwrap();
        }
        pipeline.shutdown();
        let want = reference.reported_db(16);

        for n in [1usize, 2, 4] {
            let nodes: Vec<ShardNode> = (0..n)
                .map(|_| {
                    ShardNode::spawn(
                        Arc::new(Server::new(grid())),
                        index(),
                        Arc::new(GraphExponential),
                        config(),
                    )
                })
                .collect();
            for (seq, &r) in reports.iter().enumerate() {
                let node = &nodes[shard_of(r.user, n)];
                let entry = SequencedReport {
                    seq: seq as u64,
                    report: r,
                    released: false,
                };
                // Full queues retry; `Closed` would be a test bug.
                loop {
                    match node.try_submit_sequenced(&[entry]) {
                        Ok(1) => break,
                        Ok(_) => std::thread::yield_now(),
                        Err(e) => panic!("node closed mid-test: {e}"),
                    }
                }
            }
            let servers: Vec<Arc<Server>> =
                nodes.iter().map(|nd| Arc::clone(nd.server())).collect();
            for node in nodes {
                node.shutdown();
            }
            let got = merge_reported_dbs(grid(), &servers, 16);
            assert_eq!(
                got.trajectories(),
                want.trajectories(),
                "{n}-node merge diverged from the single-process db"
            );
        }
    }

    /// Released (pre-perturbed) reports land verbatim and keep overwrite
    /// order against pending reports in the same stream.
    #[test]
    fn released_reports_land_verbatim_in_stream_order() {
        let server = Arc::new(Server::new(grid()));
        let node = ShardNode::spawn(
            Arc::clone(&server),
            index(),
            Arc::new(GraphExponential),
            config(),
        );
        let released = LocationReport {
            user: UserId(3),
            epoch: 0,
            cell: CellId(63),
            resend: true,
        };
        // A pending report for the same (user, epoch) first; the released
        // re-send must overwrite it, queue order deciding.
        node.try_submit_sequenced(&[SequencedReport {
            seq: 0,
            report: PendingReport {
                user: UserId(3),
                epoch: 0,
                cell: CellId(1),
                resend: false,
            },
            released: false,
        }])
        .unwrap();
        assert_eq!(node.try_submit_released(&[released]), Ok(1));
        node.shutdown();
        assert_eq!(server.reported_cell(UserId(3), 0), Some(CellId(63)));
        assert_eq!(server.n_resends(), 1);
    }

    /// `shard_of` routing and server striping agree: a node's server slice
    /// only ever sees users that route to it.
    #[test]
    fn routing_is_a_pure_function_of_the_user() {
        for n in [1usize, 2, 4, 16] {
            for u in 0..500u32 {
                let a = shard_of(UserId(u), n);
                let b = shard_of(UserId(u), n);
                assert_eq!(a, b);
                assert!(a < n);
            }
        }
    }
}
