//! Wire types between clients and the server.
//!
//! The protocol is deliberately minimal: the server pushes policy
//! assignments (which the user may refuse — §2.1: "the user has the right
//! to reject a privacy policy so that no location will be released"),
//! clients push perturbed location reports, and after a diagnosis the
//! server asks affected clients to **re-send** a past window under an
//! updated policy (§3.2).

use panda_core::LocationPolicyGraph;
use panda_geo::CellId;
use panda_mobility::{Timestamp, UserId};
use serde::{Deserialize, Serialize};

/// Server → client: a recommended policy and per-epoch budget.
#[derive(Debug, Clone)]
pub struct PolicyAssignment {
    /// Target user.
    pub user: UserId,
    /// The policy graph to apply from `effective_from` onwards.
    pub policy: LocationPolicyGraph,
    /// ε per release epoch under this policy.
    pub eps_per_epoch: f64,
    /// First epoch the policy applies to.
    pub effective_from: Timestamp,
}

/// Client → server: one perturbed location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationReport {
    /// Reporting user.
    pub user: UserId,
    /// Epoch the location belongs to.
    pub epoch: Timestamp,
    /// The *perturbed* cell.
    pub cell: CellId,
    /// `true` when this report supersedes an earlier one for the same epoch
    /// (produced by the re-send protocol).
    pub resend: bool,
}

/// Server → client: please re-send `[from, to)` under the attached policy
/// (used after a diagnosis updates the infected-location set).
#[derive(Debug, Clone)]
pub struct ResendRequest {
    /// Target user.
    pub user: UserId,
    /// Window start (inclusive).
    pub from: Timestamp,
    /// Window end (exclusive).
    pub to: Timestamp,
    /// Updated policy (a `Gc` with infected cells isolated).
    pub policy: LocationPolicyGraph,
    /// ε per re-sent epoch.
    pub eps_per_epoch: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;

    #[test]
    fn report_equality_and_copy() {
        let r = LocationReport {
            user: UserId(3),
            epoch: 7,
            cell: CellId(11),
            resend: false,
        };
        let r2 = r;
        assert_eq!(r, r2);
    }

    #[test]
    fn assignment_carries_policy() {
        let p = LocationPolicyGraph::partition(GridMap::new(4, 4, 100.0), 2, 2);
        let a = PolicyAssignment {
            user: UserId(0),
            policy: p,
            eps_per_epoch: 0.5,
            effective_from: 10,
        };
        assert_eq!(a.policy.n_components(), 4);
        assert_eq!(a.effective_from, 10);
    }
}
