//! Location monitoring (§3.1, first application).
//!
//! "Location monitoring focuses on understanding people's movement between
//! different cities or provinces in a coarse-grained level." Under the `Ga`
//! policy, perturbed reports still identify the coarse area exactly
//! (components never cross areas), so area occupancy and inter-area
//! movement matrices stay accurate while within-area locations remain
//! private. The utility metric is the one the demo plots: Euclidean
//! distance between perturbed and real locations (§3.2).

use panda_mobility::{Timestamp, TrajectoryDb};
use serde::{Deserialize, Serialize};

/// Per-epoch occupancy counts of each coarse area (`epochs × areas`).
pub fn occupancy_by_area(db: &TrajectoryDb, block: u32) -> Vec<Vec<u32>> {
    let grid = db.grid();
    let n_areas = grid.n_blocks(block, block) as usize;
    let mut out = Vec::with_capacity(db.horizon() as usize);
    for t in 0..db.horizon() {
        let mut counts = vec![0u32; n_areas];
        for tr in db.trajectories() {
            if let Some(c) = tr.at(t) {
                counts[grid.block_of(c, block, block) as usize] += 1;
            }
        }
        out.push(counts);
    }
    out
}

/// Aggregate inter-area movement matrix over the whole horizon:
/// `matrix[a][b]` counts epoch transitions from area `a` to area `b`
/// (diagonal = staying).
pub fn movement_matrix(db: &TrajectoryDb, block: u32) -> Vec<Vec<u32>> {
    let grid = db.grid();
    let n_areas = grid.n_blocks(block, block) as usize;
    let mut m = vec![vec![0u32; n_areas]; n_areas];
    for tr in db.trajectories() {
        for w in tr.cells.windows(2) {
            let a = grid.block_of(w[0], block, block) as usize;
            let b = grid.block_of(w[1], block, block) as usize;
            m[a][b] += 1;
        }
    }
    m
}

/// Utility report comparing a perturbed database against ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoringUtility {
    /// Mean Euclidean distance between reported and true cells, in grid
    /// length units — the §3.2 utility metric.
    pub mean_distance: f64,
    /// Fraction of (user, epoch) pairs whose **coarse area** was reported
    /// correctly.
    pub area_accuracy: f64,
    /// Mean per-epoch L1 distance between true and reported area-occupancy
    /// histograms, normalised by population.
    pub occupancy_l1: f64,
}

/// Computes [`MonitoringUtility`] for matched databases.
///
/// # Panics
///
/// Panics when the databases disagree on users, horizon or grid.
pub fn monitoring_utility(
    truth: &TrajectoryDb,
    reported: &TrajectoryDb,
    block: u32,
) -> MonitoringUtility {
    assert_eq!(truth.horizon(), reported.horizon(), "horizon mismatch");
    assert_eq!(truth.n_users(), reported.n_users(), "population mismatch");
    let grid = truth.grid();
    let mut total_d = 0.0;
    let mut correct_area = 0usize;
    let mut n = 0usize;
    for tr in truth.trajectories() {
        let rep = reported
            .trajectory(tr.user)
            .expect("user missing from reported db");
        for t in 0..truth.horizon() {
            let (a, b) = (tr.at(t).unwrap(), rep.at(t).unwrap());
            total_d += grid.distance(a, b);
            if grid.block_of(a, block, block) == grid.block_of(b, block, block) {
                correct_area += 1;
            }
            n += 1;
        }
    }
    // Occupancy error.
    let occ_t = occupancy_by_area(truth, block);
    let occ_r = occupancy_by_area(reported, block);
    let pop = truth.n_users().max(1) as f64;
    let occupancy_l1 = occ_t
        .iter()
        .zip(occ_r.iter())
        .map(|(a, b)| {
            a.iter()
                .zip(b.iter())
                .map(|(&x, &y)| (x as f64 - y as f64).abs())
                .sum::<f64>()
                / pop
        })
        .sum::<f64>()
        / occ_t.len().max(1) as f64;
    MonitoringUtility {
        mean_distance: total_d / n.max(1) as f64,
        area_accuracy: correct_area as f64 / n.max(1) as f64,
        occupancy_l1,
    }
}

/// Total flow leaving each area (row sums minus diagonal) — the headline
/// numbers of a "movement between cities" dashboard.
pub fn outflow(matrix: &[Vec<u32>]) -> Vec<u32> {
    matrix
        .iter()
        .enumerate()
        .map(|(a, row)| {
            row.iter()
                .enumerate()
                .filter(|&(b, _)| b != a)
                .map(|(_, &v)| v)
                .sum()
        })
        .collect()
}

/// Epoch at which each area's occupancy peaks.
pub fn peak_epochs(occupancy: &[Vec<u32>]) -> Vec<Timestamp> {
    if occupancy.is_empty() {
        return Vec::new();
    }
    let n_areas = occupancy[0].len();
    (0..n_areas)
        .map(|a| {
            occupancy
                .iter()
                .enumerate()
                .max_by_key(|&(_, row)| row[a])
                .map(|(t, _)| t as Timestamp)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use panda_mobility::{Trajectory, UserId};

    fn db() -> TrajectoryDb {
        let g = GridMap::new(4, 4, 100.0);
        TrajectoryDb::new(
            g.clone(),
            vec![
                Trajectory {
                    user: UserId(0),
                    // area 0 → area 0 → area 1 (blocks of 2)
                    cells: vec![g.cell(0, 0), g.cell(1, 1), g.cell(2, 0)],
                },
                Trajectory {
                    user: UserId(1),
                    cells: vec![g.cell(3, 3), g.cell(3, 3), g.cell(3, 3)],
                },
            ],
        )
    }

    #[test]
    fn occupancy_counts() {
        let occ = occupancy_by_area(&db(), 2);
        assert_eq!(occ.len(), 3);
        assert_eq!(occ[0], vec![1, 0, 0, 1]);
        assert_eq!(occ[2], vec![0, 1, 0, 1]);
    }

    #[test]
    fn movement_matrix_counts_transitions() {
        let m = movement_matrix(&db(), 2);
        assert_eq!(m[0][0], 1); // user 0 stays in area 0 once
        assert_eq!(m[0][1], 1); // then moves to area 1
        assert_eq!(m[3][3], 2); // user 1 never moves
        assert_eq!(outflow(&m), vec![1, 0, 0, 0]);
    }

    #[test]
    fn utility_perfect_for_identical_dbs() {
        let d = db();
        let u = monitoring_utility(&d, &d, 2);
        assert_eq!(u.mean_distance, 0.0);
        assert_eq!(u.area_accuracy, 1.0);
        assert_eq!(u.occupancy_l1, 0.0);
    }

    #[test]
    fn utility_detects_within_area_perturbation() {
        let truth = db();
        let g = truth.grid().clone();
        // Perturb user 0's first epoch within its 2x2 area.
        let reported = truth.map_cells(|u, t, c| {
            if u == UserId(0) && t == 0 {
                g.cell(1, 0)
            } else {
                c
            }
        });
        let u = monitoring_utility(&truth, &reported, 2);
        assert!(u.mean_distance > 0.0);
        assert_eq!(u.area_accuracy, 1.0, "within-area moves keep the area");
        assert_eq!(u.occupancy_l1, 0.0);
    }

    #[test]
    fn utility_detects_cross_area_perturbation() {
        let truth = db();
        let g = truth.grid().clone();
        let reported = truth.map_cells(|u, t, c| {
            if u == UserId(1) && t == 2 {
                g.cell(0, 0) // jump from area 3 to area 0
            } else {
                c
            }
        });
        let u = monitoring_utility(&truth, &reported, 2);
        assert!(u.area_accuracy < 1.0);
        assert!(u.occupancy_l1 > 0.0);
    }

    #[test]
    fn peak_epoch_detection() {
        let occ = vec![vec![3, 0], vec![1, 2], vec![0, 5]];
        assert_eq!(peak_epochs(&occ), vec![0, 2]);
        assert!(peak_epochs(&[]).is_empty());
    }
}
