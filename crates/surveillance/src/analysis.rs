//! Epidemic analysis (§3.1, second application).
//!
//! "Epidemic analysis aims at building a predictive disease transmission
//! model such as the SEIR model. The fine-grained data would be beneficial
//! for the estimation of the parameters such as R0." The location-sensitive
//! estimator is contact-based: `R0 ≈ p_transmit × contact rate × infectious
//! period`, where the contact rate is measured from (perturbed) co-location
//! counts — so perturbation degrades the estimate, and the degradation is
//! exactly the §3.2 utility metric for this app. The incidence-based
//! growth-rate estimator (which needs no locations) is re-exported from
//! `panda-epidemic` for comparison.

use panda_mobility::TrajectoryDb;
use serde::{Deserialize, Serialize};

/// Mean co-location contacts per user per epoch: each unordered co-located
/// pair contributes one contact to each of its two members.
pub fn contact_rate(db: &TrajectoryDb) -> f64 {
    let pair_epochs: u32 = db.co_location_counts().values().sum();
    let denom = db.n_users() as f64 * db.horizon() as f64;
    if denom == 0.0 {
        return 0.0;
    }
    2.0 * pair_epochs as f64 / denom
}

/// Contact-based R0 estimate: `p_transmit × contact_rate × infectious
/// period` (epochs).
pub fn estimate_r0_contacts(db: &TrajectoryDb, p_transmit: f64, infectious_epochs: f64) -> f64 {
    contact_rate(db) * p_transmit * infectious_epochs
}

/// Comparison of R0 estimated from exact vs. perturbed locations — the
/// §3.2 "accuracy of transmission model estimation" readout.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct R0Comparison {
    /// Estimate over the true database.
    pub r0_true: f64,
    /// Estimate over the perturbed database.
    pub r0_perturbed: f64,
    /// |true − perturbed|.
    pub abs_error: f64,
    /// |true − perturbed| / true (0 when the true estimate is 0).
    pub rel_error: f64,
}

/// Runs the contact-based estimator on both databases.
pub fn compare_r0(
    truth: &TrajectoryDb,
    reported: &TrajectoryDb,
    p_transmit: f64,
    infectious_epochs: f64,
) -> R0Comparison {
    let r0_true = estimate_r0_contacts(truth, p_transmit, infectious_epochs);
    let r0_perturbed = estimate_r0_contacts(reported, p_transmit, infectious_epochs);
    let abs_error = (r0_true - r0_perturbed).abs();
    R0Comparison {
        r0_true,
        r0_perturbed,
        abs_error,
        rel_error: if r0_true > 0.0 {
            abs_error / r0_true
        } else {
            0.0
        },
    }
}

/// Per-area incidence proxy: number of *newly seen* users per area per
/// epoch (users are "new" to an area the first epoch they report it).
/// A coarse surveillance signal that drives the public dashboards.
pub fn area_first_arrivals(db: &TrajectoryDb, block: u32) -> Vec<Vec<u32>> {
    let grid = db.grid();
    let n_areas = grid.n_blocks(block, block) as usize;
    let mut seen: Vec<std::collections::HashSet<panda_mobility::UserId>> =
        vec![std::collections::HashSet::new(); n_areas];
    let mut out = Vec::with_capacity(db.horizon() as usize);
    for t in 0..db.horizon() {
        let mut counts = vec![0u32; n_areas];
        for tr in db.trajectories() {
            if let Some(c) = tr.at(t) {
                let area = grid.block_of(c, block, block) as usize;
                if seen[area].insert(tr.user) {
                    counts[area] += 1;
                }
            }
        }
        out.push(counts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use panda_mobility::{Trajectory, TrajectoryDb, UserId};

    fn colocated_db() -> TrajectoryDb {
        let g = GridMap::new(4, 4, 100.0);
        // Users 0 and 1 together at every epoch; user 2 alone.
        TrajectoryDb::new(
            g.clone(),
            vec![
                Trajectory {
                    user: UserId(0),
                    cells: vec![g.cell(0, 0); 4],
                },
                Trajectory {
                    user: UserId(1),
                    cells: vec![g.cell(0, 0); 4],
                },
                Trajectory {
                    user: UserId(2),
                    cells: vec![g.cell(3, 3); 4],
                },
            ],
        )
    }

    #[test]
    fn contact_rate_counts_pairs() {
        let db = colocated_db();
        // 4 pair-epochs × 2 members / (3 users × 4 epochs) = 2/3.
        assert!((contact_rate(&db) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r0_scales_with_parameters() {
        let db = colocated_db();
        let r0 = estimate_r0_contacts(&db, 0.3, 4.0);
        assert!((r0 - 2.0 / 3.0 * 0.3 * 4.0).abs() < 1e-12);
        assert!(estimate_r0_contacts(&db, 0.6, 4.0) > r0);
    }

    #[test]
    fn compare_r0_zero_error_for_identity() {
        let db = colocated_db();
        let cmp = compare_r0(&db, &db, 0.3, 4.0);
        assert_eq!(cmp.abs_error, 0.0);
        assert_eq!(cmp.rel_error, 0.0);
        assert_eq!(cmp.r0_true, cmp.r0_perturbed);
    }

    #[test]
    fn perturbation_changes_contact_estimate() {
        let truth = colocated_db();
        let g = truth.grid().clone();
        // Separate the co-located pair at every epoch.
        let reported = truth.map_cells(|u, _, c| if u == UserId(1) { g.cell(1, 1) } else { c });
        let cmp = compare_r0(&truth, &reported, 0.3, 4.0);
        assert!(cmp.r0_perturbed < cmp.r0_true);
        assert!(cmp.abs_error > 0.0);
        assert!(cmp.rel_error > 0.99, "all contacts destroyed");
    }

    #[test]
    fn first_arrivals_count_each_user_once_per_area() {
        let db = colocated_db();
        let arrivals = area_first_arrivals(&db, 2);
        // Epoch 0: two users arrive in area 0, one in area 3.
        assert_eq!(arrivals[0][0], 2);
        assert_eq!(arrivals[0][3], 1);
        // No further arrivals.
        for row in arrivals.iter().take(4).skip(1) {
            assert!(row.iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn empty_db_rates_are_zero() {
        let g = GridMap::new(2, 2, 100.0);
        let db = TrajectoryDb::new(g, vec![]);
        assert_eq!(contact_rate(&db), 0.0);
        assert_eq!(estimate_r0_contacts(&db, 0.5, 4.0), 0.0);
    }
}
