//! Terminal dashboards: the demo's "Visualization of Results" panel
//! (Fig. 5), rendered as text.
//!
//! PANDA is a demonstration system; its value proposition is *showing*
//! attendees the trade-offs. This module renders the same artefacts the
//! GUI shows — occupancy heatmaps, policy-graph summaries, ε-series — as
//! plain strings, so examples and experiment binaries can display them in
//! any terminal and tests can assert on their structure.

use panda_core::LocationPolicyGraph;
use panda_geo::GridMap;

/// Unicode shade ramp used by the heatmap (low → high).
const RAMP: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Renders per-cell values as a grid heatmap, one character per cell, rows
/// top-to-bottom. Values are normalised to the observed maximum; an
/// all-zero field renders as blanks inside the frame.
///
/// # Panics
///
/// Panics when `values.len()` differs from the grid's cell count.
pub fn render_heatmap(grid: &GridMap, values: &[f64]) -> String {
    assert_eq!(
        values.len(),
        grid.n_cells() as usize,
        "one value per cell required"
    );
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    let mut out = String::new();
    out.push('┌');
    out.push_str(&"─".repeat(grid.width() as usize));
    out.push_str("┐\n");
    // Row 0 is the grid's bottom; render top row first.
    for row in (0..grid.height()).rev() {
        out.push('│');
        for col in 0..grid.width() {
            let v = values[grid.cell(col, row).index()];
            let shade = if max <= 0.0 {
                0
            } else {
                (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
            };
            out.push(RAMP[shade]);
        }
        out.push_str("│\n");
    }
    out.push('└');
    out.push_str(&"─".repeat(grid.width() as usize));
    out.push_str("┘\n");
    out
}

/// One-line summary of a policy graph: the numbers the demo UI shows next
/// to the graph picker.
pub fn policy_summary(policy: &LocationPolicyGraph) -> String {
    let isolated = policy
        .grid()
        .cells()
        .filter(|&c| policy.is_isolated_cell(c))
        .count();
    format!(
        "{}: {} nodes, {} edges (density {:.4}), {} components, {} isolated",
        policy.name(),
        policy.n_locations(),
        policy.graph().n_edges(),
        policy.density(),
        policy.n_components(),
        isolated
    )
}

/// Renders an (x, y) series as a fixed-height column chart with axis
/// labels — the ε-sweep curves of the results panel.
pub fn render_series(label: &str, xs: &[f64], ys: &[f64], height: usize) -> String {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(height >= 2);
    if ys.is_empty() {
        return format!("{label}: (empty series)\n");
    }
    let max = ys.iter().copied().fold(f64::MIN, f64::max);
    let min = ys.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let mut out = format!("{label}  (min {min:.1}, max {max:.1})\n");
    for level in (0..height).rev() {
        let threshold = min + span * (level as f64 + 0.5) / height as f64;
        for &y in ys {
            out.push(if y >= threshold { '█' } else { ' ' });
        }
        out.push('\n');
    }
    // X-axis labels: first and last.
    out.push_str(&format!(
        "x: {:.2} … {:.2} ({} points)\n",
        xs.first().unwrap(),
        xs.last().unwrap(),
        xs.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::CellId;

    fn grid() -> GridMap {
        GridMap::new(4, 3, 100.0)
    }

    #[test]
    fn heatmap_shape_and_extremes() {
        let g = grid();
        let mut values = vec![0.0; 12];
        values[g.cell(0, 0).index()] = 10.0; // bottom-left: full block
        let art = render_heatmap(&g, &values);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3 + 2); // 3 rows + frame
                                        // Bottom row (last content line) starts with the full shade.
        let bottom = lines[lines.len() - 2];
        assert!(bottom.contains('█'));
        // Top row has no shading.
        assert!(!lines[1].contains('█'));
        // Every content line is framed.
        for l in &lines[1..lines.len() - 1] {
            assert!(l.starts_with('│') && l.ends_with('│'));
        }
    }

    #[test]
    fn heatmap_all_zero_is_blank() {
        let g = grid();
        let art = render_heatmap(&g, &[0.0; 12]);
        assert!(!art.contains('█') && !art.contains('░'));
    }

    #[test]
    #[should_panic(expected = "one value per cell")]
    fn heatmap_size_mismatch_panics() {
        render_heatmap(&grid(), &[1.0, 2.0]);
    }

    #[test]
    fn policy_summary_contents() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2).with_isolated(&[CellId(0)]);
        let s = policy_summary(&p);
        assert!(s.contains("12 nodes"));
        assert!(s.contains("isolated"));
        assert!(s.contains("components"));
    }

    #[test]
    fn series_chart_monotone_heights() {
        let xs = [0.1, 0.5, 1.0, 2.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        let art = render_series("err vs eps", &xs, &ys, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains("err vs eps"));
        // Top band: only the first column is filled.
        assert_eq!(lines[1].trim_end(), "█");
        // Bottom band: all columns filled.
        assert_eq!(lines[4].trim_end(), "████");
        assert!(lines.last().unwrap().contains("4 points"));
    }

    #[test]
    fn series_handles_flat_data() {
        let art = render_series("flat", &[1.0, 2.0], &[5.0, 5.0], 3);
        assert!(art.contains("min 0.0, max 5.0") || art.contains("min 5.0"));
    }
}
