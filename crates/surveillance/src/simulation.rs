//! Full-system simulation driver: the Fig. 1 deployment loop in one call.
//!
//! Orchestrates what the individual modules provide: clients observe their
//! true trajectories epoch by epoch and report under budgeted PGLP; an
//! agent-based outbreak spreads through true co-location; diagnoses arrive
//! with a reporting delay and each one triggers the §3.2 dynamic-tracing
//! round; health codes are refreshed after every diagnosis. The returned
//! log carries everything the experiments and dashboards read.
//!
//! This is the entry point a downstream user would build on: give it a
//! trajectory database (real or synthetic), a policy configurator and a
//! budget, get back the complete privacy-preserving surveillance history.

use crate::client::{Client, ClientConfig};
use crate::health_code::{assign_codes, HealthCode, HealthCodeRules};
use crate::policy_config::PolicyConfigurator;
use crate::protocol::LocationReport;
use crate::server::Server;
use crate::tracing::{dynamic_trace, ContactRule, TraceOutcome};
use panda_core::{GraphExponential, Mechanism, ParallelReleaser, PolicyIndex};
use panda_epidemic::{simulate_outbreak, OutbreakConfig, OutbreakResult};
use panda_geo::CellId;
use panda_mobility::{Timestamp, TrajectoryDb, UserId};
use rand::{Rng, RngCore};
use std::collections::HashMap;

/// Simulation parameters.
pub struct SimulationConfig {
    /// Per-epoch ε for routine reports.
    pub eps_report: f64,
    /// Per-epoch ε for re-sent windows.
    pub eps_resend: f64,
    /// Client configuration (retention, lifetime budget, consent).
    pub client: ClientConfig,
    /// Outbreak dynamics.
    pub outbreak: OutbreakConfig,
    /// Contact rule for tracing rounds.
    pub rule: ContactRule,
    /// Look-back window length for tracing (epochs; the paper's two weeks).
    pub trace_window: Timestamp,
    /// Health-code rules.
    pub health: HealthCodeRules,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            eps_report: 1.0,
            eps_resend: 2.0,
            client: ClientConfig::default(),
            outbreak: OutbreakConfig::default(),
            rule: ContactRule::default(),
            trace_window: 336,
            health: HealthCodeRules::default(),
        }
    }
}

/// Complete record of a simulated deployment.
pub struct SimulationLog {
    /// The outbreak ground truth (never visible to the server).
    pub outbreak: OutbreakResult,
    /// One tracing outcome per processed diagnosis, in diagnosis order.
    pub traces: Vec<(UserId, Timestamp, TraceOutcome)>,
    /// Final health codes.
    pub codes: HashMap<UserId, HealthCode>,
    /// Reports the server received in the routine phase.
    pub routine_reports: usize,
    /// Users that ran out of budget before the horizon.
    pub exhausted_users: Vec<UserId>,
}

impl SimulationLog {
    /// Mean recall over all tracing rounds (1.0 when no rounds ran).
    pub fn mean_recall(&self) -> f64 {
        if self.traces.is_empty() {
            return 1.0;
        }
        self.traces.iter().map(|(_, _, o)| o.recall).sum::<f64>() / self.traces.len() as f64
    }

    /// Mean precision over all tracing rounds.
    pub fn mean_precision(&self) -> f64 {
        if self.traces.is_empty() {
            return 1.0;
        }
        self.traces.iter().map(|(_, _, o)| o.precision).sum::<f64>() / self.traces.len() as f64
    }
}

/// Runs the full deployment over `truth`.
///
/// `max_traced_diagnoses` bounds how many diagnoses trigger tracing rounds
/// (each round re-sends up to a full window per user — budget-hungry).
pub fn run_simulation(
    truth: &TrajectoryDb,
    configurator: &PolicyConfigurator,
    config: &SimulationConfig,
    max_traced_diagnoses: usize,
    rng: &mut dyn RngCore,
) -> SimulationLog {
    let grid = truth.grid().clone();
    let server = Server::new(grid.clone());
    let base_policy = configurator.for_analysis();

    // Clients, pre-loaded with their (local, private) trajectories.
    let mut clients: Vec<Client> = truth
        .trajectories()
        .iter()
        .map(|tr| {
            let mut c = Client::new(
                tr.user,
                config.client.clone(),
                base_policy.clone(),
                Box::new(GraphExponential) as Box<dyn Mechanism + Send + Sync>,
                config.eps_report,
            );
            for (t, &cell) in tr.cells.iter().enumerate() {
                c.observe(t as Timestamp, cell);
            }
            c
        })
        .collect();

    // Ground-truth epidemic (the environment, not the system).
    let outbreak = simulate_outbreak(rng, truth, &config.outbreak);

    // Routine reporting phase, on the parallel release engine: each client
    // plans (and budgets) its affordable epochs sequentially, then one
    // shared PolicyIndex perturbs the whole population's reports across
    // threads, and the server ingests the output shard-batched. An invalid
    // per-epoch ε yields zero routine reports (and charges nothing) —
    // matching the old per-client loop, which stopped at the first failing
    // report instead of panicking.
    let shared_index = PolicyIndex::new(base_policy.clone());
    let releaser = ParallelReleaser::new();
    let mut exhausted: Vec<UserId> = Vec::new();
    let mut meta: Vec<(UserId, Timestamp)> = Vec::new();
    let mut cells: Vec<CellId> = Vec::new();
    if panda_core::error::check_epsilon(config.eps_report).is_ok() {
        for client in clients.iter_mut() {
            let (plan, ran_dry) = client.plan_routine(truth.horizon());
            if ran_dry {
                exhausted.push(client.user());
            }
            let user = client.user();
            for (t, cell) in plan {
                meta.push((user, t));
                cells.push(cell);
            }
        }
    }
    let release_seed = rng.gen::<u64>();
    // With ε pre-validated and every planned cell domain-checked, a
    // failure here is an invariant violation worth surfacing loudly.
    let released = releaser
        .release(
            &GraphExponential,
            &shared_index,
            config.eps_report,
            &cells,
            release_seed,
        )
        .expect("routine release failed on planned, validated reports");
    let routine_reports = released.len();
    server.receive_batch(
        meta.into_iter()
            .zip(released)
            .map(|((user, epoch), cell)| LocationReport {
                user,
                epoch,
                cell,
                resend: false,
            })
            .collect(),
    );

    // Diagnosis-driven tracing rounds.
    let mut traces = Vec::new();
    for &(patient, t_diag) in outbreak.diagnoses.iter().take(max_traced_diagnoses) {
        let from = t_diag.saturating_sub(config.trace_window);
        let outcome = dynamic_trace(
            &mut clients,
            &server,
            configurator,
            truth,
            patient,
            (from, t_diag),
            config.eps_resend,
            config.rule,
            rng,
        );
        traces.push((patient, t_diag, outcome));
    }

    // Final health codes from server-visible facts.
    let now = truth.horizon();
    let flagged: Vec<UserId> = traces
        .iter()
        .flat_map(|(_, _, o)| o.flagged.iter().copied())
        .collect();
    let codes = assign_codes(
        &server.reported_db(now),
        &server.diagnoses(),
        &flagged,
        &server.infected_visits(),
        now,
        &config.health,
    );

    SimulationLog {
        outbreak,
        traces,
        codes,
        routine_reports,
        exhausted_users: exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ConsentRule;
    use panda_mobility::markov::{generate_markov, MarkovConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn population(seed: u64) -> TrajectoryDb {
        let grid = panda_geo::GridMap::new(10, 10, 200.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_markov(
            &mut rng,
            &grid,
            &MarkovConfig {
                n_users: 40,
                horizon: 72,
                p_stay: 0.6,
            },
        )
    }

    fn config() -> SimulationConfig {
        SimulationConfig {
            eps_report: 1.0,
            eps_resend: 3.0,
            client: ClientConfig {
                retention: 100,
                budget: 500.0,
                consent: ConsentRule::AlwaysAccept,
            },
            outbreak: OutbreakConfig {
                n_seeds: 3,
                p_transmit: 0.5,
                diagnosis_delay: 12,
                ..Default::default()
            },
            rule: ContactRule::default(),
            trace_window: 48,
            health: HealthCodeRules::default(),
        }
    }

    #[test]
    fn full_simulation_round_trip() {
        let truth = population(1);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let log = run_simulation(&truth, &configurator, &config(), 2, &mut rng);
        assert_eq!(log.routine_reports, 40 * 72);
        assert!(log.exhausted_users.is_empty());
        assert!(!log.traces.is_empty(), "seeded outbreak must diagnose");
        assert_eq!(log.mean_recall(), 1.0, "dynamic tracing is exact");
        assert_eq!(log.codes.len(), 40);
        // Diagnosed patients are red.
        for (patient, _, _) in &log.traces {
            assert_eq!(log.codes[patient], HealthCode::Red);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let truth = population(3);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut cfg = config();
        cfg.client.budget = 10.0; // only 10 epochs of eps=1.0
        let mut rng = SmallRng::seed_from_u64(4);
        let log = run_simulation(&truth, &configurator, &cfg, 0, &mut rng);
        assert_eq!(log.exhausted_users.len(), 40, "everyone runs dry");
        assert_eq!(log.routine_reports, 40 * 10);
    }

    #[test]
    fn invalid_eps_yields_no_reports_instead_of_panicking() {
        let truth = population(9);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut cfg = config();
        cfg.eps_report = 0.0;
        cfg.outbreak.p_transmit = 0.0;
        cfg.outbreak.diagnosis_delay = 200;
        let mut rng = SmallRng::seed_from_u64(10);
        let log = run_simulation(&truth, &configurator, &cfg, 0, &mut rng);
        assert_eq!(log.routine_reports, 0);
        assert!(log.exhausted_users.is_empty(), "nothing was charged");
    }

    #[test]
    fn no_outbreak_no_traces() {
        let truth = population(5);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut cfg = config();
        cfg.outbreak.p_transmit = 0.0;
        cfg.outbreak.diagnosis_delay = 200; // past horizon: never diagnosed
        let mut rng = SmallRng::seed_from_u64(6);
        let log = run_simulation(&truth, &configurator, &cfg, 5, &mut rng);
        assert!(log.traces.is_empty());
        assert_eq!(log.mean_recall(), 1.0);
        assert_eq!(log.mean_precision(), 1.0);
        // Everyone green: no diagnoses ever reach the server.
        assert!(log.codes.values().all(|&c| c == HealthCode::Green));
    }

    #[test]
    fn deterministic_under_seed() {
        let truth = population(7);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            run_simulation(&truth, &configurator, &config(), 1, &mut rng)
        };
        let a = run(8);
        let b = run(8);
        assert_eq!(a.routine_reports, b.routine_reports);
        assert_eq!(a.outbreak.seeds, b.outbreak.seeds);
        assert_eq!(
            a.traces
                .iter()
                .map(|(u, t, _)| (*u, *t))
                .collect::<Vec<_>>(),
            b.traces
                .iter()
                .map(|(u, t, _)| (*u, *t))
                .collect::<Vec<_>>()
        );
    }
}
