//! Full-system simulation driver: the Fig. 1 deployment loop in one call.
//!
//! Orchestrates what the individual modules provide: clients observe their
//! true trajectories epoch by epoch and report under budgeted PGLP; an
//! agent-based outbreak spreads through true co-location; diagnoses arrive
//! with a reporting delay and each one triggers the §3.2 dynamic-tracing
//! round; health codes are refreshed after every diagnosis. The returned
//! log carries everything the experiments and dashboards read.
//!
//! This is the entry point a downstream user would build on: give it a
//! trajectory database (real or synthetic), a policy configurator and a
//! budget, get back the complete privacy-preserving surveillance history.

use crate::client::{Client, ClientConfig};
use crate::health_code::{assign_codes, HealthCode, HealthCodeRules};
use crate::ingest::{IngestConfig, IngestPipeline, IngestStats, PendingReport};
use crate::policy_config::PolicyConfigurator;
use crate::protocol::LocationReport;
use crate::server::Server;
use crate::tracing::{dynamic_trace, ContactRule, TraceOutcome};
use panda_core::{GraphExponential, Mechanism, ParallelReleaser, PolicyIndex};
use panda_epidemic::{simulate_outbreak, OutbreakConfig, OutbreakResult};
use panda_geo::CellId;
use panda_mobility::{Timestamp, TrajectoryDb, UserId};
use rand::{Rng, RngCore};
use rand_distr::{Distribution, Poisson};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Simulation parameters.
pub struct SimulationConfig {
    /// Per-epoch ε for routine reports.
    pub eps_report: f64,
    /// Per-epoch ε for re-sent windows.
    pub eps_resend: f64,
    /// Client configuration (retention, lifetime budget, consent).
    pub client: ClientConfig,
    /// Outbreak dynamics.
    pub outbreak: OutbreakConfig,
    /// Contact rule for tracing rounds.
    pub rule: ContactRule,
    /// Look-back window length for tracing (epochs; the paper's two weeks).
    pub trace_window: Timestamp,
    /// Health-code rules.
    pub health: HealthCodeRules,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            eps_report: 1.0,
            eps_resend: 2.0,
            client: ClientConfig::default(),
            outbreak: OutbreakConfig::default(),
            rule: ContactRule::default(),
            trace_window: 336,
            health: HealthCodeRules::default(),
        }
    }
}

/// Complete record of a simulated deployment.
pub struct SimulationLog {
    /// The outbreak ground truth (never visible to the server).
    pub outbreak: OutbreakResult,
    /// One tracing outcome per processed diagnosis, in diagnosis order.
    pub traces: Vec<(UserId, Timestamp, TraceOutcome)>,
    /// Final health codes.
    pub codes: BTreeMap<UserId, HealthCode>,
    /// Reports the server received in the routine phase.
    pub routine_reports: usize,
    /// Users that ran out of budget before the horizon.
    pub exhausted_users: Vec<UserId>,
}

impl SimulationLog {
    /// Mean recall over all tracing rounds (1.0 when no rounds ran).
    pub fn mean_recall(&self) -> f64 {
        if self.traces.is_empty() {
            return 1.0;
        }
        self.traces.iter().map(|(_, _, o)| o.recall).sum::<f64>() / self.traces.len() as f64
    }

    /// Mean precision over all tracing rounds.
    pub fn mean_precision(&self) -> f64 {
        if self.traces.is_empty() {
            return 1.0;
        }
        self.traces.iter().map(|(_, _, o)| o.precision).sum::<f64>() / self.traces.len() as f64
    }
}

/// Runs the full deployment over `truth`.
///
/// `max_traced_diagnoses` bounds how many diagnoses trigger tracing rounds
/// (each round re-sends up to a full window per user — budget-hungry).
pub fn run_simulation(
    truth: &TrajectoryDb,
    configurator: &PolicyConfigurator,
    config: &SimulationConfig,
    max_traced_diagnoses: usize,
    rng: &mut dyn RngCore,
) -> SimulationLog {
    let grid = truth.grid().clone();
    let server = Server::new(grid.clone());
    let base_policy = configurator.for_analysis();

    // Clients, pre-loaded with their (local, private) trajectories.
    let mut clients: Vec<Client> = truth
        .trajectories()
        .iter()
        .map(|tr| {
            let mut c = Client::new(
                tr.user,
                config.client.clone(),
                base_policy.clone(),
                Box::new(GraphExponential) as Box<dyn Mechanism + Send + Sync>,
                config.eps_report,
            );
            for (t, &cell) in tr.cells.iter().enumerate() {
                c.observe(t as Timestamp, cell);
            }
            c
        })
        .collect();

    // Ground-truth epidemic (the environment, not the system).
    let outbreak = simulate_outbreak(rng, truth, &config.outbreak);

    // Routine reporting phase, on the parallel release engine: each client
    // plans (and budgets) its affordable epochs sequentially, then one
    // shared PolicyIndex perturbs the whole population's reports across
    // threads, and the server ingests the output shard-batched. An invalid
    // per-epoch ε yields zero routine reports (and charges nothing) —
    // matching the old per-client loop, which stopped at the first failing
    // report instead of panicking.
    let shared_index = PolicyIndex::new(base_policy.clone());
    let releaser = ParallelReleaser::new();
    let mut exhausted: Vec<UserId> = Vec::new();
    let mut meta: Vec<(UserId, Timestamp)> = Vec::new();
    let mut cells: Vec<CellId> = Vec::new();
    if panda_core::error::check_epsilon(config.eps_report).is_ok() {
        for client in clients.iter_mut() {
            let (plan, ran_dry) = client.plan_routine(truth.horizon());
            if ran_dry {
                exhausted.push(client.user());
            }
            let user = client.user();
            for (t, cell) in plan {
                meta.push((user, t));
                cells.push(cell);
            }
        }
    }
    let release_seed = rng.gen::<u64>();
    // With ε pre-validated and every planned cell domain-checked, a
    // failure here is an invariant violation worth surfacing loudly.
    let released = releaser
        .release(
            &GraphExponential,
            &shared_index,
            config.eps_report,
            &cells,
            release_seed,
        )
        .expect("routine release failed on planned, validated reports");
    let routine_reports = released.len();
    server.receive_batch(
        meta.into_iter()
            .zip(released)
            .map(|((user, epoch), cell)| LocationReport {
                user,
                epoch,
                cell,
                resend: false,
            })
            .collect(),
    );

    // Diagnosis-driven tracing rounds.
    let mut traces = Vec::new();
    for &(patient, t_diag) in outbreak.diagnoses.iter().take(max_traced_diagnoses) {
        let from = t_diag.saturating_sub(config.trace_window);
        let outcome = dynamic_trace(
            &mut clients,
            &server,
            configurator,
            truth,
            patient,
            (from, t_diag),
            config.eps_resend,
            config.rule,
            rng,
        );
        traces.push((patient, t_diag, outcome));
    }

    // Final health codes from server-visible facts.
    let now = truth.horizon();
    let flagged: Vec<UserId> = traces
        .iter()
        .flat_map(|(_, _, o)| o.flagged.iter().copied())
        .collect();
    let codes = assign_codes(
        &server.reported_db(now),
        &server.diagnoses(),
        &flagged,
        &server.infected_visits(),
        now,
        &config.health,
    );

    SimulationLog {
        outbreak,
        traces,
        codes,
        routine_reports,
        exhausted_users: exhausted,
    }
}

/// Parameters of the streaming deployment scenario: open-loop Poisson
/// report arrivals through the [`IngestPipeline`], with periodic policy
/// switches.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Mean reports per client per epoch (Poisson; duplicates within an
    /// epoch overwrite, like real repeated fixes).
    pub mean_reports_per_epoch: f64,
    /// Switch between the analysis (`Gb`) and monitoring (`Ga`) policies
    /// every this many epochs (0 = never switch).
    pub switch_every: Timestamp,
    /// Pipeline parameters (flush policy, queue bound, lanes, ε). The
    /// `seed` field is ignored: the scenario draws it from its `rng` so one
    /// simulation seed fixes the whole run.
    pub ingest: IngestConfig,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            mean_reports_per_epoch: 1.5,
            switch_every: 24,
            ingest: IngestConfig::default(),
        }
    }
}

/// Record of a streaming deployment run.
pub struct StreamingLog {
    /// The server after the stream drained (perturbed reports only).
    pub server: Arc<Server>,
    /// Pipeline counters: landed/rejected reports, flush causes, latency.
    pub stats: IngestStats,
    /// Reports submitted into the pipeline.
    pub submitted: usize,
}

/// Runs the continuous-reporting deployment over `truth`: every epoch each
/// client submits a Poisson-distributed number of reports of its current
/// true cell into the [`IngestPipeline`] (open-loop arrivals), and every
/// [`StreamingConfig::switch_every`] epochs the pipeline switches between
/// the configurator's analysis and monitoring policies in-band.
///
/// The arrival trace (and hence, for a fixed `rng` seed, the landed
/// database) is deterministic: one producer submits in epoch/user order and
/// the per-report release streams are keyed by arrival sequence number —
/// flush timing and lane count never change the outcome.
pub fn run_streaming_simulation(
    truth: &TrajectoryDb,
    configurator: &PolicyConfigurator,
    config: &StreamingConfig,
    rng: &mut dyn RngCore,
) -> StreamingLog {
    let server = Arc::new(Server::new(truth.grid().clone()));
    let analysis = Arc::new(PolicyIndex::new(configurator.for_analysis()));
    let monitoring = Arc::new(PolicyIndex::new(configurator.for_monitoring()));
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        Arc::clone(&analysis),
        Arc::new(GraphExponential),
        IngestConfig {
            seed: rng.gen::<u64>(),
            ..config.ingest.clone()
        },
    );
    let handle = pipeline.handle();
    let arrivals =
        Poisson::new(config.mean_reports_per_epoch).expect("arrival rate must be positive");
    let mut submitted = 0usize;
    let mut on_analysis = true;
    for t in 0..truth.horizon() {
        if config.switch_every > 0 && t > 0 && t % config.switch_every == 0 {
            on_analysis = !on_analysis;
            pipeline.switch_policy(if on_analysis {
                Arc::clone(&analysis)
            } else {
                Arc::clone(&monitoring)
            });
        }
        for tr in truth.trajectories() {
            let k = arrivals.sample(rng) as usize;
            for _ in 0..k {
                handle
                    .submit(PendingReport {
                        user: tr.user,
                        epoch: t,
                        cell: tr.cells[t as usize],
                        resend: false,
                    })
                    .expect("pipeline alive for the whole run");
                submitted += 1;
            }
        }
    }
    let stats = pipeline.shutdown();
    StreamingLog {
        server,
        stats,
        submitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ConsentRule;
    use panda_mobility::markov::{generate_markov, MarkovConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn population(seed: u64) -> TrajectoryDb {
        let grid = panda_geo::GridMap::new(10, 10, 200.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_markov(
            &mut rng,
            &grid,
            &MarkovConfig {
                n_users: 40,
                horizon: 72,
                p_stay: 0.6,
            },
        )
    }

    fn config() -> SimulationConfig {
        SimulationConfig {
            eps_report: 1.0,
            eps_resend: 3.0,
            client: ClientConfig {
                retention: 100,
                budget: 500.0,
                consent: ConsentRule::AlwaysAccept,
            },
            outbreak: OutbreakConfig {
                n_seeds: 3,
                p_transmit: 0.5,
                diagnosis_delay: 12,
                ..Default::default()
            },
            rule: ContactRule::default(),
            trace_window: 48,
            health: HealthCodeRules::default(),
        }
    }

    #[test]
    fn full_simulation_round_trip() {
        let truth = population(1);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let log = run_simulation(&truth, &configurator, &config(), 2, &mut rng);
        assert_eq!(log.routine_reports, 40 * 72);
        assert!(log.exhausted_users.is_empty());
        assert!(!log.traces.is_empty(), "seeded outbreak must diagnose");
        assert_eq!(log.mean_recall(), 1.0, "dynamic tracing is exact");
        assert_eq!(log.codes.len(), 40);
        // Diagnosed patients are red.
        for (patient, _, _) in &log.traces {
            assert_eq!(log.codes[patient], HealthCode::Red);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let truth = population(3);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut cfg = config();
        cfg.client.budget = 10.0; // only 10 epochs of eps=1.0
        let mut rng = SmallRng::seed_from_u64(4);
        let log = run_simulation(&truth, &configurator, &cfg, 0, &mut rng);
        assert_eq!(log.exhausted_users.len(), 40, "everyone runs dry");
        assert_eq!(log.routine_reports, 40 * 10);
    }

    #[test]
    fn invalid_eps_yields_no_reports_instead_of_panicking() {
        let truth = population(9);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut cfg = config();
        cfg.eps_report = 0.0;
        cfg.outbreak.p_transmit = 0.0;
        cfg.outbreak.diagnosis_delay = 200;
        let mut rng = SmallRng::seed_from_u64(10);
        let log = run_simulation(&truth, &configurator, &cfg, 0, &mut rng);
        assert_eq!(log.routine_reports, 0);
        assert!(log.exhausted_users.is_empty(), "nothing was charged");
    }

    #[test]
    fn no_outbreak_no_traces() {
        let truth = population(5);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut cfg = config();
        cfg.outbreak.p_transmit = 0.0;
        cfg.outbreak.diagnosis_delay = 200; // past horizon: never diagnosed
        let mut rng = SmallRng::seed_from_u64(6);
        let log = run_simulation(&truth, &configurator, &cfg, 5, &mut rng);
        assert!(log.traces.is_empty());
        assert_eq!(log.mean_recall(), 1.0);
        assert_eq!(log.mean_precision(), 1.0);
        // Everyone green: no diagnoses ever reach the server.
        assert!(log.codes.values().all(|&c| c == HealthCode::Green));
    }

    #[test]
    fn streaming_simulation_lands_every_valid_report() {
        let truth = population(11);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let mut rng = SmallRng::seed_from_u64(12);
        let cfg = StreamingConfig {
            switch_every: 24,
            ingest: IngestConfig {
                max_batch: 128,
                ..Default::default()
            },
            ..Default::default()
        };
        let log = run_streaming_simulation(&truth, &configurator, &cfg, &mut rng);
        assert!(log.submitted > 0);
        assert_eq!(log.stats.submitted, log.submitted);
        assert_eq!(log.stats.landed, log.submitted, "{:?}", log.stats);
        assert_eq!(log.stats.rejected, 0);
        assert_eq!(log.server.n_received(), log.submitted);
        // horizon 72 / switch_every 24 → switches at t = 24 and 48.
        assert_eq!(log.stats.policy_switches, 2);
        // Every landed cell stays in its true cell's component under *one*
        // of the two policies in rotation (epochs without a report hold the
        // last position in `reported_db`, so query actual reports instead).
        let ga = configurator.for_monitoring();
        let gb = configurator.for_analysis();
        for tr in truth.trajectories() {
            for (t, &s) in tr.cells.iter().enumerate() {
                if let Some(z) = log.server.reported_cell(tr.user, t as Timestamp) {
                    assert!(
                        ga.same_component(s, z) || gb.same_component(s, z),
                        "released {z} foreign to both policies' component of {s}"
                    );
                }
            }
        }
    }

    /// Streaming determinism end to end: one seed fixes the arrival trace
    /// *and* the per-report release streams, so the landed database is
    /// identical across runs (and across flush-timing jitter between them).
    #[test]
    fn streaming_simulation_deterministic_under_seed() {
        let truth = population(13);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let run = |seed: u64, lanes: usize, max_batch: usize| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let cfg = StreamingConfig {
                ingest: IngestConfig {
                    release_lanes: lanes,
                    max_batch,
                    ..Default::default()
                },
                ..Default::default()
            };
            run_streaming_simulation(&truth, &configurator, &cfg, &mut rng)
        };
        let a = run(5, 1, 64);
        let b = run(5, 8, 1024);
        assert_eq!(a.submitted, b.submitted);
        let horizon = truth.horizon();
        assert_eq!(
            a.server.reported_db(horizon).trajectories(),
            b.server.reported_db(horizon).trajectories(),
            "lane count / flush size must not change the landed DB"
        );
        let c = run(6, 1, 64);
        assert_ne!(
            a.server.reported_db(horizon).trajectories(),
            c.server.reported_db(horizon).trajectories(),
            "different seed must change the stream"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let truth = population(7);
        let configurator = PolicyConfigurator::new(truth.grid().clone(), 5, 2);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            run_simulation(&truth, &configurator, &config(), 1, &mut rng)
        };
        let a = run(8);
        let b = run(8);
        assert_eq!(a.routine_reports, b.routine_reports);
        assert_eq!(a.outbreak.seeds, b.outbreak.seeds);
        assert_eq!(
            a.traces
                .iter()
                .map(|(u, t, _)| (*u, *t))
                .collect::<Vec<_>>(),
            b.traces
                .iter()
                .map(|(u, t, _)| (*u, *t))
                .collect::<Vec<_>>()
        );
    }
}
