//! The "health code" service (§1, §3.1).
//!
//! China's health-code apps certify a user's status from health and travel
//! history; the paper lists a privacy-preserving health code as a use of
//! location monitoring. Codes are derived from server-visible facts only:
//! diagnoses, contact-tracing flags and (perturbed) visits to confirmed
//! infected locations.

use panda_geo::CellId;
use panda_mobility::{Timestamp, TrajectoryDb, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Certification levels, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthCode {
    /// Free movement.
    Green,
    /// Visited an infected location recently, or is a flagged contact:
    /// advisory quarantine.
    Yellow,
    /// Diagnosed within the quarantine horizon: isolation.
    Red,
}

/// Rules for code assignment.
#[derive(Debug, Clone, Copy)]
pub struct HealthCodeRules {
    /// Epochs a diagnosis keeps a user red.
    pub red_duration: Timestamp,
    /// Epochs an exposure keeps a user yellow.
    pub yellow_duration: Timestamp,
}

impl Default for HealthCodeRules {
    fn default() -> Self {
        HealthCodeRules {
            red_duration: 336, // 14 days of hourly epochs
            yellow_duration: 336,
        }
    }
}

/// Assigns a code to every user of `reported` at epoch `now`. The map is
/// ordered by user so dashboards and logs render deterministically.
///
/// * `diagnoses` — `(user, diagnosis epoch)` pairs (exact, from health
///   authorities).
/// * `flagged_contacts` — output of the contact tracer.
/// * `infected_visits` — confirmed infected `(epoch, cell)` visits; a user
///   whose *reported* trajectory matches one within the yellow window goes
///   yellow.
pub fn assign_codes(
    reported: &TrajectoryDb,
    diagnoses: &[(UserId, Timestamp)],
    flagged_contacts: &[UserId],
    infected_visits: &[(Timestamp, CellId)],
    now: Timestamp,
    rules: &HealthCodeRules,
) -> BTreeMap<UserId, HealthCode> {
    let mut codes: BTreeMap<UserId, HealthCode> = reported
        .trajectories()
        .iter()
        .map(|t| (t.user, HealthCode::Green))
        .collect();

    // Yellow: reported co-presence with an infected visit.
    for tr in reported.trajectories() {
        let exposed = infected_visits
            .iter()
            .any(|&(t, cell)| t + rules.yellow_duration >= now && tr.at(t) == Some(cell));
        if exposed {
            codes.insert(tr.user, HealthCode::Yellow);
        }
    }
    // Yellow: flagged by the contact tracer.
    for user in flagged_contacts {
        codes
            .entry(*user)
            .and_modify(|c| *c = (*c).max(HealthCode::Yellow))
            .or_insert(HealthCode::Yellow);
    }
    // Red overrides: recent diagnosis.
    for &(user, t_diag) in diagnoses {
        if t_diag + rules.red_duration >= now {
            codes.insert(user, HealthCode::Red);
        }
    }
    codes
}

/// Counts codes by level — the dashboard summary.
pub fn code_census(codes: &BTreeMap<UserId, HealthCode>) -> (usize, usize, usize) {
    let mut green = 0;
    let mut yellow = 0;
    let mut red = 0;
    for code in codes.values() {
        match code {
            HealthCode::Green => green += 1,
            HealthCode::Yellow => yellow += 1,
            HealthCode::Red => red += 1,
        }
    }
    (green, yellow, red)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use panda_mobility::Trajectory;

    fn db() -> TrajectoryDb {
        let g = GridMap::new(4, 4, 100.0);
        TrajectoryDb::new(
            g.clone(),
            vec![
                Trajectory {
                    user: UserId(0),
                    cells: vec![g.cell(0, 0), g.cell(1, 1)],
                },
                Trajectory {
                    user: UserId(1),
                    cells: vec![g.cell(0, 0), g.cell(2, 2)],
                },
                Trajectory {
                    user: UserId(2),
                    cells: vec![g.cell(3, 3), g.cell(3, 3)],
                },
            ],
        )
    }

    #[test]
    fn default_is_green() {
        let codes = assign_codes(&db(), &[], &[], &[], 10, &HealthCodeRules::default());
        assert_eq!(codes.len(), 3);
        assert!(codes.values().all(|&c| c == HealthCode::Green));
        assert_eq!(code_census(&codes), (3, 0, 0));
    }

    #[test]
    fn diagnosis_goes_red_and_expires() {
        let rules = HealthCodeRules {
            red_duration: 5,
            yellow_duration: 5,
        };
        let diag = vec![(UserId(2), 3)];
        let codes = assign_codes(&db(), &diag, &[], &[], 7, &rules);
        assert_eq!(codes[&UserId(2)], HealthCode::Red);
        let later = assign_codes(&db(), &diag, &[], &[], 9, &rules);
        assert_eq!(later[&UserId(2)], HealthCode::Green, "red expires");
    }

    #[test]
    fn infected_visit_goes_yellow() {
        let g = GridMap::new(4, 4, 100.0);
        // Cell (0,0) at epoch 0 is infected: users 0 and 1 were there.
        let visits = vec![(0, g.cell(0, 0))];
        let codes = assign_codes(&db(), &[], &[], &visits, 1, &HealthCodeRules::default());
        assert_eq!(codes[&UserId(0)], HealthCode::Yellow);
        assert_eq!(codes[&UserId(1)], HealthCode::Yellow);
        assert_eq!(codes[&UserId(2)], HealthCode::Green);
    }

    #[test]
    fn flagged_contact_goes_yellow_but_red_wins() {
        let diag = vec![(UserId(1), 0)];
        let flagged = vec![UserId(1), UserId(2)];
        let codes = assign_codes(&db(), &diag, &flagged, &[], 1, &HealthCodeRules::default());
        assert_eq!(codes[&UserId(1)], HealthCode::Red, "red beats yellow");
        assert_eq!(codes[&UserId(2)], HealthCode::Yellow);
        assert_eq!(code_census(&codes), (1, 1, 1));
    }

    #[test]
    fn severity_ordering() {
        assert!(HealthCode::Red > HealthCode::Yellow);
        assert!(HealthCode::Yellow > HealthCode::Green);
    }
}
