//! [`IngestPipeline`]: streaming report ingest with micro-batching.
//!
//! PANDA's surveillance setting is inherently *streaming* — users report
//! perturbed locations continuously, not as one offline bulk replay. This
//! module is the server-side front end for that regime:
//!
//! * producers push [`PendingReport`]s through a **bounded MPMC queue**
//!   ([`IngestHandle::submit`] blocks at capacity — backpressure, never an
//!   unbounded backlog);
//! * a collector thread **micro-batches** the stream under a size/deadline
//!   flush policy: a batch goes out when it reaches
//!   [`IngestConfig::max_batch`] reports or when its oldest report has
//!   waited [`IngestConfig::max_delay`];
//! * each flush releases through one shared [`PolicyIndex`] over the
//!   persistent release pool and lands via `Server::receive_batch`;
//! * dropping or [`IngestPipeline::shutdown`]-ing the pipeline **drains**:
//!   everything queued before shutdown is flushed before the collector
//!   exits — no report is lost.
//!
//! ## Determinism
//!
//! Every report is perturbed from its own RNG stream, keyed by the
//! pipeline seed and the report's **arrival sequence number** (its position
//! in the queue order). Batch boundaries therefore do not touch the
//! sampling streams: for a fixed seed and a fixed arrival order the
//! released cells are bit-identical regardless of flush timing, micro-batch
//! sizes, release-lane count, or pool size.
//!
//! Caveats: (1) the *arrival order* is the contract — concurrent producers
//! interleave nondeterministically, so cross-producer reproducibility
//! requires replaying the same interleaving (each report's released cell
//! still depends only on its own sequence number, so any two runs that
//! agree on a report's queue position agree on its output); (2) reports
//! for the same `(user, epoch)` overwrite in queue order — racing them
//! across *separate* pipelines (or submitting after shutdown began) forfeits
//! that ordering.
//!
//! Policy updates ride the same queue ([`IngestPipeline::switch_policy`]):
//! a switch flushes the batch in progress, then applies to every later
//! report — epoch boundaries in the streaming simulation map onto exactly
//! this mechanism.

use crate::protocol::LocationReport;
use crate::server::Server;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use panda_core::release::chunk_rng;
use panda_core::{Mechanism, PolicyIndex, ReleasePool, SamplerMemo};
use panda_geo::CellId;
use panda_mobility::{Timestamp, UserId};
use panda_obs::{clock, Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A client's planned (not yet perturbed) report entering the pipeline.
///
/// The pipeline perturbs `cell` under the current policy index before the
/// server ever sees it — mirroring how the simulation driver releases
/// planned routine reports centrally through one shared index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReport {
    /// Reporting user.
    pub user: UserId,
    /// Epoch the location belongs to.
    pub epoch: Timestamp,
    /// The *true* cell, to be perturbed on release.
    pub cell: CellId,
    /// Whether this supersedes an earlier report for the same epoch.
    pub resend: bool,
}

/// A report whose arrival sequence number was assigned *upstream* — by a
/// routing tier stamping stream positions — instead of by this pipeline's
/// own arrival counter.
///
/// Two flavours share the type:
///
/// * `released: false` — a pending report to perturb exactly like a
///   [`PendingReport`] at queue position `seq`: the released cell is drawn
///   from `chunk_rng(seed, seq)`, so a router that stamps the client's
///   stream positions reproduces the single-process pipeline byte for
///   byte.
/// * `released: true` — an already-perturbed report (the client released
///   it under its own budget, e.g. a re-send): `report.cell` lands **as
///   is**, drawing no randomness; `seq` only fixes its place in the
///   `(user, epoch)` overwrite order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequencedReport {
    /// Arrival sequence number assigned upstream (RNG stream key for
    /// pending reports, overwrite-order position for released ones).
    pub seq: u64,
    /// The report payload; for `released: true` the cell is final.
    pub report: PendingReport,
    /// Whether `report.cell` is already perturbed (lands verbatim).
    pub released: bool,
}

/// Flush policy, queue bound and release parameters of a pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Flush a micro-batch at this many pending reports.
    pub max_batch: usize,
    /// Flush when the oldest pending report has waited this long.
    pub max_delay: Duration,
    /// Bounded queue capacity: producers block (or [`IngestHandle::try_submit`]
    /// fails fast) once this many messages are in flight.
    pub queue_capacity: usize,
    /// Maximum release lanes per flush over the shared pool (1 = release
    /// inline on the collector thread). Affects wall-clock only, never the
    /// released cells.
    pub release_lanes: usize,
    /// ε per released report.
    pub eps: f64,
    /// Base seed of the per-report RNG streams.
    pub seed: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_batch: 512,
            max_delay: Duration::from_millis(5),
            queue_capacity: 8192,
            release_lanes: panda_core::release::pool::default_parallelism(),
            eps: 1.0,
            seed: 0,
        }
    }
}

/// Counters and latency trace of a pipeline's lifetime, returned by
/// [`IngestPipeline::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Reports that entered the collector.
    pub submitted: usize,
    /// Reports released and landed on the server.
    pub landed: usize,
    /// Reports dropped because release failed (bad ε, foreign cell).
    pub rejected: usize,
    /// Micro-batches flushed (only non-empty flushes count).
    pub batches: usize,
    /// Flushes triggered by reaching [`IngestConfig::max_batch`].
    pub size_flushes: usize,
    /// Flushes triggered by the [`IngestConfig::max_delay`] deadline.
    pub deadline_flushes: usize,
    /// Flushes forced by a policy switch or shutdown drain.
    pub forced_flushes: usize,
    /// Policy switches applied.
    pub policy_switches: usize,
    /// Per-flush wall-clock latency (release + server landing), in ms —
    /// the most recent [`FLUSH_LATENCY_WINDOW`] flushes (ring-buffered so
    /// an indefinitely-running pipeline keeps bounded memory).
    pub flush_ms: Vec<f64>,
}

/// How many per-flush latencies [`IngestStats::flush_ms`] retains: a
/// sliding window wide enough for stable p99 estimates, small enough
/// (64 KiB) that a pipeline running for months stays bounded.
pub const FLUSH_LATENCY_WINDOW: usize = 8192;

impl IngestStats {
    /// The `p`-th percentile (0 < p ≤ 1) of per-flush latency over the
    /// retained window, in ms.
    pub fn flush_ms_percentile(&self, p: f64) -> f64 {
        let mut sorted = self.flush_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        percentile(&sorted, p)
    }
}

/// The `p`-th percentile (0 < p ≤ 1) of an ascending-sorted sample by the
/// ceil-index rule, 0.0 on an empty sample — the one formula shared by the
/// pipeline stats and the latency benchmarks, so their reported p50/p99
/// stay comparable.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Submit failed: the pipeline has shut down. Carries the first report
/// that did not make it into the queue.
#[derive(Debug, PartialEq, Eq)]
pub struct SubmitError(pub PendingReport);

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingest pipeline has shut down (user {}, epoch {} not enqueued)",
            self.0.user.0, self.0.epoch
        )
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`IngestHandle::try_submit`] did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The queue is at capacity right now (backpressure).
    Full(PendingReport),
    /// The pipeline has shut down.
    Closed(PendingReport),
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (reason, r) = match self {
            TrySubmitError::Full(r) => ("ingest queue is at capacity", r),
            TrySubmitError::Closed(r) => ("ingest pipeline has shut down", r),
        };
        write!(
            f,
            "{reason} (user {}, epoch {} not enqueued)",
            r.user.0, r.epoch
        )
    }
}

impl std::error::Error for TrySubmitError {}

/// A policy switch failed: the pipeline has shut down (at which point the
/// switch is moot — no further report will be released).
#[derive(Debug, PartialEq, Eq)]
pub struct SwitchError;

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ingest pipeline has shut down; policy switch not applied")
    }
}

impl std::error::Error for SwitchError {}

/// Why a [`IngestHandle::try_switch_policy`] did not enqueue. The index is
/// handed back so the caller can retry without rebuilding it.
#[derive(Debug)]
pub enum TrySwitchError {
    /// The queue is at capacity right now (backpressure).
    Full(Arc<PolicyIndex>),
    /// The pipeline has shut down.
    Closed(Arc<PolicyIndex>),
}

impl std::fmt::Display for TrySwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrySwitchError::Full(_) => "ingest queue is at capacity; policy switch not enqueued",
            TrySwitchError::Closed(_) => "ingest pipeline has shut down; policy switch not applied",
        })
    }
}

impl std::error::Error for TrySwitchError {}

/// Messages riding the ingest queue: reports, in-band policy switches, and
/// the shutdown marker.
enum IngestMsg {
    Report(PendingReport),
    Sequenced(SequencedReport),
    Released(LocationReport),
    Switch(Arc<PolicyIndex>),
    Stop,
}

/// Recovers the report from a failed batch send (batch sends only ever
/// enqueue [`IngestMsg::Report`]s).
fn unsent_report(msg: IngestMsg) -> PendingReport {
    match msg {
        IngestMsg::Report(r) => r,
        _ => unreachable!("batch sends carry only reports"),
    }
}

/// Recovers the first unsent report from a failed sequenced batch send.
fn unsent_sequenced(msg: IngestMsg) -> PendingReport {
    match msg {
        IngestMsg::Sequenced(s) => s.report,
        _ => unreachable!("sequenced batch sends carry only sequenced reports"),
    }
}

/// Recovers the first unsent report from a failed released batch send.
fn unsent_released(msg: IngestMsg) -> PendingReport {
    match msg {
        IngestMsg::Released(r) => PendingReport {
            user: r.user,
            epoch: r.epoch,
            cell: r.cell,
            resend: r.resend,
        },
        _ => unreachable!("released batch sends carry only released reports"),
    }
}

/// A cloneable producer handle onto a pipeline's bounded queue.
#[derive(Clone)]
pub struct IngestHandle {
    tx: Sender<IngestMsg>,
    registry: Arc<Registry>,
}

impl IngestHandle {
    /// Enqueues a report, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the pipeline has shut down.
    pub fn submit(&self, report: PendingReport) -> Result<(), SubmitError> {
        self.tx
            .send(IngestMsg::Report(report))
            .map_err(|_| SubmitError(report))
    }

    /// Enqueues a report only if the queue has room right now.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Full`] at capacity, [`TrySubmitError::Closed`]
    /// when the pipeline has shut down.
    pub fn try_submit(&self, report: PendingReport) -> Result<(), TrySubmitError> {
        self.tx
            .try_send(IngestMsg::Report(report))
            .map_err(|e| match e {
                TrySendError::Full(_) => TrySubmitError::Full(report),
                TrySendError::Disconnected(_) => TrySubmitError::Closed(report),
            })
    }

    /// Enqueues a whole slice in submission order, blocking while the queue
    /// is at capacity. The queue lock is taken **once per run of free
    /// slots** — for a batch that fits, one acquisition instead of one per
    /// report — and no other producer's reports interleave within a run.
    /// Equivalent to calling [`IngestHandle::submit`] per report (same
    /// arrival sequence numbers, same released cells), just cheaper.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] carrying the first unsent report when the pipeline
    /// has shut down; a prefix of the slice may already be enqueued (and
    /// will be drained if it entered before shutdown).
    pub fn submit_batch(&self, reports: &[PendingReport]) -> Result<(), SubmitError> {
        self.tx
            .send_batch(reports.iter().map(|&r| IngestMsg::Report(r)))
            .map(|_| ())
            .map_err(|e| SubmitError(unsent_report(e.0)))
    }

    /// Enqueues the longest prefix of `reports` that fits right now, under
    /// one queue-lock acquisition, and returns its length. A return shorter
    /// than the slice means the queue filled mid-batch (backpressure) —
    /// retry from that offset; order is preserved.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Closed`] carrying the first report when the
    /// pipeline has shut down (nothing from this call is enqueued).
    /// [`TrySubmitError::Full`] is never returned: a full queue is the
    /// `Ok(n < reports.len())` case, so partial progress is not an error.
    pub fn try_submit_batch(&self, reports: &[PendingReport]) -> Result<usize, TrySubmitError> {
        self.tx
            .try_send_batch(reports.iter().map(|&r| IngestMsg::Report(r)))
            .map_err(|e| TrySubmitError::Closed(unsent_report(e.0)))
    }

    /// Enqueues the longest prefix of upstream-sequenced reports that fits
    /// right now (one queue-lock acquisition) and returns its length, with
    /// the same prefix/backpressure contract as
    /// [`IngestHandle::try_submit_batch`].
    ///
    /// This is the shard-node entry point: the routing tier stamps each
    /// report with its client-stream position, and this pipeline releases
    /// pending entries from `chunk_rng(seed, seq)` instead of its own
    /// arrival counter — so an N-node cluster lands byte-identically to
    /// the single-process pipeline for the same arrival order.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Closed`] carrying the first report when the
    /// pipeline has shut down (nothing from this call is enqueued).
    pub fn try_submit_sequenced(
        &self,
        reports: &[SequencedReport],
    ) -> Result<usize, TrySubmitError> {
        self.tx
            .try_send_batch(reports.iter().map(|&s| IngestMsg::Sequenced(s)))
            .map_err(|e| TrySubmitError::Closed(unsent_sequenced(e.0)))
    }

    /// Enqueues the longest prefix of **already-perturbed** reports that
    /// fits right now and returns its length. Each lands verbatim (no
    /// policy release, no randomness) at this handle's current position in
    /// the arrival order — it consumes a local sequence number so the
    /// `(user, epoch)` overwrite order stays a pure function of queue
    /// order, but draws nothing from the RNG stream.
    ///
    /// This is how client-side releases (the re-send protocol's perturbed
    /// [`LocationReport`]s) enter the pipeline from the wire.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Closed`] carrying the first report when the
    /// pipeline has shut down (nothing from this call is enqueued).
    pub fn try_submit_released(&self, reports: &[LocationReport]) -> Result<usize, TrySubmitError> {
        self.tx
            .try_send_batch(reports.iter().map(|&r| IngestMsg::Released(r)))
            .map_err(|e| TrySubmitError::Closed(unsent_released(e.0)))
    }

    /// Blocking counterpart of [`IngestHandle::try_submit_released`]:
    /// enqueues the whole slice in order, waiting out backpressure.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] carrying the first unsent report when the pipeline
    /// has shut down; a prefix may already be enqueued.
    pub fn submit_released(&self, reports: &[LocationReport]) -> Result<(), SubmitError> {
        self.tx
            .send_batch(reports.iter().map(|&r| IngestMsg::Released(r)))
            .map(|_| ())
            .map_err(|e| SubmitError(unsent_released(e.0)))
    }

    /// Switches the policy index for all later reports, exactly like
    /// [`IngestPipeline::switch_policy`] but from a producer handle — the
    /// switch rides the queue in-band, so it lands at this handle's current
    /// position in the arrival order. Blocks while the queue is at
    /// capacity.
    ///
    /// # Errors
    ///
    /// [`SwitchError`] when the pipeline has shut down.
    pub fn switch_policy(&self, index: Arc<PolicyIndex>) -> Result<(), SwitchError> {
        self.tx
            .send(IngestMsg::Switch(index))
            .map_err(|_| SwitchError)
    }

    /// Like [`IngestHandle::switch_policy`], but fails fast instead of
    /// blocking when the queue is at capacity — for callers (like the
    /// network gateway) that must never park on the queue. The index is
    /// handed back for retry.
    ///
    /// # Errors
    ///
    /// [`TrySwitchError::Full`] at capacity, [`TrySwitchError::Closed`]
    /// when the pipeline has shut down.
    pub fn try_switch_policy(&self, index: Arc<PolicyIndex>) -> Result<(), TrySwitchError> {
        self.tx
            .try_send(IngestMsg::Switch(index))
            .map_err(|e| match e {
                TrySendError::Full(IngestMsg::Switch(index)) => TrySwitchError::Full(index),
                TrySendError::Disconnected(IngestMsg::Switch(index)) => {
                    TrySwitchError::Closed(index)
                }
                _ => unreachable!("a switch send carries a switch message"),
            })
    }

    /// The pipeline's metric registry: the collector's ingest-side
    /// instruments (queue depth, flush size/latency, landed/rejected
    /// counts) plus the `PolicyIndex` cache, release-pool and per-shard
    /// server metrics registered through it. A gateway merges this with
    /// its own registry when serving a scrape.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Messages currently queued (racy by nature; for monitoring/tests).
    pub fn queue_len(&self) -> usize {
        self.tx.len()
    }

    /// The queue's fixed capacity.
    pub fn queue_capacity(&self) -> usize {
        self.tx.capacity()
    }
}

/// The streaming ingest front end: one bounded queue, one collector thread,
/// releases fanned over the shared [`ReleasePool`].
pub struct IngestPipeline {
    tx: Sender<IngestMsg>,
    registry: Arc<Registry>,
    collector: Option<std::thread::JoinHandle<IngestStats>>,
}

impl IngestPipeline {
    /// Spawns a pipeline landing into `server`, releasing through `mech`
    /// under `index` with the given flush policy.
    pub fn spawn(
        server: Arc<Server>,
        index: Arc<PolicyIndex>,
        mech: Arc<dyn Mechanism + Send + Sync>,
        config: IngestConfig,
    ) -> Self {
        Self::spawn_inner(server, index, mech, config, None)
    }

    /// Like [`IngestPipeline::spawn`], but the pipeline releases over its
    /// **own** [`ReleasePool`] instead of the process-wide
    /// [`ReleasePool::global`]. A shard node running several pipelines in
    /// one process (loopback clusters, tests, benches) gets isolated
    /// release lanes this way — one node's flush storm cannot starve
    /// another's. Released cells are identical either way (lane scheduling
    /// never touches the per-report RNG streams).
    pub fn spawn_on(
        server: Arc<Server>,
        index: Arc<PolicyIndex>,
        mech: Arc<dyn Mechanism + Send + Sync>,
        config: IngestConfig,
        pool: Arc<ReleasePool>,
    ) -> Self {
        Self::spawn_inner(server, index, mech, config, Some(pool))
    }

    fn spawn_inner(
        server: Arc<Server>,
        index: Arc<PolicyIndex>,
        mech: Arc<dyn Mechanism + Send + Sync>,
        config: IngestConfig,
        pool: Option<Arc<ReleasePool>>,
    ) -> Self {
        let (tx, rx) = bounded::<IngestMsg>(config.queue_capacity.max(1));
        let registry = Arc::new(Registry::new());
        let collector = {
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("panda-ingest".into())
                .spawn(move || Collector::new(server, index, mech, config, pool, registry).run(rx))
                .expect("spawn ingest collector")
        };
        IngestPipeline {
            tx,
            registry,
            collector: Some(collector),
        }
    }

    /// A new producer handle onto the queue (clone freely across threads).
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            tx: self.tx.clone(),
            registry: Arc::clone(&self.registry),
        }
    }

    /// The pipeline's metric registry (see [`IngestHandle::metrics`]).
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Switches the policy index for all later reports, in-band: the batch
    /// in progress is flushed first, so a switch is a clean boundary in the
    /// landed stream.
    pub fn switch_policy(&self, index: Arc<PolicyIndex>) {
        // The collector outlives the pipeline's own sender, so this only
        // fails after shutdown — at which point a switch is a no-op anyway.
        let _ = self.tx.send(IngestMsg::Switch(index));
    }

    /// Shuts down: everything queued before this call is flushed and
    /// landed, then the collector exits and its stats are returned.
    ///
    /// Reports submitted concurrently with shutdown (from cloned handles)
    /// may or may not make the final drain; reports submitted *before* are
    /// never lost.
    pub fn shutdown(mut self) -> IngestStats {
        let _ = self.tx.send(IngestMsg::Stop);
        self.collector
            .take()
            .expect("collector joined once")
            .join()
            .expect("ingest collector panicked")
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        if let Some(collector) = self.collector.take() {
            let _ = self.tx.send(IngestMsg::Stop);
            // Same drain guarantee as `shutdown`; stats are discarded.
            collector.join().expect("ingest collector panicked");
        }
    }
}

/// The collector's registry-backed instruments — recorded alongside the
/// plain [`IngestStats`] collector-thread tallies, which stay the
/// shutdown return value (and keep working under `--cfg panda_obs_off`).
struct IngestMetrics {
    /// Messages on the bounded queue, sampled at batch boundaries (at
    /// most one micro-batch stale; per-message updates cost real
    /// throughput at saturation).
    queue_depth: Gauge,
    /// Reports per flushed micro-batch.
    flush_reports: Histogram,
    /// Wall-clock latency of one flush (release + server landing), ns.
    flush_ns: Histogram,
    /// Recorded per flush, not per push (lags `IngestStats::submitted` by
    /// at most the pending batch).
    submitted: Counter,
    landed: Counter,
    rejected: Counter,
    batches: Counter,
    policy_switches: Counter,
}

impl IngestMetrics {
    fn new(registry: &Registry) -> Self {
        IngestMetrics {
            queue_depth: registry.gauge("panda_ingest_queue_depth"),
            flush_reports: registry.histogram("panda_ingest_flush_reports"),
            flush_ns: registry.histogram("panda_ingest_flush_ns"),
            submitted: registry.counter("panda_ingest_submitted_reports_total"),
            landed: registry.counter("panda_ingest_landed_reports_total"),
            rejected: registry.counter("panda_ingest_rejected_reports_total"),
            batches: registry.counter("panda_ingest_batches_total"),
            policy_switches: registry.counter("panda_ingest_policy_switches_total"),
        }
    }
}

/// The collector-thread state: pending micro-batch plus lifetime stats.
struct Collector {
    server: Arc<Server>,
    index: Arc<PolicyIndex>,
    mech: Arc<dyn Mechanism + Send + Sync>,
    config: IngestConfig,
    /// `None` → release over [`ReleasePool::global`].
    pool: Option<Arc<ReleasePool>>,
    /// Sequenced entries pending in the current batch.
    pending: Vec<SequencedReport>,
    /// When the oldest pending report arrived (deadline anchor).
    oldest: Option<Instant>,
    next_seq: u64,
    /// Ring cursor into `stats.flush_ms` once the window is full.
    flush_cursor: usize,
    stats: IngestStats,
    metrics: IngestMetrics,
    /// Kept to re-register a switched-in index's cache handles.
    registry: Arc<Registry>,
}

/// Why a flush fired (stats attribution).
#[derive(Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    Size,
    Deadline,
    Forced,
}

impl Collector {
    fn new(
        server: Arc<Server>,
        index: Arc<PolicyIndex>,
        mech: Arc<dyn Mechanism + Send + Sync>,
        config: IngestConfig,
        pool: Option<Arc<ReleasePool>>,
        registry: Arc<Registry>,
    ) -> Self {
        let metrics = IngestMetrics::new(&registry);
        // Adopt the neighbouring components' handles into this pipeline's
        // scrape scope: the index's cache counters, the release pool's
        // occupancy, the server's per-stripe landing counters.
        index.register_metrics(&registry);
        server.register_metrics(&registry);
        pool.as_deref()
            .unwrap_or_else(|| ReleasePool::global())
            .register_metrics(&registry);
        Collector {
            server,
            index,
            mech,
            config,
            pool,
            pending: Vec::new(),
            oldest: None,
            next_seq: 0,
            flush_cursor: 0,
            stats: IngestStats::default(),
            metrics,
            registry,
        }
    }

    fn run(mut self, rx: Receiver<IngestMsg>) -> IngestStats {
        loop {
            // Sample the backlog at batch boundaries only (first message
            // of a batch and idle wake-ups): per-message gauge stores are
            // measurable at saturation, and a reading at most one
            // micro-batch stale is exactly as actionable.
            if self.pending.is_empty() {
                self.metrics.queue_depth.set(rx.len() as i64);
            }
            // Parked when idle; woken by work or by the flush deadline.
            // A `max_delay` too large for `Instant` arithmetic (e.g.
            // `Duration::MAX` as a "never flush by deadline" sentinel)
            // simply disables the deadline.
            let deadline = self
                .oldest
                .and_then(|oldest| oldest.checked_add(self.config.max_delay));
            let msg = match deadline {
                None => rx.recv().ok(),
                Some(deadline) => {
                    let now = clock::now();
                    if now >= deadline {
                        self.flush(FlushCause::Deadline);
                        continue;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(msg) => Some(msg),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            self.flush(FlushCause::Deadline);
                            continue;
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => None,
                    }
                }
            };
            match msg {
                Some(IngestMsg::Report(report)) => {
                    let entry = SequencedReport {
                        seq: self.next_seq,
                        report,
                        released: false,
                    };
                    self.next_seq += 1;
                    self.push_entry(entry);
                }
                Some(IngestMsg::Sequenced(entry)) => {
                    // Keep the local counter ahead of upstream stamps so a
                    // pipeline fed from both paths never reuses a stream.
                    self.next_seq = self.next_seq.max(entry.seq.saturating_add(1));
                    self.push_entry(entry);
                }
                Some(IngestMsg::Released(r)) => {
                    let entry = SequencedReport {
                        seq: self.next_seq,
                        report: PendingReport {
                            user: r.user,
                            epoch: r.epoch,
                            cell: r.cell,
                            resend: r.resend,
                        },
                        released: true,
                    };
                    self.next_seq += 1;
                    self.push_entry(entry);
                }
                Some(IngestMsg::Switch(index)) => {
                    // Flush under the old policy first: the switch is a
                    // clean boundary in the landed stream.
                    self.flush(FlushCause::Forced);
                    self.index = index;
                    // Re-point the scrape plane at the new index's cache
                    // handles (adopt-replace by name).
                    self.index.register_metrics(&self.registry);
                    self.stats.policy_switches += 1;
                    self.metrics.policy_switches.inc();
                }
                // Stop, or every sender gone: drain and exit.
                Some(IngestMsg::Stop) | None => {
                    self.flush(FlushCause::Forced);
                    return self.stats;
                }
            }
        }
    }

    /// Appends one sequenced entry to the pending batch, counting it and
    /// firing a size flush at the threshold.
    fn push_entry(&mut self, entry: SequencedReport) {
        if self.pending.is_empty() {
            self.oldest = Some(clock::now());
        }
        self.pending.push(entry);
        self.stats.submitted += 1;
        if self.pending.len() >= self.config.max_batch {
            self.flush(FlushCause::Size);
        }
    }

    /// Releases the pending micro-batch (per-report RNG streams, fanned
    /// over the pipeline's pool) and lands it on the server.
    fn flush(&mut self, cause: FlushCause) {
        self.oldest = None;
        if self.pending.is_empty() {
            return;
        }
        let t0 = clock::now();
        let batch = std::mem::take(&mut self.pending);
        // One batched add instead of a per-report increment in
        // `push_entry`: the counter lags the local `stats.submitted` by at
        // most one pending micro-batch, and the collector's hot loop stays
        // free of per-report atomics.
        self.metrics.submitted.add(batch.len() as u64);
        self.metrics.flush_reports.record(batch.len() as u64);
        let mut released: Vec<Option<CellId>> = vec![None; batch.len()];
        let n_lanes = self.config.release_lanes.max(1).min(batch.len());
        let lane_len = batch.len().div_ceil(n_lanes);
        if n_lanes == 1 {
            release_lane(
                &*self.mech,
                &self.index,
                self.config.eps,
                self.config.seed,
                &batch,
                &mut released,
            );
        } else {
            let mech = &*self.mech;
            let (index, eps, seed) = (&self.index, self.config.eps, self.config.seed);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = batch
                .chunks(lane_len)
                .zip(released.chunks_mut(lane_len))
                .map(|(reports, out)| {
                    Box::new(move || release_lane(mech, index, eps, seed, reports, out))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool
                .as_deref()
                .unwrap_or_else(|| ReleasePool::global())
                .run_scoped(jobs);
        }
        let mut landed = Vec::with_capacity(batch.len());
        for (&entry, z) in batch.iter().zip(released) {
            let r = entry.report;
            match z {
                Some(cell) => landed.push(LocationReport {
                    user: r.user,
                    epoch: r.epoch,
                    cell,
                    resend: r.resend,
                }),
                None => {
                    self.stats.rejected += 1;
                    self.metrics.rejected.inc();
                }
            }
        }
        self.stats.landed += landed.len();
        self.metrics.landed.add(landed.len() as u64);
        if !landed.is_empty() {
            self.server.receive_batch(landed);
        }
        self.stats.batches += 1;
        self.metrics.batches.inc();
        match cause {
            FlushCause::Size => self.stats.size_flushes += 1,
            FlushCause::Deadline => self.stats.deadline_flushes += 1,
            FlushCause::Forced => self.stats.forced_flushes += 1,
        }
        let ns = clock::ns_since(t0);
        self.metrics.flush_ns.record(ns);
        let ms = ns as f64 / 1e6;
        if self.stats.flush_ms.len() < FLUSH_LATENCY_WINDOW {
            self.stats.flush_ms.push(ms);
        } else {
            // Window full: overwrite the oldest sample (ring).
            self.stats.flush_ms[self.flush_cursor] = ms;
            self.flush_cursor = (self.flush_cursor + 1) % FLUSH_LATENCY_WINDOW;
        }
    }
}

/// Releases one lane of a micro-batch: each report from its own RNG stream
/// `chunk_rng(seed, arrival seq)`, so the output is a pure per-report
/// function — invariant to batching, lane count and scheduling. `None`
/// marks a rejected report.
///
/// The lane owns one [`SamplerMemo`]: the shared [`PolicyIndex`]
/// distribution cache is touched at most **once per distinct cell per
/// lane** (resolution), and every report then draws lock-free from its own
/// arrival-seq stream. Sampler resolution consumes no randomness, so the
/// landed cells are byte-identical to releasing each report through
/// [`Mechanism::perturb_batch_into`] on its own — multi-lane flushes no
/// longer serialise on the cache mutex under cell-concentrated load.
fn release_lane(
    mech: &(dyn Mechanism + Sync),
    index: &PolicyIndex,
    eps: f64,
    seed: u64,
    reports: &[SequencedReport],
    out: &mut [Option<CellId>],
) {
    let mut memo = SamplerMemo::new();
    let use_memo = mech.prefers_sampler_memo();
    for (&entry, slot) in reports.iter().zip(out.iter_mut()) {
        let (seq, r) = (entry.seq, entry.report);
        if entry.released {
            // Client-side release: the cell is final, no randomness drawn —
            // the seq only fixed its place in the overwrite order.
            *slot = Some(r.cell);
            continue;
        }
        let mut rng = chunk_rng(seed, seq);
        if !use_memo {
            // Resolution is declared trivially cheap: the per-report path
            // (identical draw streams), skipping the memo lookup.
            let mut released = [CellId(0)];
            *slot = mech
                .perturb_batch_into(index, eps, &[r.cell], &mut rng, &mut released)
                .ok()
                .map(|()| released[0]);
            continue;
        }
        *slot = match memo.resolve(mech, index, eps, r.cell) {
            Ok(Some(sampler)) => Some(sampler.draw(&mut rng)),
            // No sampler support: the historical per-report path, same
            // RNG stream.
            Ok(None) => {
                let mut released = [CellId(0)];
                mech.perturb_batch_into(index, eps, &[r.cell], &mut rng, &mut released)
                    .ok()
                    .map(|()| released[0])
            }
            // Unreleasable report (bad ε, foreign cell): rejected.
            Err(_) => None,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{GraphExponential, LocationPolicyGraph};
    use panda_geo::GridMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(shards: usize) -> (Arc<Server>, Arc<PolicyIndex>) {
        let grid = GridMap::new(8, 8, 100.0);
        let server = Arc::new(Server::with_shards(grid.clone(), shards));
        let index = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(grid, 2, 2)));
        (server, index)
    }

    fn trace(n: usize, seed: u64) -> Vec<PendingReport> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| PendingReport {
                user: UserId(rng.gen_range(0..200)),
                epoch: (i / 200) as Timestamp,
                cell: CellId(rng.gen_range(0..64)),
                resend: false,
            })
            .collect()
    }

    fn run_trace(trace: &[PendingReport], config: IngestConfig) -> (Arc<Server>, IngestStats) {
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            config,
        );
        let handle = pipeline.handle();
        for &r in trace {
            handle.submit(r).unwrap();
        }
        let stats = pipeline.shutdown();
        (server, stats)
    }

    /// The determinism contract: same seed + same arrival trace ⇒ identical
    /// server DB, regardless of lane count and flush timing.
    #[test]
    fn server_db_invariant_to_lanes_and_flush_policy() {
        let trace = trace(3_000, 5);
        let configs = [
            // One lane, big batches.
            IngestConfig {
                max_batch: 1024,
                release_lanes: 1,
                seed: 9,
                ..Default::default()
            },
            // Many lanes, big batches.
            IngestConfig {
                max_batch: 1024,
                release_lanes: 8,
                seed: 9,
                ..Default::default()
            },
            // Tiny batches: ~94 flushes instead of 3.
            IngestConfig {
                max_batch: 32,
                release_lanes: 4,
                seed: 9,
                ..Default::default()
            },
            // Deadline-dominated: flushes fire on the clock mid-stream.
            IngestConfig {
                max_batch: usize::MAX,
                max_delay: Duration::from_micros(200),
                release_lanes: 2,
                seed: 9,
                ..Default::default()
            },
        ];
        let (reference, ref_stats) = run_trace(&trace, configs[0].clone());
        assert_eq!(ref_stats.landed, trace.len());
        let horizon = 16;
        let ref_db = reference.reported_db(horizon);
        for config in &configs[1..] {
            let (server, stats) = run_trace(&trace, config.clone());
            assert_eq!(stats.landed, trace.len());
            assert_eq!(
                server.reported_db(horizon).trajectories(),
                ref_db.trajectories(),
                "lanes={} max_batch={} changed the DB",
                config.release_lanes,
                config.max_batch
            );
        }
    }

    /// A different seed must change the released stream.
    #[test]
    fn seed_is_part_of_the_stream() {
        let trace = trace(2_000, 5);
        let (a, _) = run_trace(
            &trace,
            IngestConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let (b, _) = run_trace(
            &trace,
            IngestConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(
            a.reported_db(16).trajectories(),
            b.reported_db(16).trajectories()
        );
    }

    /// Backpressure: under a bursty multi-producer load the queue never
    /// exceeds its capacity, and every blocked submit still lands.
    #[test]
    fn backpressure_bound_is_honored() {
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            IngestConfig {
                queue_capacity: 64,
                max_batch: 128,
                ..Default::default()
            },
        );
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let handle = pipeline.handle();
                std::thread::spawn(move || {
                    for i in 0..2_000u32 {
                        handle
                            .submit(PendingReport {
                                user: UserId(p * 10_000 + i % 100),
                                epoch: (i / 100) as Timestamp,
                                cell: CellId(i % 64),
                                resend: false,
                            })
                            .unwrap();
                    }
                })
            })
            .collect();
        let sampler = {
            let handle = pipeline.handle();
            std::thread::spawn(move || {
                let mut max_len = 0;
                for _ in 0..2_000 {
                    max_len = max_len.max(handle.queue_len());
                    std::thread::yield_now();
                }
                max_len
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let max_len = sampler.join().unwrap();
        assert!(
            max_len <= 64,
            "queue grew past its capacity: {max_len} > 64"
        );
        let stats = pipeline.shutdown();
        assert_eq!(stats.submitted, 8_000);
        assert_eq!(stats.landed, 8_000);
        assert_eq!(server.n_received(), 8_000);
    }

    /// try_submit fails fast with Full instead of blocking — and Closed
    /// after shutdown.
    #[test]
    fn try_submit_reports_full_and_closed() {
        let report = PendingReport {
            user: UserId(0),
            epoch: 0,
            cell: CellId(0),
            resend: false,
        };
        let (server, index) = setup(1);
        let pipeline = IngestPipeline::spawn(
            server,
            index,
            Arc::new(GraphExponential),
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        pipeline.shutdown();
        assert_eq!(
            handle.try_submit(report),
            Err(TrySubmitError::Closed(report))
        );
        assert_eq!(handle.submit(report), Err(SubmitError(report)));
    }

    /// Saturating a tiny queue with a spinning producer must surface
    /// [`TrySubmitError::Full`] (the backpressure fast-fail the README
    /// advertises), and every accepted report still lands.
    #[test]
    fn try_submit_full_under_saturated_queue() {
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            IngestConfig {
                queue_capacity: 1,
                ..Default::default()
            },
        );
        let handle = pipeline.handle();
        let mut accepted = 0usize;
        let mut saw_full = false;
        for i in 0..1_000_000u32 {
            let r = PendingReport {
                user: UserId(i % 50),
                epoch: 0,
                cell: CellId(i % 64),
                resend: false,
            };
            match handle.try_submit(r) {
                Ok(()) => accepted += 1,
                Err(TrySubmitError::Full(rejected)) => {
                    assert_eq!(rejected, r, "Full must return the report");
                    saw_full = true;
                    break;
                }
                Err(TrySubmitError::Closed(_)) => unreachable!("pipeline alive"),
            }
        }
        assert!(
            saw_full,
            "a capacity-1 queue never filled under a spinning producer"
        );
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, accepted, "accepted reports must all land");
        assert_eq!(server.n_received(), accepted);
    }

    /// `Duration::MAX` is a usable "never flush by deadline" sentinel: the
    /// deadline arithmetic must disable itself rather than panic the
    /// collector.
    #[test]
    fn duration_max_delay_disables_the_deadline() {
        let trace = trace(100, 8);
        let (server, stats) = run_trace(
            &trace,
            IngestConfig {
                max_batch: 40,
                max_delay: Duration::MAX,
                ..Default::default()
            },
        );
        assert_eq!(stats.landed, 100);
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.size_flushes, 2);
        assert_eq!(server.n_received(), 100);
    }

    /// Shutdown drains: every report queued before shutdown lands, even
    /// with a flush policy that would otherwise still be waiting.
    #[test]
    fn drain_on_shutdown_loses_no_reports() {
        let trace = trace(777, 3);
        let (server, stats) = run_trace(
            &trace,
            IngestConfig {
                // Neither bound would fire on its own before shutdown.
                max_batch: usize::MAX,
                max_delay: Duration::from_secs(3600),
                ..Default::default()
            },
        );
        assert_eq!(stats.submitted, 777);
        assert_eq!(stats.landed, 777);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.batches, 1, "single forced drain flush");
        assert_eq!(stats.forced_flushes, 1);
        assert_eq!(server.n_received(), 777);
    }

    /// Size-flush attribution, timing-robust: with the deadline effectively
    /// off, a dense stream flushes by size alone (plus one forced drain for
    /// the remainder), no matter how the collector gets scheduled.
    #[test]
    fn size_flushes_are_attributed() {
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            IngestConfig {
                max_batch: 50,
                max_delay: Duration::from_secs(3600),
                ..Default::default()
            },
        );
        let handle = pipeline.handle();
        for i in 0..120u32 {
            handle
                .submit(PendingReport {
                    user: UserId(i),
                    epoch: 0,
                    cell: CellId(i % 64),
                    resend: false,
                })
                .unwrap();
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, 120);
        assert_eq!(stats.size_flushes, 2, "{stats:?}");
        assert_eq!(stats.deadline_flushes, 0, "{stats:?}");
        assert_eq!(stats.forced_flushes, 1, "20-report drain: {stats:?}");
        assert_eq!(server.n_received(), 120);
    }

    /// Deadline-flush attribution: with the size bound effectively off, a
    /// trickle lands via the deadline (observed by polling the server, so a
    /// slow scheduler only delays the test, never fails it).
    #[test]
    fn deadline_flushes_are_attributed() {
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            IngestConfig {
                max_batch: usize::MAX,
                max_delay: Duration::from_millis(5),
                ..Default::default()
            },
        );
        let handle = pipeline.handle();
        for i in 0..3u32 {
            handle
                .submit(PendingReport {
                    user: UserId(i),
                    epoch: 0,
                    cell: CellId(i),
                    resend: false,
                })
                .unwrap();
        }
        // Only the deadline can flush these; wait for it to fire.
        let t0 = std::time::Instant::now();
        while server.n_received() < 3 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "deadline flush never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, 3);
        assert!(stats.deadline_flushes >= 1, "{stats:?}");
        assert_eq!(stats.size_flushes, 0, "{stats:?}");
    }

    /// In-band policy switches apply to everything after the switch, and
    /// the landed outputs respect the policy in force at submit order.
    #[test]
    fn policy_switch_is_a_clean_boundary() {
        let grid = GridMap::new(8, 8, 100.0);
        let server = Arc::new(Server::new(grid.clone()));
        let coarse = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
            grid.clone(),
            4,
            4,
        )));
        let isolated = Arc::new(PolicyIndex::new(LocationPolicyGraph::isolated(grid)));
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            coarse,
            Arc::new(GraphExponential),
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        for i in 0..50u32 {
            handle
                .submit(PendingReport {
                    user: UserId(i),
                    epoch: 0,
                    cell: CellId(i % 64),
                    resend: false,
                })
                .unwrap();
        }
        pipeline.switch_policy(Arc::clone(&isolated));
        for i in 0..50u32 {
            handle
                .submit(PendingReport {
                    user: UserId(i),
                    epoch: 1,
                    cell: CellId(i % 64),
                    resend: false,
                })
                .unwrap();
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, 100);
        assert_eq!(stats.policy_switches, 1);
        // Under the isolated policy every epoch-1 report is exact.
        for i in 0..50u32 {
            assert_eq!(
                server.reported_cell(UserId(i), 1),
                Some(CellId(i % 64)),
                "isolated policy must release exactly"
            );
        }
    }

    /// The sampler-handle contract: the streaming path (per-lane memoised
    /// [`SamplerMemo`] release) must land a database bit-identical to
    /// releasing every report through the per-report path (one
    /// `perturb_batch_into` call per arrival-seq stream) — for every
    /// mechanism, lane count in 1..16, and flush timing.
    #[test]
    fn sampler_streaming_matches_per_report_reference() {
        use panda_core::{
            EuclideanExponential, GraphCalibratedLaplace, IdentityMechanism, PlanarIsotropic,
            UniformComponent,
        };
        let trace = trace(1_500, 21);
        let eps = 0.8;
        let seed = 17;
        let mechs: Vec<Arc<dyn Mechanism + Send + Sync>> = vec![
            Arc::new(GraphExponential),
            Arc::new(EuclideanExponential),
            Arc::new(GraphCalibratedLaplace),
            Arc::new(PlanarIsotropic::new()),
            Arc::new(IdentityMechanism),
            Arc::new(UniformComponent),
        ];
        for mech in mechs {
            // Per-report reference: each report released alone from its own
            // arrival-seq stream, landed through an identical server.
            let (ref_server, index) = setup(16);
            let mut landed = Vec::new();
            for (seq, r) in trace.iter().enumerate() {
                let mut rng = chunk_rng(seed, seq as u64);
                let mut out = [CellId(0)];
                if mech
                    .perturb_batch_into(&index, eps, &[r.cell], &mut rng, &mut out)
                    .is_ok()
                {
                    landed.push(LocationReport {
                        user: r.user,
                        epoch: r.epoch,
                        cell: out[0],
                        resend: r.resend,
                    });
                }
            }
            ref_server.receive_batch(landed);
            let ref_db = ref_server.reported_db(16);

            for (lanes, max_batch, delay) in [
                (1, 512, Duration::from_millis(5)),
                (4, 64, Duration::from_millis(5)),
                (8, 512, Duration::from_millis(5)),
                (16, usize::MAX, Duration::from_micros(200)),
            ] {
                let (server, _) = setup(16);
                let pipeline = IngestPipeline::spawn(
                    Arc::clone(&server),
                    Arc::clone(&index),
                    Arc::clone(&mech),
                    IngestConfig {
                        max_batch,
                        max_delay: delay,
                        release_lanes: lanes,
                        eps,
                        seed,
                        ..Default::default()
                    },
                );
                let handle = pipeline.handle();
                for &r in &trace {
                    handle.submit(r).unwrap();
                }
                let stats = pipeline.shutdown();
                assert_eq!(stats.landed, trace.len());
                assert_eq!(
                    server.reported_db(16).trajectories(),
                    ref_db.trajectories(),
                    "{}: lanes={lanes} max_batch={max_batch} diverged from the \
                     per-report reference",
                    mech.name()
                );
            }
        }
    }

    /// The contention fix, asserted through the [`PolicyIndex`] diagnostics:
    /// a flush touches the shared distribution cache at most once per
    /// distinct cell per lane — not once per report, as the per-report path
    /// did.
    #[test]
    fn flush_touches_cache_once_per_distinct_cell_per_lane() {
        let (server, index) = setup(16);
        let distinct = 4usize;
        let lanes = 4usize;
        let trace: Vec<PendingReport> = (0..2_000u32)
            .map(|i| PendingReport {
                user: UserId(i % 300),
                epoch: (i / 300) as Timestamp,
                cell: CellId(i % distinct as u32), // cell-concentrated load
                resend: false,
            })
            .collect();
        let touches0 = index.distribution_cache_touches();
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            Arc::clone(&index),
            Arc::new(GraphExponential),
            IngestConfig {
                max_batch: 256,
                max_delay: Duration::from_secs(3600),
                release_lanes: lanes,
                ..Default::default()
            },
        );
        let handle = pipeline.handle();
        for &r in &trace {
            handle.submit(r).unwrap();
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.landed, trace.len());
        let touches = index.distribution_cache_touches() - touches0;
        let bound = (stats.batches * lanes * distinct) as u64;
        assert!(
            touches <= bound,
            "cache touched {touches} times; bound is batches({}) × lanes({lanes}) × \
             distinct({distinct}) = {bound}",
            stats.batches
        );
        assert!(
            touches < trace.len() as u64,
            "sampler handles must beat one touch per report ({touches} vs {})",
            trace.len()
        );
    }

    /// `submit_batch` must be observationally equivalent to repeated
    /// `submit`: same arrival sequence numbers, hence a byte-identical
    /// landed DB — batching is purely a locking optimisation.
    #[test]
    fn submit_batch_equivalent_to_repeated_submit() {
        let trace = trace(2_500, 11);
        let config = IngestConfig {
            max_batch: 128,
            // Smaller than the 700-report chunks below, so the blocking
            // batch send really parks mid-batch and resumes — the
            // determinism claim covers the park/resume path.
            queue_capacity: 256,
            seed: 4,
            ..Default::default()
        };
        let (by_one, one_stats) = run_trace(&trace, config.clone());
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            config,
        );
        let handle = pipeline.handle();
        // 700-report chunks against a 256-slot queue: every full chunk
        // overfills the queue, so the blocking path parks mid-batch and
        // resumes as the collector drains.
        for chunk in trace.chunks(700) {
            handle.submit_batch(chunk).unwrap();
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.submitted, one_stats.submitted);
        assert_eq!(stats.landed, one_stats.landed);
        assert_eq!(
            server.reported_db(16).trajectories(),
            by_one.reported_db(16).trajectories(),
            "batched submission changed the landed DB"
        );
    }

    /// `try_submit_batch` enqueues a prefix under backpressure and the
    /// retried remainder preserves order; against a closed pipeline it
    /// reports `Closed` with the first report.
    #[test]
    fn try_submit_batch_prefix_and_closed_semantics() {
        let trace = trace(300, 2);
        let (server, index) = setup(16);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            IngestConfig {
                queue_capacity: 8,
                max_batch: 64,
                ..Default::default()
            },
        );
        let handle = pipeline.handle();
        let mut sent = 0usize;
        while sent < trace.len() {
            sent += handle.try_submit_batch(&trace[sent..]).unwrap();
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.submitted, trace.len());
        assert_eq!(stats.landed, trace.len());
        assert_eq!(server.n_received(), trace.len());

        let (server, index) = setup(1);
        let pipeline = IngestPipeline::spawn(
            server,
            index,
            Arc::new(GraphExponential),
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        pipeline.shutdown();
        assert_eq!(
            handle.try_submit_batch(&trace),
            Err(TrySubmitError::Closed(trace[0]))
        );
        assert_eq!(handle.submit_batch(&trace), Err(SubmitError(trace[0])));
        assert!(matches!(handle.switch_policy(setup(1).1), Err(SwitchError)));
    }

    /// A handle-level policy switch is the same in-band boundary as the
    /// pipeline-level one.
    #[test]
    fn handle_switch_policy_is_in_band() {
        let grid = GridMap::new(8, 8, 100.0);
        let server = Arc::new(Server::new(grid.clone()));
        let coarse = Arc::new(PolicyIndex::new(LocationPolicyGraph::partition(
            grid.clone(),
            4,
            4,
        )));
        let isolated = Arc::new(PolicyIndex::new(LocationPolicyGraph::isolated(grid)));
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            coarse,
            Arc::new(GraphExponential),
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        let epoch0: Vec<PendingReport> = (0..40u32)
            .map(|i| PendingReport {
                user: UserId(i),
                epoch: 0,
                cell: CellId(i % 64),
                resend: false,
            })
            .collect();
        let epoch1: Vec<PendingReport> = epoch0
            .iter()
            .map(|r| PendingReport { epoch: 1, ..*r })
            .collect();
        handle.submit_batch(&epoch0).unwrap();
        handle.switch_policy(Arc::clone(&isolated)).unwrap();
        handle.submit_batch(&epoch1).unwrap();
        let stats = pipeline.shutdown();
        assert_eq!(stats.policy_switches, 1);
        assert_eq!(stats.landed, 80);
        for i in 0..40u32 {
            assert_eq!(
                server.reported_cell(UserId(i), 1),
                Some(CellId(i % 64)),
                "isolated policy must release exactly after the switch"
            );
        }
    }

    /// The ingest errors compose with `?` in `std::error::Error` contexts
    /// and render the failure cause.
    #[test]
    fn submit_errors_are_std_errors() {
        let r = PendingReport {
            user: UserId(9),
            epoch: 3,
            cell: CellId(0),
            resend: false,
        };
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(SubmitError(r)),
            Box::new(TrySubmitError::Full(r)),
            Box::new(TrySubmitError::Closed(r)),
            Box::new(SwitchError),
        ];
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("shut down") && rendered[0].contains("user 9"));
        assert!(rendered[1].contains("capacity"));
        assert!(rendered[2].contains("shut down"));
        assert!(rendered[3].contains("switch"));
    }

    /// Reports that cannot be released (foreign cell) are rejected and
    /// counted, not landed — and don't poison the rest of the batch.
    #[test]
    fn rejected_reports_are_counted_not_landed() {
        let (server, index) = setup(4);
        let pipeline = IngestPipeline::spawn(
            Arc::clone(&server),
            index,
            Arc::new(GraphExponential),
            IngestConfig::default(),
        );
        let handle = pipeline.handle();
        for i in 0..10u32 {
            handle
                .submit(PendingReport {
                    user: UserId(i),
                    epoch: 0,
                    // Every third report is out of the 8×8 domain.
                    cell: if i % 3 == 0 {
                        CellId(u32::MAX)
                    } else {
                        CellId(i)
                    },
                    resend: false,
                })
                .unwrap();
        }
        let stats = pipeline.shutdown();
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.landed, 6);
        assert_eq!(server.n_received(), 6);
    }
}
