//! The user-side client: local location database, consent, perturbation.
//!
//! Per Fig. 1, users "locally maintain location databases (e.g., all
//! locations in the past two weeks) and share perturbed locations
//! satisfying PGLP". The client owns the only copy of the true trajectory;
//! everything that leaves it has passed through a PGLP mechanism under a
//! consented policy, and every release is charged to a budget ledger.

use crate::protocol::{LocationReport, PolicyAssignment, ResendRequest};
use panda_core::budget::BudgetLedger;
use panda_core::{LocationPolicyGraph, Mechanism, PglpError, PolicyIndex};
use panda_geo::CellId;
use panda_mobility::{Timestamp, UserId};
use rand::RngCore;
use std::collections::VecDeque;

/// How the user decides whether to accept a recommended policy (§2.1 gives
/// the user the right to reject).
#[derive(Debug, Clone, Copy)]
pub enum ConsentRule {
    /// Accept everything (the demo default).
    AlwaysAccept,
    /// Reject policies whose graph density falls below a floor — a user who
    /// insists on a minimum amount of indistinguishability. Isolated-cell
    /// disclosure of infected locations is still permitted because density
    /// is measured over the whole graph.
    MinDensity(f64),
    /// Reject policies that would isolate (= disclose exactly) more than
    /// this fraction of the user's recent locations.
    MaxDisclosedFraction(f64),
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Epochs of history kept locally (the paper's "past two weeks").
    pub retention: Timestamp,
    /// Lifetime privacy budget.
    pub budget: f64,
    /// Consent rule for incoming policy assignments.
    pub consent: ConsentRule,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retention: 336, // 14 days × 24 hourly epochs
            budget: 50.0,
            consent: ConsentRule::AlwaysAccept,
        }
    }
}

/// A PANDA client.
pub struct Client {
    user: UserId,
    config: ClientConfig,
    /// `(epoch, true cell)` ring buffer, newest at the back.
    history: VecDeque<(Timestamp, CellId)>,
    /// The consented policy plus its precomputed sampling index; every
    /// release — routine or re-send — runs through the indexed batch path.
    index: PolicyIndex,
    mechanism: Box<dyn Mechanism + Send + Sync>,
    ledger: BudgetLedger,
    eps_per_epoch: f64,
}

impl Client {
    /// Creates a client with an initial (consented) policy and mechanism.
    pub fn new(
        user: UserId,
        config: ClientConfig,
        policy: LocationPolicyGraph,
        mechanism: Box<dyn Mechanism + Send + Sync>,
        eps_per_epoch: f64,
    ) -> Self {
        let ledger = BudgetLedger::new(config.budget);
        Client {
            user,
            config,
            history: VecDeque::new(),
            index: PolicyIndex::new(policy),
            mechanism,
            ledger,
            eps_per_epoch,
        }
    }

    /// The client's user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Remaining privacy budget.
    pub fn budget_remaining(&self) -> f64 {
        self.ledger.remaining()
    }

    /// The policy currently in force.
    pub fn policy(&self) -> &LocationPolicyGraph {
        self.index.policy()
    }

    /// The sampling index of the policy currently in force.
    pub fn policy_index(&self) -> &PolicyIndex {
        &self.index
    }

    /// Number of epochs currently retained.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Records the true location for `epoch` in the local database,
    /// evicting entries older than the retention window.
    pub fn observe(&mut self, epoch: Timestamp, cell: CellId) {
        debug_assert!(
            self.history.back().is_none_or(|&(t, _)| t < epoch),
            "observations must arrive in epoch order"
        );
        self.history.push_back((epoch, cell));
        let cutoff = epoch.saturating_sub(self.config.retention.saturating_sub(1));
        while let Some(&(t, _)) = self.history.front() {
            if t < cutoff {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// The locally-stored true cell for `epoch`, if still retained.
    pub fn true_location(&self, epoch: Timestamp) -> Option<CellId> {
        self.history
            .iter()
            .find(|&&(t, _)| t == epoch)
            .map(|&(_, c)| c)
    }

    /// Decides whether to accept a policy assignment per the consent rule.
    pub fn consents_to(&self, assignment: &PolicyAssignment) -> bool {
        match self.config.consent {
            ConsentRule::AlwaysAccept => true,
            ConsentRule::MinDensity(floor) => assignment.policy.density() >= floor,
            ConsentRule::MaxDisclosedFraction(max_frac) => {
                if self.history.is_empty() {
                    return true;
                }
                let disclosed = self
                    .history
                    .iter()
                    .filter(|&&(_, c)| assignment.policy.is_isolated_cell(c))
                    .count();
                (disclosed as f64 / self.history.len() as f64) <= max_frac
            }
        }
    }

    /// Applies a policy assignment. Returns `false` (and keeps the old
    /// policy) when consent is refused — in that case the client stops
    /// reporting rather than reporting under a policy it rejected.
    pub fn apply_assignment(&mut self, assignment: PolicyAssignment) -> bool {
        if !self.consents_to(&assignment) {
            return false;
        }
        self.index = PolicyIndex::new(assignment.policy);
        self.eps_per_epoch = assignment.eps_per_epoch;
        true
    }

    /// Produces the perturbed report for `epoch` (which must be in the local
    /// database), charging the budget.
    ///
    /// # Errors
    ///
    /// Budget exhaustion or invalid ε surface as [`PglpError`]; a missing
    /// epoch yields [`PglpError::LocationOutOfDomain`] with the sentinel
    /// cell `u32::MAX` (the epoch is not in retention).
    pub fn report(
        &mut self,
        epoch: Timestamp,
        rng: &mut dyn RngCore,
    ) -> Result<LocationReport, PglpError> {
        let Some(cell) = self.true_location(epoch) else {
            return Err(PglpError::LocationOutOfDomain(CellId(u32::MAX)));
        };
        let policy = self.index.policy();
        policy.check_cell(cell)?;
        // Isolated cells release exactly and are free (parallel to
        // Lemma 2.1's unconstrained case); everything else costs ε.
        if !policy.is_isolated_cell(cell) {
            if !self.ledger.can_afford(self.eps_per_epoch) {
                return Err(PglpError::BudgetExhausted {
                    requested: self.eps_per_epoch,
                    remaining: self.ledger.remaining(),
                });
            }
            self.ledger
                .charge(epoch as u64, policy.name(), self.eps_per_epoch)?;
        }
        // The indexed path serves repeat visits to the same cell from a
        // cached sampling table instead of rebuilding the distribution.
        let perturbed = self
            .mechanism
            .perturb_batch(
                &self.index,
                self.eps_per_epoch,
                std::slice::from_ref(&cell),
                rng,
            )?
            .pop()
            .expect("batch of one yields one release");
        Ok(LocationReport {
            user: self.user,
            epoch,
            cell: perturbed,
            resend: false,
        })
    }

    /// Plans the routine reporting of every retained epoch in
    /// `[0, horizon)`: charges the budget exactly as per-epoch
    /// [`Client::report`] calls would (isolated cells release exactly and
    /// are free) and returns the affordable `(epoch, true cell)` prefix
    /// plus whether the budget ran dry before the horizon.
    ///
    /// The caller perturbs the returned cells — typically in one
    /// [`panda_core::release::ParallelReleaser`] batch shared across all
    /// clients — which is distributionally identical to the per-epoch
    /// `report` loop.
    pub fn plan_routine(&mut self, horizon: Timestamp) -> (Vec<(Timestamp, CellId)>, bool) {
        let mut plan = Vec::new();
        let policy = self.index.policy();
        for &(t, cell) in self.history.iter().filter(|&&(t, _)| t < horizon) {
            if policy.check_cell(cell).is_err() {
                break;
            }
            if !policy.is_isolated_cell(cell) {
                if !self.ledger.can_afford(self.eps_per_epoch) {
                    return (plan, true);
                }
                if self
                    .ledger
                    .charge(t as u64, policy.name(), self.eps_per_epoch)
                    .is_err()
                {
                    return (plan, true);
                }
            }
            plan.push((t, cell));
        }
        (plan, false)
    }

    /// Plans a re-send: applies the updated policy (subject to consent)
    /// and charges the ledger epoch by epoch, returning the affordable
    /// `(epoch, true cell)` prefix of the window — or `None` when consent
    /// is refused (the old policy is kept and nothing is charged).
    ///
    /// This is the **accounting half** of [`Client::handle_resend`], and
    /// it is transport-agnostic on purpose: the same call backs the
    /// in-process path and the wire path (a `ResendRequest` frame fetched
    /// from a gateway mailbox), so budget state after a re-send cannot
    /// depend on how the request arrived.
    ///
    /// # Errors
    ///
    /// A retained cell outside the updated policy's domain surfaces as
    /// [`PglpError`]; budget exhaustion is not an error (it truncates the
    /// plan).
    pub fn plan_resend(
        &mut self,
        request: &ResendRequest,
    ) -> Result<Option<Vec<(Timestamp, CellId)>>, PglpError> {
        let assignment = PolicyAssignment {
            user: self.user,
            policy: request.policy.clone(),
            eps_per_epoch: request.eps_per_epoch,
            effective_from: request.from,
        };
        if !self.apply_assignment(assignment) {
            return Ok(None); // consent refused: nothing re-sent
        }
        // Charge the ledger epoch by epoch, keeping the prefix the budget
        // covers (isolated cells disclose exactly and are free).
        let epochs: Vec<(Timestamp, CellId)> = self
            .history
            .iter()
            .copied()
            .filter(|&(t, _)| t >= request.from && t < request.to)
            .collect();
        let policy = self.index.policy();
        let mut affordable = Vec::with_capacity(epochs.len());
        for (t, cell) in epochs {
            policy.check_cell(cell)?;
            if !policy.is_isolated_cell(cell) {
                if !self.ledger.can_afford(self.eps_per_epoch) {
                    break; // stop re-sending when the budget runs dry
                }
                self.ledger
                    .charge(t as u64, policy.name(), self.eps_per_epoch)?;
            }
            affordable.push((t, cell));
        }
        Ok(Some(affordable))
    }

    /// Releases a planned re-send: one indexed bulk perturbation of the
    /// planned window — the policy-graph work (distances, distributions)
    /// is shared across all re-sent epochs instead of being redone per
    /// epoch. The budget was already charged by [`Client::plan_resend`];
    /// this half only draws randomness.
    ///
    /// # Errors
    ///
    /// Invalid ε or an out-of-domain cell surfaces as [`PglpError`].
    pub fn release_resend(
        &mut self,
        plan: &[(Timestamp, CellId)],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<LocationReport>, PglpError> {
        let cells: Vec<CellId> = plan.iter().map(|&(_, c)| c).collect();
        let perturbed =
            self.mechanism
                .perturb_batch(&self.index, self.eps_per_epoch, &cells, rng)?;
        Ok(plan
            .iter()
            .zip(perturbed)
            .map(|(&(t, _), cell)| LocationReport {
                user: self.user,
                epoch: t,
                cell,
                resend: true,
            })
            .collect())
    }

    /// Handles a re-send request: applies the updated policy (subject to
    /// consent) and re-perturbs every retained epoch in the window —
    /// [`Client::plan_resend`] (consent + budget accounting) composed
    /// with [`Client::release_resend`] (bulk perturbation).
    ///
    /// Epochs whose true cell is isolated in the updated policy are
    /// disclosed exactly — this is precisely how the contact-tracing `Gc`
    /// lets the server learn who visited infected places (§3.2).
    pub fn handle_resend(
        &mut self,
        request: &ResendRequest,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<LocationReport>, PglpError> {
        match self.plan_resend(request)? {
            Some(plan) => self.release_resend(&plan, rng),
            None => Ok(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::GraphExponential;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    fn client(consent: ConsentRule, budget: f64) -> Client {
        Client::new(
            UserId(1),
            ClientConfig {
                retention: 5,
                budget,
                consent,
            },
            LocationPolicyGraph::partition(grid(), 2, 2),
            Box::new(GraphExponential),
            0.5,
        )
    }

    #[test]
    fn retention_window_evicts() {
        let mut c = client(ConsentRule::AlwaysAccept, 10.0);
        for t in 0..10 {
            c.observe(t, CellId(t % 16));
        }
        assert_eq!(c.history_len(), 5);
        assert_eq!(c.true_location(9), Some(CellId(9)));
        assert_eq!(c.true_location(4), None, "evicted epoch must be gone");
    }

    #[test]
    fn report_is_perturbed_within_component_and_charged() {
        let mut c = client(ConsentRule::AlwaysAccept, 10.0);
        c.observe(0, CellId(0));
        let mut rng = SmallRng::seed_from_u64(1);
        let r = c.report(0, &mut rng).unwrap();
        assert_eq!(r.user, UserId(1));
        assert_eq!(r.epoch, 0);
        assert!(c.policy().same_component(CellId(0), r.cell));
        assert!((c.budget_remaining() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn report_unknown_epoch_fails() {
        let mut c = client(ConsentRule::AlwaysAccept, 10.0);
        c.observe(0, CellId(0));
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(c.report(3, &mut rng).is_err());
    }

    #[test]
    fn budget_exhaustion_stops_reporting() {
        let mut c = client(ConsentRule::AlwaysAccept, 1.0);
        for t in 0..4 {
            c.observe(t, CellId(5));
        }
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(c.report(0, &mut rng).is_ok());
        assert!(c.report(1, &mut rng).is_ok());
        let err = c.report(2, &mut rng).unwrap_err();
        assert!(matches!(err, PglpError::BudgetExhausted { .. }));
    }

    #[test]
    fn isolated_cells_are_free_and_exact() {
        let mut c = Client::new(
            UserId(2),
            ClientConfig {
                retention: 5,
                budget: 1.0,
                consent: ConsentRule::AlwaysAccept,
            },
            LocationPolicyGraph::isolated(grid()),
            Box::new(GraphExponential),
            0.5,
        );
        c.observe(0, CellId(7));
        let mut rng = SmallRng::seed_from_u64(4);
        let before = c.budget_remaining();
        let r = c.report(0, &mut rng).unwrap();
        assert_eq!(r.cell, CellId(7));
        assert_eq!(c.budget_remaining(), before, "exact release is free");
    }

    #[test]
    fn plan_routine_matches_per_epoch_report_budgeting() {
        // Two identical clients: one reports per epoch, one plans. Same
        // affordable epochs, same budget afterwards.
        let build = || {
            let mut c = client(ConsentRule::AlwaysAccept, 2.0); // 4 × 0.5
            for t in 0..5 {
                c.observe(t, CellId(5));
            }
            c
        };
        let mut reporting = build();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut reported = Vec::new();
        for t in 0..5 {
            match reporting.report(t, &mut rng) {
                Ok(r) => reported.push(r.epoch),
                Err(PglpError::BudgetExhausted { .. }) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        let mut planning = build();
        let (plan, exhausted) = planning.plan_routine(5);
        assert!(exhausted);
        assert_eq!(
            plan.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            reported,
            "plan must cover exactly the epochs report() affords"
        );
        assert_eq!(planning.budget_remaining(), reporting.budget_remaining());
        // Isolated cells stay free in the plan too.
        let mut free = Client::new(
            UserId(3),
            ClientConfig {
                retention: 5,
                budget: 1.0,
                consent: ConsentRule::AlwaysAccept,
            },
            LocationPolicyGraph::isolated(grid()),
            Box::new(GraphExponential),
            0.5,
        );
        for t in 0..5 {
            free.observe(t, CellId(7));
        }
        let (plan, exhausted) = free.plan_routine(5);
        assert_eq!(plan.len(), 5);
        assert!(!exhausted);
        assert_eq!(free.budget_remaining(), 1.0);
    }

    #[test]
    fn consent_min_density() {
        let c = client(ConsentRule::MinDensity(0.5), 10.0);
        let sparse = PolicyAssignment {
            user: UserId(1),
            policy: LocationPolicyGraph::isolated(grid()),
            eps_per_epoch: 0.5,
            effective_from: 0,
        };
        assert!(!c.consents_to(&sparse));
        let dense = PolicyAssignment {
            user: UserId(1),
            policy: LocationPolicyGraph::complete(grid()),
            eps_per_epoch: 0.5,
            effective_from: 0,
        };
        assert!(c.consents_to(&dense));
    }

    #[test]
    fn consent_max_disclosed_fraction() {
        let mut c = client(ConsentRule::MaxDisclosedFraction(0.4), 10.0);
        for t in 0..4 {
            c.observe(t, CellId(t)); // cells 0..4
        }
        // Isolating cells 0 and 1 would disclose half of history: refuse.
        let aggressive = PolicyAssignment {
            user: UserId(1),
            policy: LocationPolicyGraph::complete(grid()).with_isolated(&[
                CellId(0),
                CellId(1),
                CellId(2),
            ]),
            eps_per_epoch: 0.5,
            effective_from: 4,
        };
        assert!(!c.consents_to(&aggressive));
        // Isolating one cell (25%) is fine.
        let mild = PolicyAssignment {
            user: UserId(1),
            policy: LocationPolicyGraph::complete(grid()).with_isolated(&[CellId(0)]),
            eps_per_epoch: 0.5,
            effective_from: 4,
        };
        assert!(c.consents_to(&mild));
        assert!(c.apply_assignment(mild));
        assert!(c.policy().is_isolated_cell(CellId(0)));
    }

    #[test]
    fn refused_assignment_keeps_old_policy() {
        let mut c = client(ConsentRule::MinDensity(0.9), 10.0);
        let old_name = c.policy().name().to_string();
        let refused = PolicyAssignment {
            user: UserId(1),
            policy: LocationPolicyGraph::isolated(grid()),
            eps_per_epoch: 0.1,
            effective_from: 0,
        };
        assert!(!c.apply_assignment(refused));
        assert_eq!(c.policy().name(), old_name);
    }

    #[test]
    fn resend_disclosing_infected_cells() {
        let mut c = client(ConsentRule::AlwaysAccept, 20.0);
        for t in 0..5 {
            c.observe(t, CellId(0)); // always at infected cell 0
        }
        let gc = LocationPolicyGraph::partition(grid(), 2, 2).with_isolated(&[CellId(0)]);
        let req = ResendRequest {
            user: UserId(1),
            from: 0,
            to: 5,
            policy: gc,
            eps_per_epoch: 0.5,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let reports = c.handle_resend(&req, &mut rng).unwrap();
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!(r.resend);
            assert_eq!(r.cell, CellId(0), "infected cell must be disclosed exactly");
        }
        // Exact disclosures are free: full budget remains.
        assert!((c.budget_remaining() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn resend_respects_budget() {
        let mut c = client(ConsentRule::AlwaysAccept, 1.0);
        for t in 0..5 {
            c.observe(t, CellId(5)); // never at an isolated cell
        }
        let req = ResendRequest {
            user: UserId(1),
            from: 0,
            to: 5,
            policy: LocationPolicyGraph::partition(grid(), 2, 2),
            eps_per_epoch: 0.5,
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let reports = c.handle_resend(&req, &mut rng).unwrap();
        assert_eq!(reports.len(), 2, "budget of 1.0 covers two 0.5 releases");
    }
}
