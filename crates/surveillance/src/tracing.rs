//! Contact tracing (§3.1–3.2, third application) with dynamic policies.
//!
//! The paper's decision rule: "we assume a simple rule of two persons have
//! been \[in\] the same location at the same time at least twice". The §3.2
//! procedure:
//!
//! 1. a diagnosed patient's true history is confirmed (their policy allows
//!    full disclosure);
//! 2. the Policy Graph Configuration module updates the policies of other
//!    users — the patient's cells become isolated nodes (`Gc`);
//! 3. affected users **re-send** their past window under the updated
//!    policy, so visits to infected cells arrive exactly while everything
//!    else stays perturbed;
//! 4. the rule runs on the re-sent data and flags at-risk users.
//!
//! [`dynamic_trace`] drives the full loop over real [`Client`]s and a
//! [`Server`]; [`ContactTracer::find_contacts`] is the bare rule, usable on
//! any trajectory database (true or perturbed) for the precision/recall
//! comparisons of the experiments.

use crate::client::Client;
use crate::policy_config::PolicyConfigurator;
use crate::protocol::ResendRequest;
use crate::server::Server;
use panda_geo::CellId;
use panda_mobility::{Timestamp, TrajectoryDb, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The co-location decision rule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContactRule {
    /// Minimum number of (same cell, same epoch) coincidences — the paper
    /// uses 2.
    pub min_co_occurrences: u32,
}

impl Default for ContactRule {
    fn default() -> Self {
        ContactRule {
            min_co_occurrences: 2,
        }
    }
}

/// The bare contact-tracing rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContactTracer {
    /// Decision rule in force.
    pub rule: ContactRule,
}

impl ContactTracer {
    /// Users co-located with the patient history `(epoch, cell)` at least
    /// `min_co_occurrences` times within the window, according to `db`.
    /// The patient themself is excluded. Sorted by user id.
    pub fn find_contacts(
        &self,
        db: &TrajectoryDb,
        patient: UserId,
        patient_history: &[(Timestamp, CellId)],
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<UserId> {
        let mut counts: HashMap<UserId, u32> = HashMap::new();
        let window: Vec<&(Timestamp, CellId)> = patient_history
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .collect();
        for &&(t, cell) in &window {
            for user in db.users_at(cell, t) {
                if user != patient {
                    *counts.entry(user).or_insert(0) += 1;
                }
            }
        }
        let mut flagged: Vec<UserId> = counts
            .into_iter()
            .filter(|&(_, n)| n >= self.rule.min_co_occurrences)
            .map(|(u, _)| u)
            .collect();
        flagged.sort_unstable();
        flagged
    }
}

/// Result of a tracing round, with ground-truth comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceOutcome {
    /// Users flagged at risk by the rule on server-side data.
    pub flagged: Vec<UserId>,
    /// Users actually at risk (rule evaluated on true trajectories).
    pub ground_truth: Vec<UserId>,
    /// |flagged ∩ truth| / |flagged| (1 when nothing flagged).
    pub precision: f64,
    /// |flagged ∩ truth| / |truth| (1 when truth is empty).
    pub recall: f64,
    /// Number of re-sent reports the round triggered.
    pub resend_count: usize,
}

impl TraceOutcome {
    /// Computes precision/recall for a flag set against ground truth.
    pub fn evaluate(flagged: Vec<UserId>, ground_truth: Vec<UserId>, resend_count: usize) -> Self {
        let tp = flagged.iter().filter(|u| ground_truth.contains(u)).count() as f64;
        let precision = if flagged.is_empty() {
            1.0
        } else {
            tp / flagged.len() as f64
        };
        let recall = if ground_truth.is_empty() {
            1.0
        } else {
            tp / ground_truth.len() as f64
        };
        TraceOutcome {
            flagged,
            ground_truth,
            precision,
            recall,
            resend_count,
        }
    }
}

/// Runs the full §3.2 dynamic-tracing round.
///
/// * `clients` — all user clients (including the patient's).
/// * `truth` — the ground-truth trajectory database (used only to compute
///   the reference contact set; the protocol itself never touches it).
/// * `patient` — the diagnosed user.
/// * `window` — the look-back window `[from, to)` (the paper's two weeks).
/// * `eps_resend` — ε per re-sent epoch.
///
/// Returns the outcome with precision/recall against the rule evaluated on
/// `truth`.
#[allow(clippy::too_many_arguments)]
pub fn dynamic_trace(
    clients: &mut [Client],
    server: &Server,
    configurator: &PolicyConfigurator,
    truth: &TrajectoryDb,
    patient: UserId,
    window: (Timestamp, Timestamp),
    eps_resend: f64,
    rule: ContactRule,
    rng: &mut dyn RngCore,
) -> TraceOutcome {
    let (from, to) = window;
    // Step 1: the patient disclosea their true history. Their updated
    // policy is all-isolated (full disclosure), per the §1 example policy
    // for diagnosed patients.
    let patient_client = clients
        .iter_mut()
        .find(|c| c.user() == patient)
        .expect("patient client missing");
    let disclose_policy = panda_core::LocationPolicyGraph::isolated(configurator.grid().clone());
    let patient_reports = patient_client
        .handle_resend(
            &ResendRequest {
                user: patient,
                from,
                to,
                policy: disclose_policy,
                eps_per_epoch: eps_resend,
            },
            rng,
        )
        .expect("patient disclosure cannot fail");
    let patient_history: Vec<(Timestamp, CellId)> =
        patient_reports.iter().map(|r| (r.epoch, r.cell)).collect();
    server.receive_all(patient_reports.iter().copied());
    server.record_diagnosis(patient, to);
    server.record_infected_visits(&patient_history);

    // Step 2: policy update for everyone else.
    let gc = configurator.update_on_diagnosis(&patient_history);

    // Step 3: re-send round.
    let mut resend_count = 0usize;
    for client in clients.iter_mut().filter(|c| c.user() != patient) {
        let reports = client
            .handle_resend(
                &ResendRequest {
                    user: client.user(),
                    from,
                    to,
                    policy: gc.clone(),
                    eps_per_epoch: eps_resend,
                },
                rng,
            )
            .expect("resend failed");
        resend_count += reports.len();
        server.receive_all(reports);
    }

    // Step 4: run the rule on the server's (re-sent) view.
    let tracer = ContactTracer { rule };
    let reported = server.reported_db(to);
    let flagged = tracer.find_contacts(&reported, patient, &patient_history, from, to);

    // Reference: the rule on ground truth.
    let true_history: Vec<(Timestamp, CellId)> = (from..to)
        .filter_map(|t| truth.cell_of(patient, t).map(|c| (t, c)))
        .collect();
    let ground_truth = tracer.find_contacts(truth, patient, &true_history, from, to);

    TraceOutcome::evaluate(flagged, ground_truth, resend_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, ConsentRule};
    use panda_core::{GraphExponential, LocationPolicyGraph};
    use panda_geo::GridMap;
    use panda_mobility::Trajectory;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(8, 8, 100.0)
    }

    /// Patient 0 meets user 1 twice (epochs 1, 2) and user 2 once (epoch 3).
    fn truth_db() -> TrajectoryDb {
        let g = grid();
        TrajectoryDb::new(
            g.clone(),
            vec![
                Trajectory {
                    user: UserId(0),
                    cells: vec![g.cell(0, 0), g.cell(2, 2), g.cell(2, 2), g.cell(5, 5)],
                },
                Trajectory {
                    user: UserId(1),
                    cells: vec![g.cell(7, 7), g.cell(2, 2), g.cell(2, 2), g.cell(0, 7)],
                },
                Trajectory {
                    user: UserId(2),
                    cells: vec![g.cell(7, 0), g.cell(1, 1), g.cell(3, 3), g.cell(5, 5)],
                },
                Trajectory {
                    user: UserId(3),
                    cells: vec![g.cell(6, 6), g.cell(6, 6), g.cell(6, 6), g.cell(6, 6)],
                },
            ],
        )
    }

    #[test]
    fn rule_on_ground_truth() {
        let db = truth_db();
        let tracer = ContactTracer::default();
        let history: Vec<(Timestamp, CellId)> = (0..4)
            .map(|t| (t, db.cell_of(UserId(0), t).unwrap()))
            .collect();
        let contacts = tracer.find_contacts(&db, UserId(0), &history, 0, 4);
        assert_eq!(contacts, vec![UserId(1)], "only user 1 meets twice");
        // Threshold 1 also catches user 2.
        let lax = ContactTracer {
            rule: ContactRule {
                min_co_occurrences: 1,
            },
        };
        assert_eq!(
            lax.find_contacts(&db, UserId(0), &history, 0, 4),
            vec![UserId(1), UserId(2)]
        );
    }

    #[test]
    fn outcome_evaluation_math() {
        let o = TraceOutcome::evaluate(vec![UserId(1), UserId(2)], vec![UserId(1), UserId(3)], 10);
        assert!((o.precision - 0.5).abs() < 1e-12);
        assert!((o.recall - 0.5).abs() < 1e-12);
        let empty = TraceOutcome::evaluate(vec![], vec![], 0);
        assert_eq!(empty.precision, 1.0);
        assert_eq!(empty.recall, 1.0);
    }

    fn make_clients(truth: &TrajectoryDb) -> Vec<Client> {
        let g = truth.grid().clone();
        truth
            .trajectories()
            .iter()
            .map(|tr| {
                let mut c = Client::new(
                    tr.user,
                    ClientConfig {
                        retention: 100,
                        budget: 100.0,
                        consent: ConsentRule::AlwaysAccept,
                    },
                    LocationPolicyGraph::partition(g.clone(), 2, 2),
                    Box::new(GraphExponential),
                    1.0,
                );
                for (t, &cell) in tr.cells.iter().enumerate() {
                    c.observe(t as Timestamp, cell);
                }
                c
            })
            .collect()
    }

    #[test]
    fn dynamic_trace_recovers_true_contacts() {
        let truth = truth_db();
        let mut clients = make_clients(&truth);
        let server = Server::new(grid());
        let configurator = PolicyConfigurator::new(grid(), 4, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let outcome = dynamic_trace(
            &mut clients,
            &server,
            &configurator,
            &truth,
            UserId(0),
            (0, 4),
            5.0,
            ContactRule::default(),
            &mut rng,
        );
        // The patient's cells are isolated under Gc, so user 1's visits to
        // them are disclosed exactly: recall must be perfect.
        assert_eq!(outcome.ground_truth, vec![UserId(1)]);
        assert!(
            outcome.flagged.contains(&UserId(1)),
            "dynamic update must recover the true contact; flagged {:?}",
            outcome.flagged
        );
        assert_eq!(outcome.recall, 1.0);
        assert!(outcome.resend_count > 0);
        // Server state updated.
        assert_eq!(server.diagnoses().len(), 1);
        assert!(!server.infected_cells().is_empty());
    }

    #[test]
    fn static_policy_misses_contacts_dynamic_finds() {
        // Without the re-send round, tracing runs on the originally
        // perturbed data and generally misses co-locations.
        let truth = truth_db();
        let g = grid();
        let server = Server::new(g.clone());
        let mut clients = make_clients(&truth);
        let mut rng = SmallRng::seed_from_u64(2);
        // Everyone reports under the static partition policy.
        for client in clients.iter_mut() {
            for t in 0..4 {
                server.receive(client.report(t, &mut rng).unwrap());
            }
        }
        let reported = server.reported_db(4);
        let tracer = ContactTracer::default();
        let history: Vec<(Timestamp, CellId)> = (0..4)
            .map(|t| (t, truth.cell_of(UserId(0), t).unwrap()))
            .collect();
        let static_flags = tracer.find_contacts(&reported, UserId(0), &history, 0, 4);
        // The static round is unreliable: under perturbation the flagged set
        // rarely equals the truth. We only assert the *dynamic* round fixes
        // it (see dynamic_trace_recovers_true_contacts); here we document
        // that the static rule runs without panicking.
        let _ = static_flags;
    }

    #[test]
    fn consent_refusal_suppresses_resend() {
        let truth = truth_db();
        let g = grid();
        let server = Server::new(g.clone());
        let configurator = PolicyConfigurator::new(g.clone(), 4, 2);
        // User 1 refuses any policy that isolates anything.
        let mut clients = make_clients(&truth);
        let refusing = Client::new(
            UserId(1),
            ClientConfig {
                retention: 100,
                budget: 100.0,
                consent: ConsentRule::MaxDisclosedFraction(0.0),
            },
            LocationPolicyGraph::partition(g.clone(), 2, 2),
            Box::new(GraphExponential),
            1.0,
        );
        let mut refusing = refusing;
        for (t, &cell) in truth
            .trajectory(UserId(1))
            .unwrap()
            .cells
            .iter()
            .enumerate()
        {
            refusing.observe(t as Timestamp, cell);
        }
        clients[1] = refusing;
        let mut rng = SmallRng::seed_from_u64(3);
        let outcome = dynamic_trace(
            &mut clients,
            &server,
            &configurator,
            &truth,
            UserId(0),
            (0, 4),
            5.0,
            ContactRule::default(),
            &mut rng,
        );
        // User 1 refused: the server cannot flag them from re-sent data.
        assert!(!outcome.flagged.contains(&UserId(1)));
        assert!(outcome.recall < 1.0);
    }
}
