//! Streaming ingest over a city-scale, oracle-backed policy.
//!
//! The ingest pipeline must not care which distance backend sits under the
//! [`PolicyIndex`]: a threshold-sized `city_like` policy (one connected
//! 4 340-node component, hub-label oracle) and the same policy with dense
//! tables land **identical databases** for the same arrival trace and seed.
//! This is the surveillance-layer half of the backend byte-identity gate.

use panda_core::{GraphExponential, LocationPolicyGraph, PolicyIndex};
use panda_geo::{CellId, GridMap};
use panda_graph::{generators, IndexBackend};
use panda_mobility::{Timestamp, UserId};
use panda_surveillance::ingest::{IngestConfig, IngestPipeline, PendingReport};
use panda_surveillance::server::Server;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const W: u32 = 70;
const H: u32 = 62;

fn city_index(max_table_entries: usize) -> Arc<PolicyIndex> {
    let mut rng = SmallRng::seed_from_u64(0xC17);
    let g = generators::city_like(&mut rng, W, H, 0.3, 60);
    Arc::new(PolicyIndex::new(
        LocationPolicyGraph::from_graph_with_budgets(
            GridMap::new(W, H, 100.0),
            g,
            "city-70x62",
            max_table_entries,
            512,
        ),
    ))
}

fn trace(n: usize, seed: u64) -> Vec<PendingReport> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| PendingReport {
            user: UserId(rng.gen_range(0..300)),
            epoch: (i / 300) as Timestamp,
            cell: CellId(rng.gen_range(0..W * H)),
            resend: false,
        })
        .collect()
}

fn run(index: Arc<PolicyIndex>, reports: &[PendingReport]) -> Arc<Server> {
    let server = Arc::new(Server::with_shards(GridMap::new(W, H, 100.0), 8));
    let pipeline = IngestPipeline::spawn(
        Arc::clone(&server),
        index,
        Arc::new(GraphExponential),
        IngestConfig {
            max_batch: 512,
            max_delay: Duration::from_millis(5),
            release_lanes: 4,
            eps: 1.0,
            seed: 42,
            ..Default::default()
        },
    );
    let handle = pipeline.handle();
    for &r in reports {
        handle.submit(r).unwrap();
    }
    let stats = pipeline.shutdown();
    assert_eq!(stats.landed, reports.len());
    server
}

#[test]
fn city_ingest_is_backend_invariant() {
    let oracle = city_index(1);
    assert_eq!(
        oracle.policy().distance_index().backend(0),
        IndexBackend::HubLabels,
        "tiny table budget must select the hub-label oracle"
    );
    let dense = city_index(usize::MAX >> 1);
    assert_eq!(
        dense.policy().distance_index().backend(0),
        IndexBackend::Dense
    );

    let reports = trace(6_000, 9);
    let horizon = (reports.len() / 300) as Timestamp + 1;
    let from_oracle = run(Arc::clone(&oracle), &reports);
    let from_dense = run(dense, &reports);
    assert_eq!(
        from_oracle.reported_db(horizon).trajectories(),
        from_dense.reported_db(horizon).trajectories(),
        "distance backend changed the landed DB"
    );

    // The oracle index built every sampling table from cached distance
    // rows — one row derivation per distinct true cell, at most.
    let stats = oracle.row_cache_stats();
    let distinct: std::collections::HashSet<CellId> = reports.iter().map(|r| r.cell).collect();
    assert!(stats.misses > 0, "city component must use cached rows");
    assert!(
        (stats.misses as usize) <= distinct.len(),
        "row builds ({}) must not exceed distinct cells ({})",
        stats.misses,
        distinct.len()
    );
    assert!(oracle.cache_memory_bytes() > 0);
}
