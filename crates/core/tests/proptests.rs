//! Property-based tests for PGLP: the privacy guarantees must hold for
//! *arbitrary* policy graphs, epsilons and locations, not just the presets.

use panda_core::budget::BudgetLedger;
use panda_core::mech::{
    EuclideanExponential, GraphCalibratedLaplace, GraphExponential, Mechanism, PlanarIsotropic,
    UniformComponent,
};
use panda_core::{audit_pglp, repair, LocationPolicyGraph, PolicyIndex};
use panda_geo::{CellId, GridMap};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Arbitrary random policy over a small grid (the Fig. 5 generator).
fn arb_policy() -> impl Strategy<Value = LocationPolicyGraph> {
    (2u32..6, 2u32..6, 2u32..20, 0.0f64..1.0, any::<u64>()).prop_map(
        |(w, h, size, density, seed)| {
            let grid = GridMap::new(w, h, 100.0);
            let size = size.min(grid.n_cells());
            let mut rng = SmallRng::seed_from_u64(seed);
            LocationPolicyGraph::random(grid, size, density, &mut rng)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The closed-form mechanisms satisfy the exact Def. 2.4 bound on
    /// EVERY edge of EVERY random policy graph.
    #[test]
    fn exact_mechanisms_satisfy_pglp_on_random_policies(policy in arb_policy(), eps in 0.05f64..4.0) {
        for mech in [&GraphExponential as &dyn Mechanism, &EuclideanExponential] {
            let report = audit_pglp(mech, &policy, eps).unwrap();
            prop_assert!(report.exact);
            prop_assert!(report.satisfied, "{} audit failed: {:?}", mech.name(), report);
        }
    }

    /// GEM's exact distribution normalises and is supported exactly on the
    /// component of the input.
    #[test]
    fn gem_distribution_support(policy in arb_policy(), eps in 0.05f64..4.0, pick in any::<u32>()) {
        let s = CellId(pick % policy.n_locations());
        let dist = GraphExponential.output_distribution(&policy, eps, s).unwrap();
        let total: f64 = dist.iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let comp = policy.component_cells(s);
        prop_assert_eq!(dist.len(), comp.len());
        for (c, p) in dist {
            prop_assert!(comp.contains(&c));
            prop_assert!(p > 0.0);
        }
    }

    /// Every mechanism keeps its outputs inside the policy component of the
    /// true location (the support invariant that makes snapping legal).
    #[test]
    fn mechanisms_respect_component_support(
        policy in arb_policy(),
        eps in 0.05f64..4.0,
        pick in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let s = CellId(pick % policy.n_locations());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mechs: Vec<Box<dyn Mechanism>> = vec![
            Box::new(GraphExponential),
            Box::new(EuclideanExponential),
            Box::new(GraphCalibratedLaplace),
            Box::new(PlanarIsotropic::new()),
            Box::new(UniformComponent),
        ];
        for m in &mechs {
            for _ in 0..8 {
                let z = m.perturb(&policy, eps, s, &mut rng).unwrap();
                prop_assert!(
                    policy.same_component(s, z),
                    "{} escaped the component: {} -> {}", m.name(), s, z
                );
            }
        }
    }

    /// Isolated cells are always released exactly, by every mechanism.
    #[test]
    fn isolated_cells_always_exact(
        w in 2u32..6, h in 2u32..6, eps in 0.05f64..4.0, pick in any::<u32>(), seed in any::<u64>()
    ) {
        let policy = LocationPolicyGraph::isolated(GridMap::new(w, h, 50.0));
        let s = CellId(pick % policy.n_locations());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mechs: Vec<Box<dyn Mechanism>> = vec![
            Box::new(GraphExponential),
            Box::new(EuclideanExponential),
            Box::new(GraphCalibratedLaplace),
            Box::new(PlanarIsotropic::new()),
        ];
        for m in &mechs {
            prop_assert_eq!(m.perturb(&policy, eps, s, &mut rng).unwrap(), s);
        }
    }

    /// The budget ledger never lets cumulative spend exceed the total, no
    /// matter the charge sequence.
    #[test]
    fn ledger_never_overspends(total in 0.1f64..10.0, charges in prop::collection::vec(0.01f64..2.0, 0..40)) {
        let mut ledger = BudgetLedger::new(total);
        for (t, eps) in charges.into_iter().enumerate() {
            let _ = ledger.charge(t as u64, "p", eps);
            prop_assert!(ledger.spent() <= total + 1e-9);
            prop_assert!(ledger.remaining() >= -1e-9);
        }
        let history_sum: f64 = ledger.history().iter().map(|c| c.eps).sum();
        prop_assert!((history_sum - ledger.spent()).abs() < 1e-9);
    }

    /// Repair invariants: protectable ⊆ feasible; expansion ⊇ feasible and
    /// makes the original feasible cells protectable; restriction never
    /// keeps a crossing edge.
    #[test]
    fn repair_invariants(policy in arb_policy(), mask in any::<u64>()) {
        let feasible: Vec<CellId> = (0..policy.n_locations())
            .filter(|i| mask >> (i % 64) & 1 == 1)
            .map(CellId)
            .collect();
        let prot = repair::protectable_cells(&policy, &feasible);
        for c in &prot {
            prop_assert!(feasible.contains(c));
        }
        let (expanded, _) = repair::repair_by_expansion(&policy, &feasible);
        for c in &feasible {
            prop_assert!(expanded.contains(c));
        }
        let prot_after = repair::protectable_cells(&policy, &expanded);
        for c in &feasible {
            prop_assert!(prot_after.contains(c), "cell {} not protectable after expansion", c);
        }
        let (restricted, summary) = repair::restrict(&policy, &feasible);
        for (a, b) in restricted.graph().edges() {
            prop_assert!(feasible.contains(&CellId(a)) && feasible.contains(&CellId(b)));
        }
        prop_assert_eq!(
            summary.dropped_edges,
            policy.graph().n_edges() - restricted.graph().n_edges()
        );
    }

    /// The precomputed distance tables agree with fresh BFS on every pair
    /// of every random policy — cached `distance(a, b)` IS `d_G(a, b)`.
    #[test]
    fn policy_index_distances_match_fresh_bfs(policy in arb_policy()) {
        let graph = policy.graph();
        for a in 0..policy.n_locations() {
            let fresh = panda_graph::bfs::bfs_distances(graph, a);
            for b in 0..policy.n_locations() {
                let cached = policy.distance(CellId(a), CellId(b));
                match cached {
                    Some(d) => prop_assert_eq!(d, fresh[b as usize]),
                    None => prop_assert_eq!(fresh[b as usize], panda_graph::bfs::INFINITE),
                }
            }
        }
    }

    /// The PolicyIndex's cached sampling tables are the mechanism's exact
    /// closed-form output distribution, cell for cell and probability for
    /// probability — across random policies, ε values and inputs.
    #[test]
    fn policy_index_cached_distributions_match_fresh(
        policy in arb_policy(),
        eps in 0.05f64..4.0,
        pick in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let s = CellId(pick % policy.n_locations());
        let index = PolicyIndex::new(policy.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let closed_form: Vec<(&str, &dyn Mechanism)> = vec![
            ("gem", &GraphExponential),
            ("euc-exp", &EuclideanExponential),
        ];
        for (_, mech) in &closed_form {
            // Warm the cache through the batch path, then compare the table
            // against a fresh closed-form distribution.
            let batch = mech.perturb_batch(&index, eps, &[s, s, s], &mut rng).unwrap();
            for z in &batch {
                prop_assert!(policy.same_component(s, *z));
            }
            if policy.is_isolated_cell(s) {
                // Exact release: no table is cached, by design.
                prop_assert_eq!(batch, vec![s, s, s]);
                continue;
            }
            let fresh = mech.output_distribution(&policy, eps, s).unwrap();
            let table = index.distribution(mech.name(), eps, s, |_| {
                panic!("distribution must already be cached after perturb_batch")
            });
            prop_assert_eq!(table.cells().len(), fresh.len());
            for ((&cell, p_cached), (fresh_cell, p_fresh)) in
                table.cells().iter().zip(table.probabilities()).zip(fresh)
            {
                prop_assert_eq!(cell, fresh_cell);
                prop_assert!(
                    (p_cached - p_fresh).abs() < 1e-9,
                    "cell {}: cached {} vs fresh {}", cell, p_cached, p_fresh
                );
            }
        }
    }

    /// perturb_batch and a perturb loop draw from the same distribution:
    /// empirical frequencies over many draws agree within Monte-Carlo noise.
    #[test]
    fn perturb_batch_matches_per_call_distribution(
        w in 2u32..5, h in 2u32..5, eps in 0.3f64..2.0, seed in any::<u64>()
    ) {
        let grid = GridMap::new(w, h, 100.0);
        let policy = LocationPolicyGraph::partition(grid, 2, 2);
        let index = PolicyIndex::new(policy.clone());
        let s = CellId(0);
        const N: usize = 4000;
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch = GraphExponential
            .perturb_batch(&index, eps, &vec![s; N], &mut rng)
            .unwrap();
        let mut naive = Vec::with_capacity(N);
        for _ in 0..N {
            naive.push(GraphExponential.perturb(&policy, eps, s, &mut rng).unwrap());
        }
        let freq = |samples: &[CellId], c: CellId| {
            samples.iter().filter(|&&z| z == c).count() as f64 / N as f64
        };
        for &c in policy.component_slice(s) {
            let (fb, fn_) = (freq(&batch, c), freq(&naive, c));
            prop_assert!(
                (fb - fn_).abs() < 0.06,
                "cell {}: batch {} vs naive {}", c, fb, fn_
            );
        }
    }

    /// Lemma 2.1 for GEM, derived from the audit distances: for random
    /// same-component pairs, log ratio ≤ ε·d_G.
    #[test]
    fn gem_lemma21_random_pairs(policy in arb_policy(), eps in 0.1f64..3.0, picks in any::<u64>()) {
        let n = policy.n_locations();
        let a = CellId((picks % n as u64) as u32);
        let b = CellId(((picks >> 16) % n as u64) as u32);
        if let Some(d) = policy.distance(a, b) {
            let da = GraphExponential.log_output_distribution(&policy, eps, a).unwrap();
            let db = GraphExponential.log_output_distribution(&policy, eps, b).unwrap();
            for (&(ca, la), &(cb, lb)) in da.iter().zip(db.iter()) {
                prop_assert_eq!(ca, cb);
                prop_assert!((la - lb).abs() <= eps * d as f64 + 1e-9);
            }
        }
    }
}
