//! Backend byte-identity on threshold-sized city graphs.
//!
//! A `city_like` policy just above the dense-tabulation threshold (4 096
//! nodes) is indexed twice — once with an unbounded table budget (dense
//! per-component distance tables) and once with a tiny one (hub-label
//! oracle). Everything observable downstream must be **bitwise identical**:
//! sampling-table supports and probabilities, exact output distributions,
//! and whole released databases under the parallel releaser. This is the
//! CI gate for the oracle's exactness claim — privacy calibration is proved
//! against true graph distances, so an approximate oracle would silently
//! void the guarantee.

use panda_core::mech::Mechanism;
use panda_core::{GraphExponential, LocationPolicyGraph, ParallelReleaser, PolicyIndex};
use panda_geo::{CellId, GridMap};
use panda_graph::{generators, IndexBackend};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const W: u32 = 70;
const H: u32 = 62;

/// One connected 4 340-node city graph (> 4 096-node dense threshold).
fn city_policy(max_table_entries: usize) -> LocationPolicyGraph {
    let mut rng = SmallRng::seed_from_u64(0xC17);
    let g = generators::city_like(&mut rng, W, H, 0.3, 60);
    LocationPolicyGraph::from_graph_with_budgets(
        GridMap::new(W, H, 100.0),
        g,
        "city-70x62",
        max_table_entries,
        512,
    )
}

fn backends() -> (PolicyIndex, PolicyIndex) {
    // Large budget → dense tables; 1-entry budget → hub-label oracle.
    let dense = PolicyIndex::new(city_policy(usize::MAX >> 1));
    let oracle = PolicyIndex::new(city_policy(1));
    assert_eq!(
        dense.policy().distance_index().backend(0),
        IndexBackend::Dense
    );
    assert_eq!(
        oracle.policy().distance_index().backend(0),
        IndexBackend::HubLabels
    );
    (dense, oracle)
}

#[test]
fn oracle_backed_sampling_tables_bitwise_equal_to_dense() {
    let (dense, oracle) = backends();
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..12 {
        let cell = CellId(rng.gen_range(0..W * H));
        for eps in [0.25, 1.0, 4.0] {
            let build = |index: &PolicyIndex| {
                // Warm the LRU through the mechanism's own table path, then
                // pull the cached table out (the closure must never run).
                GraphExponential.sampler(index, eps, cell).expect("sampler");
                index.distribution(GraphExponential.name(), eps, cell, |_| {
                    panic!("table must already be cached")
                })
            };
            let (ta, tb) = (build(&dense), build(&oracle));
            assert_eq!(ta.cells(), tb.cells());
            assert_eq!(ta.is_alias(), tb.is_alias());
            let (pa, pb) = (ta.probabilities(), tb.probabilities());
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(pb.iter()) {
                // Bitwise, not approximate: the arithmetic paths must agree.
                assert_eq!(x.to_bits(), y.to_bits(), "cell {cell} eps {eps}");
            }
        }
    }
}

#[test]
fn released_databases_bitwise_equal_across_backends() {
    let (dense, oracle) = backends();
    let mut rng = SmallRng::seed_from_u64(11);
    let locs: Vec<CellId> = (0..20_000)
        .map(|_| CellId(rng.gen_range(0..W * H)))
        .collect();
    let releaser = ParallelReleaser::new();
    for (eps, seed) in [(0.5, 1u64), (2.0, 99u64)] {
        let a = releaser
            .release(&GraphExponential, &dense, eps, &locs, seed)
            .expect("dense release");
        let b = releaser
            .release(&GraphExponential, &oracle, eps, &locs, seed)
            .expect("oracle release");
        assert_eq!(a, b, "released DBs diverged at eps {eps} seed {seed}");
    }
}

#[test]
fn oracle_memory_stays_small_and_rows_are_shared() {
    let (dense, oracle) = backends();
    let dense_bytes = dense.policy().distance_index().memory_bytes();
    let oracle_bytes = oracle.policy().distance_index().memory_bytes();
    // ~9.7x at 4 340 nodes; the gap widens with n (≈40x at 50k nodes, where
    // the ≤10%-of-dense acceptance bar is measured by the benchmark) because
    // labels grow ~√n per node while dense rows grow linearly.
    assert!(
        oracle_bytes * 8 < dense_bytes,
        "oracle {oracle_bytes} B must undercut dense {dense_bytes} B by >8x"
    );
    // An ε sweep over one cell derives its distance row exactly once.
    let mut rng = SmallRng::seed_from_u64(3);
    for eps in [0.1, 0.2, 0.4, 0.8, 1.6] {
        GraphExponential
            .perturb_batch(&oracle, eps, &[CellId(17)], &mut rng)
            .expect("release");
    }
    let stats = oracle.row_cache_stats();
    assert_eq!(stats.misses, 1, "one row build for the whole sweep");
    assert_eq!(stats.hits, 4);
}
