//! The [`CellSampler`] contracts, mechanism by mechanism:
//!
//! 1. **Distributional correctness** — handle draws match the mechanism's
//!    closed-form `output_distribution` (chi-square), for every mechanism
//!    that has one.
//! 2. **Stream equivalence** — a handle draw consumes exactly the RNG
//!    sequence of `perturb_batch_into` on a single-report batch, so the
//!    per-lane memoised streaming path is byte-identical to the per-report
//!    path.
//! 3. **Support** — draws never leave the policy component (property test
//!    over random policies).

use panda_core::mech::{CellSampler, SamplerMemo};
use panda_core::{
    EuclideanExponential, GraphCalibratedLaplace, GraphExponential, IdentityMechanism, Mechanism,
    PlanarIsotropic, PlanarLaplace, PolicyIndex, UniformComponent,
};
use panda_core::{LocationPolicyGraph, PglpError};
use panda_geo::{CellId, GridMap};
use proptest::prelude::*;
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;

fn all_mechanisms() -> Vec<Box<dyn Mechanism>> {
    vec![
        Box::new(GraphExponential),
        Box::new(EuclideanExponential),
        Box::new(GraphCalibratedLaplace),
        Box::new(PlanarIsotropic::new()),
        Box::new(PlanarLaplace),
        Box::new(IdentityMechanism),
        Box::new(UniformComponent),
    ]
}

fn index() -> PolicyIndex {
    PolicyIndex::new(LocationPolicyGraph::partition(
        GridMap::new(6, 6, 100.0),
        3,
        3,
    ))
}

/// Chi-square of observed counts against expected probabilities; `df + 1`
/// categories.
fn chi_square(
    counts: &std::collections::HashMap<CellId, usize>,
    exact: &[(CellId, f64)],
    n: usize,
) -> f64 {
    exact
        .iter()
        .filter(|&&(_, p)| p * n as f64 >= 5.0)
        .map(|&(c, p)| {
            let e = p * n as f64;
            let o = *counts.get(&c).unwrap_or(&0) as f64;
            (o - e).powi(2) / e
        })
        .sum()
}

/// Handle draws match the closed-form output distribution for every
/// closed-form mechanism (chi-square at the 99.9% level, fixed seeds).
#[test]
fn sampler_draws_match_output_distribution_chi_square() {
    let index = index();
    let s = CellId(7);
    const N: usize = 120_000;
    for (i, mech) in all_mechanisms().into_iter().enumerate() {
        let Some(exact) = mech.output_distribution(index.policy(), 1.0, s) else {
            continue; // continuous mechanisms: covered by the stream test
        };
        let sampler = mech.sampler(&index, 1.0, s).unwrap();
        let mut rng = SmallRng::seed_from_u64(40 + i as u64);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..N {
            *counts.entry(sampler.draw(&mut rng)).or_insert(0usize) += 1;
        }
        let chi2 = chi_square(&counts, &exact, N);
        // Components here have ≤ 4 cells (≤ 3 df): 99.9% critical ≈ 16.3;
        // generous slack keeps the fixed-seed test deterministic.
        assert!(
            chi2 < 20.0,
            "{}: chi-square {chi2} too large for {} categories",
            mech.name(),
            exact.len()
        );
        // Every drawn cell must be in the declared support.
        for cell in counts.keys() {
            assert!(
                exact.iter().any(|&(c, _)| c == *cell),
                "{}: drew {cell} outside the support",
                mech.name()
            );
        }
    }
}

/// The determinism keystone: for every mechanism, a handle draw consumes
/// exactly the RNG sequence of `perturb_batch_into` on a single-report
/// batch — resolved once, drawn many times, against a twin RNG.
#[test]
fn sampler_draws_bit_match_single_report_batch_path() {
    let index = index();
    for mech in all_mechanisms() {
        for s in [CellId(0), CellId(14), CellId(35)] {
            for eps in [0.3, 1.0, 4.0] {
                let sampler = mech.sampler(&index, eps, s).unwrap();
                let mut rng_handle = StdRng::seed_from_u64(99);
                let mut rng_batch = StdRng::seed_from_u64(99);
                for _ in 0..300 {
                    let via_handle = sampler.draw(&mut rng_handle);
                    let mut via_batch = [CellId(0)];
                    mech.perturb_batch_into(&index, eps, &[s], &mut rng_batch, &mut via_batch)
                        .unwrap();
                    assert_eq!(
                        via_handle,
                        via_batch[0],
                        "{} diverged at cell {s}, eps {eps}",
                        mech.name()
                    );
                }
            }
        }
    }
}

/// Isolated cells resolve to exact handles for every policy-aware
/// mechanism, consuming no randomness.
#[test]
fn isolated_cells_resolve_to_exact_handles() {
    let index = PolicyIndex::new(LocationPolicyGraph::isolated(GridMap::new(4, 4, 50.0)));
    let mut rng = StdRng::seed_from_u64(5);
    let before = rng.clone();
    for mech in [
        Box::new(GraphExponential) as Box<dyn Mechanism>,
        Box::new(EuclideanExponential),
        Box::new(GraphCalibratedLaplace),
        Box::new(PlanarIsotropic::new()),
    ] {
        let sampler = mech.sampler(&index, 1.0, CellId(9)).unwrap();
        assert_eq!(sampler.draw(&mut rng), CellId(9), "{}", mech.name());
    }
    // None of the exact draws advanced the RNG.
    let mut before = before;
    let mut after = rng;
    use rand::RngCore;
    assert_eq!(before.next_u64(), after.next_u64());
}

/// Resolution validates inputs: bad ε and foreign cells fail at `sampler`
/// time, for every mechanism, so `draw` can stay infallible.
#[test]
fn sampler_resolution_validates_inputs() {
    let index = index();
    for mech in all_mechanisms() {
        assert!(
            matches!(
                mech.sampler(&index, 0.0, CellId(0)),
                Err(PglpError::InvalidEpsilon(_))
            ),
            "{}",
            mech.name()
        );
        assert!(
            matches!(
                mech.sampler(&index, 1.0, CellId(u32::MAX)),
                Err(PglpError::LocationOutOfDomain(_))
            ),
            "{}",
            mech.name()
        );
    }
}

/// A memoised multi-cell batch through `SamplerMemo` is byte-identical to
/// `perturb_batch_into` on the same inputs (the release engine's lane path
/// in miniature).
#[test]
fn memoised_batch_bit_matches_batch_path() {
    let index = index();
    let locs: Vec<CellId> = (0..2_048).map(|i| CellId(i % 9)).collect();
    for mech in all_mechanisms() {
        let mut rng_memo = StdRng::seed_from_u64(31);
        let mut rng_batch = StdRng::seed_from_u64(31);
        let mut via_memo = vec![CellId(0); locs.len()];
        let mut memo = SamplerMemo::new();
        for (slot, &s) in via_memo.iter_mut().zip(&locs) {
            let sampler = memo.resolve(&*mech, &index, 1.0, s).unwrap().unwrap();
            *slot = sampler.draw(&mut rng_memo);
        }
        let via_batch = mech
            .perturb_batch(&index, 1.0, &locs, &mut rng_batch)
            .unwrap();
        assert_eq!(via_memo, via_batch, "{}", mech.name());
    }
}

/// Remapped handles compose: `CellSampler::remapped` applies the table to
/// every inner draw.
#[test]
fn remapped_handle_applies_table() {
    let index = index();
    let n = index.policy().grid().n_cells();
    // A rotation remap over the grid.
    let table: Vec<CellId> = (0..n).map(|i| CellId((i + 1) % n)).collect();
    let inner = GraphExponential.sampler(&index, 1.0, CellId(0)).unwrap();
    let remapped = CellSampler::remapped(inner.clone(), &table);
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_b = StdRng::seed_from_u64(77);
    for _ in 0..500 {
        assert_eq!(
            remapped.draw(&mut rng_a),
            table[inner.draw(&mut rng_b).index()]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Handle draws never leave the component of the true cell, on random
    /// policies, for every policy-respecting mechanism.
    #[test]
    fn sampler_respects_component_support(
        dims in (2u32..6, 2u32..6, 2u32..20, 0.0f64..1.0, any::<u64>()),
        eps in 0.05f64..4.0,
        pick in any::<u32>(),
    ) {
        let (w, h, size, density, seed) = dims;
        let grid = GridMap::new(w, h, 100.0);
        let size = size.min(grid.n_cells());
        let mut rng = SmallRng::seed_from_u64(seed);
        let policy = LocationPolicyGraph::random(grid, size, density, &mut rng);
        let index = PolicyIndex::new(policy);
        let s = CellId(pick % index.policy().n_locations());
        let mechs: Vec<Box<dyn Mechanism>> = vec![
            Box::new(GraphExponential),
            Box::new(EuclideanExponential),
            Box::new(GraphCalibratedLaplace),
            Box::new(PlanarIsotropic::new()),
            Box::new(UniformComponent),
        ];
        for mech in &mechs {
            let sampler = mech.sampler(&index, eps, s).unwrap();
            for _ in 0..8 {
                let z = sampler.draw(&mut rng);
                prop_assert!(
                    index.policy().same_component(s, z),
                    "{} escaped the component: {} -> {}", mech.name(), s, z
                );
            }
        }
    }
}
