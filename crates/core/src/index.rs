//! [`PolicyIndex`]: the precomputed fast path for bulk location release.
//!
//! Every PGLP mechanism (§3.1) samples from a distribution shaped by the
//! policy-graph distances `d_G(s, ·)`. The [`crate::policy`] layer
//! tabulates those distances (lazily per component); this module adds the
//! second cache level — **per-`(mechanism, ε, cell)` output distributions
//! compiled into sampling tables** — so releasing a whole trajectory costs
//! one table build per distinct `(mechanism, ε, cell)` and then O(1)–O(log
//! k) per report. Small supports use a cumulative table (inverse-CDF binary
//! search); supports of at least [`SamplingTable::ALIAS_THRESHOLD`] cells
//! are compiled into a Vose **alias table** for O(1) draws.
//!
//! A [`PolicyIndex`] wraps one policy and owns *all* per-policy mechanism
//! state: the distribution cache (proper LRU eviction under a total-entry
//! budget), per-component calibration lengths (Laplace-style mechanisms),
//! and per-component prepared sensitivity hulls (the Planar Isotropic
//! Mechanism). Servers and clients build it once per policy assignment and
//! feed it to [`Mechanism::perturb_batch`](crate::mech::Mechanism::perturb_batch);
//! experiment harnesses build one per swept policy. All caches are
//! thread-safe, so one index can serve concurrent report streams — this is
//! what [`crate::release::ParallelReleaser`] relies on.

use crate::cache::{CacheStats, WeightedLru};
use crate::mech::pim::PreparedHull;
use crate::policy::LocationPolicyGraph;
use panda_check::ordered::{rank, OrderedMutex, OrderedRwLock};
use panda_geo::CellId;
use panda_obs::{Counter, Registry};
use rand::Rng;
use rand::RngCore;
use std::sync::Arc;

/// Cache key: mechanism identity × ε (by bit pattern) × true location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DistKey {
    mech: &'static str,
    eps_bits: u64,
    cell: CellId,
}

/// Sampling backend, chosen by support size.
#[derive(Debug, Clone)]
enum Backend {
    /// `cum[i]` = Σ probabilities up to and including cell `i`;
    /// `cum.last() == total`. O(log k) inverse-CDF draws.
    Cumulative { cum: Vec<f64>, total: f64 },
    /// Vose alias table: O(1) draws. `prob[i]` is the probability of
    /// staying in bucket `i` (scaled to [0, 1]); otherwise the draw is
    /// redirected to `alias[i]`.
    Alias { prob: Vec<f64>, alias: Vec<u32> },
}

/// A closed-form output distribution compiled for fast sampling.
#[derive(Debug, Clone)]
pub struct SamplingTable {
    cells: Vec<CellId>,
    backend: Backend,
}

impl SamplingTable {
    /// Support size from which [`SamplingTable::from_weights`] compiles an
    /// alias table instead of a cumulative table. Below it, the O(log k)
    /// binary search wins on cache locality and build cost; at and above
    /// it, O(1) alias draws win (see `benches/release_engine.rs`).
    pub const ALIAS_THRESHOLD: usize = 1024;

    /// Compiles `(cell, weight)` pairs into a sampling table, selecting the
    /// backend automatically by support size. Weights need not be
    /// normalised; they must be non-negative with a positive sum.
    ///
    /// # Panics
    ///
    /// Panics on an empty distribution or a non-positive total weight.
    pub fn from_weights(dist: Vec<(CellId, f64)>) -> Self {
        if dist.len() >= Self::ALIAS_THRESHOLD {
            Self::alias(dist)
        } else {
            Self::cumulative(dist)
        }
    }

    /// Compiles an inverse-CDF cumulative table (O(log k) draws).
    ///
    /// # Panics
    ///
    /// Same contract as [`SamplingTable::from_weights`].
    pub fn cumulative(dist: Vec<(CellId, f64)>) -> Self {
        assert!(!dist.is_empty(), "sampling table needs support");
        let mut cells = Vec::with_capacity(dist.len());
        let mut cum = Vec::with_capacity(dist.len());
        let mut total = 0.0;
        for (c, w) in dist {
            debug_assert!(w >= 0.0 && w.is_finite(), "bad weight {w} for {c}");
            total += w;
            cells.push(c);
            cum.push(total);
        }
        assert!(
            total > 0.0 && total.is_finite(),
            "sampling table total weight must be positive"
        );
        SamplingTable {
            cells,
            backend: Backend::Cumulative { cum, total },
        }
    }

    /// Compiles a Vose alias table (O(1) draws).
    ///
    /// # Panics
    ///
    /// Same contract as [`SamplingTable::from_weights`].
    pub fn alias(dist: Vec<(CellId, f64)>) -> Self {
        assert!(!dist.is_empty(), "sampling table needs support");
        let n = dist.len();
        let mut cells = Vec::with_capacity(n);
        let mut total = 0.0;
        for &(c, w) in &dist {
            debug_assert!(w >= 0.0 && w.is_finite(), "bad weight {w} for {c}");
            total += w;
            cells.push(c);
        }
        assert!(
            total > 0.0 && total.is_finite(),
            "sampling table total weight must be positive"
        );
        // Vose's method: scale weights to mean 1 (bucket capacity), then
        // pair each under-full bucket with an over-full donor.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = dist.iter().map(|&(_, w)| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l as u32;
            // The donor gives (1 − prob[s]) of its mass to bucket s.
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Residuals (FP rounding): remaining buckets keep their own mass.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        SamplingTable {
            cells,
            backend: Backend::Alias { prob, alias },
        }
    }

    /// Support cells, in table order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// `true` when this table uses the O(1) alias backend.
    pub fn is_alias(&self) -> bool {
        matches!(self.backend, Backend::Alias { .. })
    }

    /// Normalised probability of each support cell, in table order. Exact
    /// for both backends (the alias construction is mass-preserving, so the
    /// original distribution is recoverable from the buckets).
    pub fn probabilities(&self) -> Vec<f64> {
        match &self.backend {
            Backend::Cumulative { cum, total } => {
                let mut prev = 0.0;
                cum.iter()
                    .map(|&c| {
                        let p = (c - prev) / total;
                        prev = c;
                        p
                    })
                    .collect()
            }
            Backend::Alias { prob, alias } => {
                // p[i] = (own mass + mass donated into other buckets) / n.
                let n = prob.len() as f64;
                let mut p: Vec<f64> = prob.iter().map(|&q| q / n).collect();
                for (i, &a) in alias.iter().enumerate() {
                    if a as usize != i {
                        p[a as usize] += (1.0 - prob[i]) / n;
                    }
                }
                p
            }
        }
    }

    /// Heap bytes of the compiled table (support cells + backend arrays).
    pub fn memory_bytes(&self) -> usize {
        let cells = self.cells.len() * std::mem::size_of::<CellId>();
        cells
            + match &self.backend {
                Backend::Cumulative { cum, .. } => cum.len() * std::mem::size_of::<f64>(),
                Backend::Alias { prob, alias } => {
                    prob.len() * std::mem::size_of::<f64>()
                        + alias.len() * std::mem::size_of::<u32>()
                }
            }
    }

    /// Draws one cell. O(log k) for the cumulative backend, O(1) for the
    /// alias backend; no allocation either way.
    pub fn sample(&self, rng: &mut dyn RngCore) -> CellId {
        match &self.backend {
            Backend::Cumulative { cum, total } => {
                let u = rng.gen_range(0.0..*total);
                let i = cum.partition_point(|&c| c <= u);
                // partition_point can land one past the end on FP edge cases.
                self.cells[i.min(self.cells.len() - 1)]
            }
            Backend::Alias { prob, alias } => {
                let i = rng.gen_range(0..self.cells.len());
                if rng.gen::<f64>() < prob[i] {
                    self.cells[i]
                } else {
                    self.cells[alias[i] as usize]
                }
            }
        }
    }
}

/// Precomputed sampling state for one policy: distance tables (shared with
/// the policy), interned component slices, an LRU cache of
/// per-`(mechanism, ε, cell)` sampling tables, per-component calibration
/// lengths, and per-component prepared PIM sensitivity hulls.
#[derive(Debug)]
pub struct PolicyIndex {
    policy: LocationPolicyGraph,
    distributions: OrderedMutex<WeightedLru<DistKey, Arc<SamplingTable>>>,
    /// Per-cell member-order distance rows, shared across every
    /// `(mechanism, ε)` pair that shapes a distribution over the same true
    /// cell — an ε schedule pays for each cell's row once, not once per
    /// step. Weighted by row length (entries = `u16`s).
    rows: OrderedMutex<WeightedLru<CellId, Arc<[u16]>>>,
    /// Lifetime count of [`PolicyIndex::distribution`] lookups — i.e. of
    /// distribution-cache mutex acquisitions (a cold miss re-acquires the
    /// lock briefly to insert, still counted as the one touch its lookup
    /// was). The release engine's per-lane sampler memos keep this at one
    /// touch per distinct `(mechanism, ε, cell)` per lane; tests assert it.
    dist_touches: Counter,
    /// `calibrations[component]`: `None` = not yet computed,
    /// `Some(None)` = singleton component (exact release),
    /// `Some(Some(len))` = longest policy edge in the component.
    calibrations: OrderedRwLock<Vec<Option<Option<f64>>>>,
    /// Per-component prepared PIM hulls, one slot per sampling path
    /// (`[direct, isotropic-transform]`), filled on first use. Both slots
    /// share one rank: they are never held together.
    pim_hulls: [OrderedRwLock<Vec<Option<Arc<PreparedHull>>>>; 2],
}

impl PolicyIndex {
    /// Indexes a policy with the default cache budget
    /// ([`PolicyIndex::MAX_CACHED_ENTRIES`]). The distance tables are shared
    /// with `policy`; the distribution/calibration/hull caches fill lazily
    /// as mechanisms run.
    pub fn new(policy: LocationPolicyGraph) -> Self {
        Self::with_cache_capacity(policy, Self::MAX_CACHED_ENTRIES)
    }

    /// Indexes a policy with an explicit distribution-cache budget, in
    /// table entries (Σ support sizes across retained tables).
    pub fn with_cache_capacity(policy: LocationPolicyGraph, max_cached_entries: usize) -> Self {
        let n_components = policy.n_components() as usize;
        PolicyIndex {
            policy,
            distributions: OrderedMutex::new(
                rank::INDEX_DISTRIBUTIONS,
                WeightedLru::new(max_cached_entries),
            ),
            rows: OrderedMutex::new(rank::INDEX_ROWS, WeightedLru::new(max_cached_entries)),
            dist_touches: Counter::new(),
            calibrations: OrderedRwLock::new(rank::INDEX_CALIBRATIONS, vec![None; n_components]),
            pim_hulls: [
                OrderedRwLock::new(rank::INDEX_PIM_HULLS, vec![None; n_components]),
                OrderedRwLock::new(rank::INDEX_PIM_HULLS, vec![None; n_components]),
            ],
        }
    }

    /// The indexed policy.
    #[inline]
    pub fn policy(&self) -> &LocationPolicyGraph {
        &self.policy
    }

    /// `d_G(a, b)`, or `None` across components (delegates to the policy's
    /// precomputed tables).
    #[inline]
    pub fn distance(&self, a: CellId, b: CellId) -> Option<u32> {
        self.policy.distance(a, b)
    }

    /// The interned, sorted component slice of `c` — the release support.
    #[inline]
    pub fn component_slice(&self, c: CellId) -> &[CellId] {
        self.policy.component_slice(c)
    }

    /// Default retention cap for the distribution cache, in table *entries*
    /// (Σ support sizes) — the same quadratic-memory guard the distance
    /// tables have. Past the cap, the least-recently-used tables are
    /// evicted (tables heavier than the whole cap are served without
    /// retention).
    pub const MAX_CACHED_ENTRIES: usize = 1 << 24;

    /// The cached sampling table for `(mech, eps, cell)`, building it with
    /// `build` on first use (and after eviction). `build` receives the
    /// indexed policy and returns the mechanism's closed-form output
    /// weights over the support.
    pub fn distribution(
        &self,
        mech: &'static str,
        eps: f64,
        cell: CellId,
        build: impl FnOnce(&LocationPolicyGraph) -> Vec<(CellId, f64)>,
    ) -> Arc<SamplingTable> {
        self.dist_touches.inc();
        let key = DistKey {
            mech,
            eps_bits: eps.to_bits(),
            cell,
        };
        if let Some(table) = self.distributions.lock().get(&key) {
            return table;
        }
        // Built outside the lock: concurrent misses on the same key may
        // build twice, but never block each other on the build.
        let table = Arc::new(SamplingTable::from_weights(build(&self.policy)));
        self.distributions
            .lock()
            .insert(key, Arc::clone(&table), table.cells().len());
        table
    }

    /// The cached member-order distance row of `cell`: `row[i]` is
    /// `d_G(cell, component_slice(cell)[i])`. Built on first use from the
    /// policy's distance index (dense-row copy, hub-label join, or one BFS)
    /// and retained in a weighted LRU, so mechanisms shaping distributions
    /// over the same cell at different ε — or different mechanisms over
    /// the same cell — share one row instead of re-deriving distances.
    ///
    /// Returns `None` only for components whose distances cannot be
    /// represented in `u16` (over 65535 cells *and* unindexed); callers
    /// fall back to [`LocationPolicyGraph::component_distances`].
    pub fn distance_row(&self, cell: CellId) -> Option<Arc<[u16]>> {
        if let Some(row) = self.rows.lock().get(&cell) {
            return Some(row);
        }
        // Built outside the lock, like the distribution tables: concurrent
        // misses on one cell may build twice but never block each other.
        let mut buf = Vec::new();
        if !self.policy.component_row_u16(cell, &mut buf) {
            return None;
        }
        let row: Arc<[u16]> = buf.into();
        self.rows.lock().insert(cell, Arc::clone(&row), row.len());
        Some(row)
    }

    /// Cached calibration length of the component of `cell`: the longest
    /// Euclidean policy edge inside the component, or `None` for isolated
    /// cells (exact release). Used by the Laplace-style mechanisms.
    pub fn calibration_length(&self, cell: CellId) -> Option<f64> {
        let comp = self.policy.component_of(cell) as usize;
        if let Some(cached) = self.calibrations.read()[comp] {
            return cached;
        }
        let computed = compute_calibration_length(&self.policy, cell);
        self.calibrations.write()[comp] = Some(computed);
        computed
    }

    /// The cached prepared PIM hull for the component of `cell`, building
    /// it with `build` on first use. `isotropic` selects the sampling path
    /// the hull was prepared for (the two paths cache independently).
    pub(crate) fn pim_hull(
        &self,
        cell: CellId,
        isotropic: bool,
        build: impl FnOnce(&LocationPolicyGraph) -> PreparedHull,
    ) -> Arc<PreparedHull> {
        let comp = self.policy.component_of(cell) as usize;
        let slot = &self.pim_hulls[usize::from(isotropic)];
        if let Some(hull) = &slot.read()[comp] {
            return Arc::clone(hull);
        }
        let built = Arc::new(build(&self.policy));
        let mut w = slot.write();
        match &w[comp] {
            // Another thread won the build race; keep its hull.
            Some(hull) => Arc::clone(hull),
            None => {
                w[comp] = Some(Arc::clone(&built));
                built
            }
        }
    }

    /// Number of distribution-cache lookups (= cache-mutex touches) since
    /// construction (diagnostics). Under cell-concentrated streaming load
    /// this is the contention metric: the sampler-handle release paths
    /// bound it by `lanes × distinct cells` per flush, where the per-report
    /// path paid one touch per report.
    pub fn distribution_cache_touches(&self) -> u64 {
        self.dist_touches.get()
    }

    /// Adopts the index's live cache counters into `registry` under
    /// `panda_index_*` names (adopt-replace: re-registering after a policy
    /// switch re-points the scrape plane at the new index's handles).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("panda_index_distribution_touches_total", &self.dist_touches);
        {
            let dist = self.distributions.lock();
            let c = dist.counters();
            registry.register_counter("panda_index_dist_cache_hits_total", &c.hits);
            registry.register_counter("panda_index_dist_cache_misses_total", &c.misses);
            registry.register_counter("panda_index_dist_cache_evictions_total", &c.evictions);
        }
        {
            let rows = self.rows.lock();
            let c = rows.counters();
            registry.register_counter("panda_index_row_cache_hits_total", &c.hits);
            registry.register_counter("panda_index_row_cache_misses_total", &c.misses);
            registry.register_counter("panda_index_row_cache_evictions_total", &c.evictions);
        }
    }

    /// Number of distribution tables currently cached (diagnostics).
    pub fn n_cached_distributions(&self) -> usize {
        self.distributions.lock().len()
    }

    /// Total entries across currently cached tables (diagnostics).
    pub fn cached_entry_weight(&self) -> usize {
        self.distributions.lock().weight()
    }

    /// Number of prepared PIM hulls currently cached, across both sampling
    /// paths (diagnostics).
    pub fn n_cached_pim_hulls(&self) -> usize {
        self.pim_hulls
            .iter()
            .map(|s| s.read().iter().flatten().count())
            .sum()
    }

    /// Lifetime hit/miss/eviction counters of the distribution cache.
    pub fn distribution_cache_stats(&self) -> CacheStats {
        self.distributions.lock().stats()
    }

    /// Lifetime hit/miss/eviction counters of the distance-row cache.
    pub fn row_cache_stats(&self) -> CacheStats {
        self.rows.lock().stats()
    }

    /// Number of distance rows currently cached (diagnostics).
    pub fn n_cached_rows(&self) -> usize {
        self.rows.lock().len()
    }

    /// Exact heap bytes held by the index's caches right now: compiled
    /// sampling tables, distance rows, and the per-component
    /// calibration/hull slot vectors. Excludes the policy's distance index
    /// itself (see [`panda_graph::ComponentDistances::memory_bytes`]) —
    /// together the two numbers are the memory story a capacity planner
    /// needs.
    pub fn cache_memory_bytes(&self) -> usize {
        let tables: usize = self
            .distributions
            .lock()
            .iter_values()
            .map(|t| t.memory_bytes())
            .sum();
        let rows: usize = self
            .rows
            .lock()
            .iter_values()
            .map(|r| r.len() * std::mem::size_of::<u16>())
            .sum();
        let n_components = self.policy.n_components() as usize;
        let slots = n_components
            * (std::mem::size_of::<Option<Option<f64>>>()
                + 2 * std::mem::size_of::<Option<Arc<PreparedHull>>>());
        tables + rows + slots
    }
}

/// The longest Euclidean policy edge within the component of `s`, or `None`
/// when `s` is isolated. (The calibration scale `L` of the Laplace-style
/// mechanisms; cached per component by [`PolicyIndex`].)
pub(crate) fn compute_calibration_length(policy: &LocationPolicyGraph, s: CellId) -> Option<f64> {
    let cells = policy.component_slice(s);
    if cells.len() <= 1 {
        return None;
    }
    let grid = policy.grid();
    let mut max_len = 0.0_f64;
    for &a in cells {
        for &b in policy.graph().neighbors(a.0) {
            let d = grid.distance(a, CellId(b));
            max_len = max_len.max(d);
        }
    }
    Some(max_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::{GraphExponential, Mechanism};
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> LocationPolicyGraph {
        LocationPolicyGraph::partition(GridMap::new(4, 4, 100.0), 2, 2)
    }

    #[test]
    fn sampling_table_matches_probabilities() {
        let table =
            SamplingTable::from_weights(vec![(CellId(0), 1.0), (CellId(1), 3.0), (CellId(2), 6.0)]);
        assert!(!table.is_alias(), "3-cell support stays cumulative");
        let probs = table.probabilities();
        assert!((probs[0] - 0.1).abs() < 1e-12);
        assert!((probs[1] - 0.3).abs() < 1e-12);
        assert!((probs[2] - 0.6).abs() < 1e-12);

        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        const N: usize = 120_000;
        for _ in 0..N {
            counts[table.sample(&mut rng).index()] += 1;
        }
        for (i, &expect) in [0.1, 0.3, 0.6].iter().enumerate() {
            let freq = counts[i] as f64 / N as f64;
            assert!((freq - expect).abs() < 0.01, "cell {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn alias_table_reconstructs_exact_probabilities() {
        // Deterministic skewed weights over a mid-size support.
        let dist: Vec<(CellId, f64)> = (0..300)
            .map(|i| (CellId(i), 1.0 + f64::from(i % 17)))
            .collect();
        let total: f64 = dist.iter().map(|&(_, w)| w).sum();
        let expect: Vec<f64> = dist.iter().map(|&(_, w)| w / total).collect();
        let alias = SamplingTable::alias(dist.clone());
        assert!(alias.is_alias());
        let cumulative = SamplingTable::cumulative(dist);
        for ((pa, pc), pe) in alias
            .probabilities()
            .iter()
            .zip(cumulative.probabilities())
            .zip(expect)
        {
            assert!((pa - pe).abs() < 1e-12, "alias {pa} vs exact {pe}");
            assert!((pc - pe).abs() < 1e-12);
        }
    }

    #[test]
    fn alias_draws_match_cumulative_draws_chi_square() {
        // Same weights through both backends; a chi-square test on the
        // alias sample counts against the exact probabilities.
        let dist: Vec<(CellId, f64)> = (0..64)
            .map(|i| (CellId(i), (f64::from(i) / 9.0).exp()))
            .collect();
        let alias = SamplingTable::alias(dist.clone());
        let cumulative = SamplingTable::cumulative(dist);
        let probs = cumulative.probabilities();
        const N: usize = 200_000;
        let census = |table: &SamplingTable, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut counts = vec![0usize; 64];
            for _ in 0..N {
                counts[table.sample(&mut rng).index()] += 1;
            }
            counts
        };
        for (label, counts) in [
            ("alias", census(&alias, 7)),
            ("cumulative", census(&cumulative, 8)),
        ] {
            let chi2: f64 = counts
                .iter()
                .zip(&probs)
                .map(|(&n, &p)| {
                    let e = p * N as f64;
                    (n as f64 - e).powi(2) / e
                })
                .sum();
            // 63 degrees of freedom: the 99.9% critical value is ≈ 103.4.
            assert!(chi2 < 103.4, "{label}: chi-square {chi2} too large");
        }
    }

    #[test]
    fn automatic_backend_selection_by_support_size() {
        let big: Vec<(CellId, f64)> = (0..SamplingTable::ALIAS_THRESHOLD as u32)
            .map(|i| (CellId(i), 1.0))
            .collect();
        assert!(SamplingTable::from_weights(big).is_alias());
        let small: Vec<(CellId, f64)> = (0..SamplingTable::ALIAS_THRESHOLD as u32 - 1)
            .map(|i| (CellId(i), 1.0))
            .collect();
        assert!(!SamplingTable::from_weights(small).is_alias());
    }

    #[test]
    fn distribution_cache_hits_by_key() {
        let index = PolicyIndex::new(policy());
        let mut builds = 0;
        for _ in 0..3 {
            index.distribution("gem", 1.0, CellId(0), |p| {
                builds += 1;
                GraphExponential
                    .output_distribution(p, 1.0, CellId(0))
                    .unwrap()
            });
        }
        assert_eq!(builds, 1, "same key must build once");
        index.distribution("gem", 2.0, CellId(0), |p| {
            builds += 1;
            GraphExponential
                .output_distribution(p, 2.0, CellId(0))
                .unwrap()
        });
        assert_eq!(builds, 2, "different eps is a different key");
        assert_eq!(index.n_cached_distributions(), 2);
        assert_eq!(index.cached_entry_weight(), 8);
    }

    #[test]
    fn cached_distribution_matches_closed_form() {
        let index = PolicyIndex::new(policy());
        let exact = GraphExponential
            .output_distribution(index.policy(), 1.0, CellId(5))
            .unwrap();
        let table = index.distribution("gem", 1.0, CellId(5), |p| {
            GraphExponential
                .output_distribution(p, 1.0, CellId(5))
                .unwrap()
        });
        assert_eq!(table.cells().len(), exact.len());
        for ((&cell, p_table), (cell_exact, p_exact)) in
            table.cells().iter().zip(table.probabilities()).zip(exact)
        {
            assert_eq!(cell, cell_exact);
            assert!((p_table - p_exact).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_cap_evicts_lru_but_still_serves() {
        // Budget of 5 entries: each 4-cell table fills it; inserting the
        // next evicts the previous (LRU), and every request is still
        // served.
        let index = PolicyIndex::with_cache_capacity(policy(), 5);
        for (i, eps) in [0.5, 1.0, 2.0, 4.0].iter().enumerate() {
            let table = index.distribution("gem", *eps, CellId(0), |p| {
                GraphExponential
                    .output_distribution(p, *eps, CellId(0))
                    .unwrap()
            });
            assert_eq!(table.cells().len(), 4, "table {i} must still be served");
            assert_eq!(index.n_cached_distributions(), 1);
        }
        // The most recent key is retained (no rebuild)...
        index.distribution("gem", 4.0, CellId(0), |_| {
            panic!("most-recent table must be served from cache")
        });
        // ...and the first key was evicted, so it rebuilds.
        let mut rebuilt = false;
        index.distribution("gem", 0.5, CellId(0), |p| {
            rebuilt = true;
            GraphExponential
                .output_distribution(p, 0.5, CellId(0))
                .unwrap()
        });
        assert!(rebuilt, "LRU must have evicted the oldest key");
    }

    #[test]
    fn lru_keeps_recently_used_tables() {
        // Capacity for two 4-cell tables. Touch the first before inserting
        // a third: the *second* must be the victim.
        let index = PolicyIndex::with_cache_capacity(policy(), 8);
        let build = |eps: f64| {
            move |p: &LocationPolicyGraph| {
                GraphExponential
                    .output_distribution(p, eps, CellId(0))
                    .unwrap()
            }
        };
        index.distribution("gem", 1.0, CellId(0), build(1.0));
        index.distribution("gem", 2.0, CellId(0), build(2.0));
        index.distribution("gem", 1.0, CellId(0), |_| panic!("hit expected"));
        index.distribution("gem", 3.0, CellId(0), build(3.0));
        index.distribution("gem", 1.0, CellId(0), |_| {
            panic!("recently-used table must survive eviction")
        });
        let mut rebuilt = false;
        index.distribution("gem", 2.0, CellId(0), |p| {
            rebuilt = true;
            build(2.0)(p)
        });
        assert!(rebuilt, "LRU victim must be the least-recently-used key");
    }

    #[test]
    fn calibration_length_cached_and_correct() {
        let p = policy();
        let index = PolicyIndex::new(p.clone());
        let fresh = compute_calibration_length(&p, CellId(0));
        assert_eq!(index.calibration_length(CellId(0)), fresh);
        // Second call answers from cache (no way to observe directly, but it
        // must agree and not panic).
        assert_eq!(index.calibration_length(CellId(0)), fresh);
        // Isolated policy: no calibration.
        let iso = PolicyIndex::new(LocationPolicyGraph::isolated(GridMap::new(2, 2, 50.0)));
        assert_eq!(iso.calibration_length(CellId(0)), None);
    }

    #[test]
    fn distance_rows_cached_and_correct() {
        let index = PolicyIndex::new(policy());
        let row = index.distance_row(CellId(0)).unwrap();
        let expect: Vec<(CellId, u32)> = index.policy().component_distances(CellId(0));
        assert_eq!(row.len(), expect.len());
        for (&(_, d_exact), &d_row) in expect.iter().zip(row.iter()) {
            assert_eq!(d_exact, u32::from(d_row));
        }
        // Second touch hits the cache.
        let _ = index.distance_row(CellId(0));
        let stats = index.row_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(index.n_cached_rows(), 1);
        // A different cell of the same component is its own row.
        let _ = index.distance_row(CellId(1));
        assert_eq!(index.n_cached_rows(), 2);
    }

    #[test]
    fn epsilon_sweep_shares_one_row_per_cell() {
        let index = PolicyIndex::new(policy());
        let mut rng = SmallRng::seed_from_u64(5);
        for eps in [0.25, 0.5, 1.0, 2.0, 4.0] {
            GraphExponential
                .perturb_batch(&index, eps, &[CellId(0)], &mut rng)
                .unwrap();
        }
        let stats = index.row_cache_stats();
        assert_eq!(stats.misses, 1, "five ε steps must derive the row once");
        assert_eq!(stats.hits, 4);
        assert_eq!(index.n_cached_distributions(), 5, "one table per ε");
    }

    #[test]
    fn cache_stats_and_memory_accounting() {
        let index = PolicyIndex::new(policy());
        assert_eq!(index.distribution_cache_stats(), CacheStats::default());
        let base = index.cache_memory_bytes();
        let table = index.distribution("gem", 1.0, CellId(0), |p| {
            GraphExponential
                .output_distribution(p, 1.0, CellId(0))
                .unwrap()
        });
        let row = index.distance_row(CellId(0)).unwrap();
        let expect = base + table.memory_bytes() + row.len() * 2;
        assert_eq!(index.cache_memory_bytes(), expect);
        let stats = index.distribution_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        index.distribution("gem", 1.0, CellId(0), |_| panic!("must be cached"));
        assert_eq!(index.distribution_cache_stats().hits, 1);
    }

    #[test]
    fn sampling_table_memory_bytes_by_backend() {
        let small = SamplingTable::from_weights(vec![(CellId(0), 1.0), (CellId(1), 2.0)]);
        // 2 cells × 4 B + 2 cumulative f64s.
        assert_eq!(small.memory_bytes(), 2 * 4 + 2 * 8);
        let big: Vec<(CellId, f64)> = (0..SamplingTable::ALIAS_THRESHOLD as u32)
            .map(|i| (CellId(i), 1.0))
            .collect();
        let n = big.len();
        let alias = SamplingTable::from_weights(big);
        // n cells × 4 B + n probs × 8 B + n aliases × 4 B.
        assert_eq!(alias.memory_bytes(), n * (4 + 8 + 4));
    }

    #[test]
    fn component_slice_is_sorted_support() {
        let index = PolicyIndex::new(policy());
        let slice = index.component_slice(CellId(0));
        assert_eq!(slice.len(), 4);
        assert!(slice.windows(2).all(|w| w[0] < w[1]));
        assert!(slice.contains(&CellId(0)));
    }
}
