//! [`PolicyIndex`]: the precomputed fast path for bulk location release.
//!
//! Every PGLP mechanism (§3.1) samples from a distribution shaped by the
//! policy-graph distances `d_G(s, ·)`. The [`crate::policy`] layer already
//! tabulates those distances at construction; this module adds the second
//! cache level — **per-`(mechanism, ε, cell)` output distributions compiled
//! into cumulative sampling tables** — so releasing a whole trajectory costs
//! one table build per distinct `(mechanism, ε, cell)` and then O(log k)
//! per report.
//!
//! A [`PolicyIndex`] wraps one policy. Servers and clients build it once per
//! policy assignment and feed it to
//! [`Mechanism::perturb_batch`](crate::mech::Mechanism::perturb_batch);
//! experiment harnesses build one per swept policy. The cache is
//! thread-safe (`parking_lot::RwLock`), so one index can serve concurrent
//! report streams.

use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use parking_lot::RwLock;
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: mechanism identity × ε (by bit pattern) × true location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DistKey {
    mech: &'static str,
    eps_bits: u64,
    cell: CellId,
}

/// A closed-form output distribution compiled for O(log k) inverse-CDF
/// sampling.
#[derive(Debug, Clone)]
pub struct SamplingTable {
    cells: Vec<CellId>,
    /// `cum[i]` = Σ probabilities up to and including cell `i`;
    /// `cum.last() == total`.
    cum: Vec<f64>,
    total: f64,
}

impl SamplingTable {
    /// Compiles `(cell, weight)` pairs into a cumulative table. Weights need
    /// not be normalised; they must be non-negative with a positive sum.
    ///
    /// # Panics
    ///
    /// Panics on an empty distribution or a non-positive total weight.
    pub fn from_weights(dist: Vec<(CellId, f64)>) -> Self {
        assert!(!dist.is_empty(), "sampling table needs support");
        let mut cells = Vec::with_capacity(dist.len());
        let mut cum = Vec::with_capacity(dist.len());
        let mut total = 0.0;
        for (c, w) in dist {
            debug_assert!(w >= 0.0 && w.is_finite(), "bad weight {w} for {c}");
            total += w;
            cells.push(c);
            cum.push(total);
        }
        assert!(
            total > 0.0 && total.is_finite(),
            "sampling table total weight must be positive"
        );
        SamplingTable { cells, cum, total }
    }

    /// Support cells, in table order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Normalised probability of each support cell, in table order.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cum
            .iter()
            .map(|&c| {
                let p = (c - prev) / self.total;
                prev = c;
                p
            })
            .collect()
    }

    /// Draws one cell by inverse-CDF binary search: O(log k), no allocation.
    pub fn sample(&self, rng: &mut dyn RngCore) -> CellId {
        let u = rng.gen_range(0.0..self.total);
        let i = self.cum.partition_point(|&c| c <= u);
        // partition_point can land one past the end on FP edge cases.
        self.cells[i.min(self.cells.len() - 1)]
    }
}

/// Precomputed sampling state for one policy: distance tables (shared with
/// the policy), interned component slices, cached per-`(mechanism, ε, cell)`
/// sampling tables, and cached per-component calibration lengths.
#[derive(Debug)]
pub struct PolicyIndex {
    policy: LocationPolicyGraph,
    distributions: RwLock<HashMap<DistKey, Arc<SamplingTable>>>,
    /// Total entries retained across all cached tables (cap enforcement).
    cached_entries: std::sync::atomic::AtomicUsize,
    /// Retention cap for the distribution cache, in table entries.
    max_cached_entries: usize,
    /// `calibrations[component]`: `None` = not yet computed,
    /// `Some(None)` = singleton component (exact release),
    /// `Some(Some(len))` = longest policy edge in the component.
    calibrations: RwLock<Vec<Option<Option<f64>>>>,
}

impl PolicyIndex {
    /// Indexes a policy with the default cache budget
    /// ([`PolicyIndex::MAX_CACHED_ENTRIES`]). The distance tables are shared
    /// with `policy` (they were computed at its construction); only the
    /// distribution cache is new, and it fills lazily as mechanisms run.
    pub fn new(policy: LocationPolicyGraph) -> Self {
        Self::with_cache_capacity(policy, Self::MAX_CACHED_ENTRIES)
    }

    /// Indexes a policy with an explicit distribution-cache budget, in
    /// table entries (Σ support sizes across retained tables).
    pub fn with_cache_capacity(policy: LocationPolicyGraph, max_cached_entries: usize) -> Self {
        let n_components = policy.n_components() as usize;
        PolicyIndex {
            policy,
            distributions: RwLock::new(HashMap::new()),
            cached_entries: std::sync::atomic::AtomicUsize::new(0),
            max_cached_entries,
            calibrations: RwLock::new(vec![None; n_components]),
        }
    }

    /// The indexed policy.
    #[inline]
    pub fn policy(&self) -> &LocationPolicyGraph {
        &self.policy
    }

    /// `d_G(a, b)`, or `None` across components (delegates to the policy's
    /// precomputed tables).
    #[inline]
    pub fn distance(&self, a: CellId, b: CellId) -> Option<u32> {
        self.policy.distance(a, b)
    }

    /// The interned, sorted component slice of `c` — the release support.
    #[inline]
    pub fn component_slice(&self, c: CellId) -> &[CellId] {
        self.policy.component_slice(c)
    }

    /// Default retention cap for the distribution cache, in table *entries*
    /// (Σ support sizes) — the same quadratic-memory guard the distance
    /// tables have. Past the cap, tables are still built and returned but
    /// no longer retained.
    pub const MAX_CACHED_ENTRIES: usize = 1 << 24;

    /// The cached sampling table for `(mech, eps, cell)`, building it with
    /// `build` on first use. `build` receives the indexed policy and returns
    /// the mechanism's closed-form output weights over the support.
    pub fn distribution(
        &self,
        mech: &'static str,
        eps: f64,
        cell: CellId,
        build: impl FnOnce(&LocationPolicyGraph) -> Vec<(CellId, f64)>,
    ) -> Arc<SamplingTable> {
        let key = DistKey {
            mech,
            eps_bits: eps.to_bits(),
            cell,
        };
        if let Some(table) = self.distributions.read().get(&key) {
            return Arc::clone(table);
        }
        let table = Arc::new(SamplingTable::from_weights(build(&self.policy)));
        let mut cache = self.distributions.write();
        if self
            .cached_entries
            .load(std::sync::atomic::Ordering::Relaxed)
            + table.cells().len()
            > self.max_cached_entries
        {
            // Cache full: serve the table without retaining it, bounding
            // memory for huge components or unbounded (ε, cell) churn.
            return table;
        }
        let entry = cache.entry(key).or_insert_with(|| {
            self.cached_entries
                .fetch_add(table.cells().len(), std::sync::atomic::Ordering::Relaxed);
            table
        });
        Arc::clone(entry)
    }

    /// Cached calibration length of the component of `cell`: the longest
    /// Euclidean policy edge inside the component, or `None` for isolated
    /// cells (exact release). Used by the Laplace-style mechanisms.
    pub fn calibration_length(&self, cell: CellId) -> Option<f64> {
        let comp = self.policy.component_of(cell) as usize;
        if let Some(cached) = self.calibrations.read()[comp] {
            return cached;
        }
        let computed = compute_calibration_length(&self.policy, cell);
        self.calibrations.write()[comp] = Some(computed);
        computed
    }

    /// Number of distribution tables currently cached (diagnostics).
    pub fn n_cached_distributions(&self) -> usize {
        self.distributions.read().len()
    }
}

/// The longest Euclidean policy edge within the component of `s`, or `None`
/// when `s` is isolated. (The calibration scale `L` of the Laplace-style
/// mechanisms; cached per component by [`PolicyIndex`].)
pub(crate) fn compute_calibration_length(policy: &LocationPolicyGraph, s: CellId) -> Option<f64> {
    let cells = policy.component_slice(s);
    if cells.len() <= 1 {
        return None;
    }
    let grid = policy.grid();
    let mut max_len = 0.0_f64;
    for &a in cells {
        for &b in policy.graph().neighbors(a.0) {
            let d = grid.distance(a, CellId(b));
            max_len = max_len.max(d);
        }
    }
    Some(max_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::{GraphExponential, Mechanism};
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> LocationPolicyGraph {
        LocationPolicyGraph::partition(GridMap::new(4, 4, 100.0), 2, 2)
    }

    #[test]
    fn sampling_table_matches_probabilities() {
        let table =
            SamplingTable::from_weights(vec![(CellId(0), 1.0), (CellId(1), 3.0), (CellId(2), 6.0)]);
        let probs = table.probabilities();
        assert!((probs[0] - 0.1).abs() < 1e-12);
        assert!((probs[1] - 0.3).abs() < 1e-12);
        assert!((probs[2] - 0.6).abs() < 1e-12);

        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        const N: usize = 120_000;
        for _ in 0..N {
            counts[table.sample(&mut rng).index()] += 1;
        }
        for (i, &expect) in [0.1, 0.3, 0.6].iter().enumerate() {
            let freq = counts[i] as f64 / N as f64;
            assert!((freq - expect).abs() < 0.01, "cell {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn distribution_cache_hits_by_key() {
        let index = PolicyIndex::new(policy());
        let mut builds = 0;
        for _ in 0..3 {
            index.distribution("gem", 1.0, CellId(0), |p| {
                builds += 1;
                GraphExponential
                    .output_distribution(p, 1.0, CellId(0))
                    .unwrap()
            });
        }
        assert_eq!(builds, 1, "same key must build once");
        index.distribution("gem", 2.0, CellId(0), |p| {
            builds += 1;
            GraphExponential
                .output_distribution(p, 2.0, CellId(0))
                .unwrap()
        });
        assert_eq!(builds, 2, "different eps is a different key");
        assert_eq!(index.n_cached_distributions(), 2);
    }

    #[test]
    fn cached_distribution_matches_closed_form() {
        let index = PolicyIndex::new(policy());
        let exact = GraphExponential
            .output_distribution(index.policy(), 1.0, CellId(5))
            .unwrap();
        let table = index.distribution("gem", 1.0, CellId(5), |p| {
            GraphExponential
                .output_distribution(p, 1.0, CellId(5))
                .unwrap()
        });
        assert_eq!(table.cells().len(), exact.len());
        for ((&cell, p_table), (cell_exact, p_exact)) in
            table.cells().iter().zip(table.probabilities()).zip(exact)
        {
            assert_eq!(cell, cell_exact);
            assert!((p_table - p_exact).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_cap_stops_retention_but_not_service() {
        // Budget of 5 entries: the first 4-cell table fills it; further
        // distinct keys are served but not retained.
        let index = PolicyIndex::with_cache_capacity(policy(), 5);
        for (i, eps) in [0.5, 1.0, 2.0, 4.0].iter().enumerate() {
            let table = index.distribution("gem", *eps, CellId(0), |p| {
                GraphExponential
                    .output_distribution(p, *eps, CellId(0))
                    .unwrap()
            });
            assert_eq!(table.cells().len(), 4, "table {i} must still be served");
        }
        assert_eq!(
            index.n_cached_distributions(),
            1,
            "only the first table fits the 5-entry budget"
        );
        // The retained key still hits the cache (no rebuild).
        index.distribution("gem", 0.5, CellId(0), |_| {
            panic!("retained table must be served from cache")
        });
    }

    #[test]
    fn calibration_length_cached_and_correct() {
        let p = policy();
        let index = PolicyIndex::new(p.clone());
        let fresh = compute_calibration_length(&p, CellId(0));
        assert_eq!(index.calibration_length(CellId(0)), fresh);
        // Second call answers from cache (no way to observe directly, but it
        // must agree and not panic).
        assert_eq!(index.calibration_length(CellId(0)), fresh);
        // Isolated policy: no calibration.
        let iso = PolicyIndex::new(LocationPolicyGraph::isolated(GridMap::new(2, 2, 50.0)));
        assert_eq!(iso.calibration_length(CellId(0)), None);
    }

    #[test]
    fn component_slice_is_sorted_support() {
        let index = PolicyIndex::new(policy());
        let slice = index.component_slice(CellId(0));
        assert_eq!(slice.len(), 4);
        assert!(slice.windows(2).all(|w| w[0] < w[1]));
        assert!(slice.contains(&CellId(0)));
    }
}
