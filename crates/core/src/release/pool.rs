//! [`ReleasePool`]: the persistent worker pool behind the release engine.
//!
//! PR 2's [`ParallelReleaser`](super::ParallelReleaser) spawned a fresh
//! crossbeam scope per release call — fine for one 256k-report bulk
//! replay, a tax on streaming workloads that release thousands of small
//! micro-batches per second. This pool spawns its workers **once**; between
//! bursts they sit parked in a bounded MPMC channel `recv` (zero CPU) and
//! wake only when work arrives:
//!
//! * submission is a queue push, not a thread spawn — the per-call cost the
//!   small-batch p50 in `BENCH_release.json` pays for;
//! * the queue is **bounded** ([`ReleasePool::QUEUE_SLOTS_PER_WORKER`]
//!   slots per worker), so a producer that outruns the pool blocks on
//!   submit instead of growing an unbounded backlog — the same
//!   backpressure discipline the ingest pipeline builds on;
//! * [`ReleasePool::run_scoped`] lends *borrowed* jobs to the `'static`
//!   workers and blocks until every one has finished, so release calls can
//!   hand out `&mut` output chunks without copying — the pool-flavoured
//!   equivalent of a crossbeam scope;
//! * dropping the pool disconnects the queue; workers drain what is already
//!   queued, then exit, and `Drop` joins them (no report in flight is
//!   lost).
//!
//! Scheduling never affects output: the release paths key every RNG stream
//! off the chunk index, so *which* worker runs a chunk is irrelevant — see
//! the determinism contract on [`ParallelReleaser`](super::ParallelReleaser).
//!
//! Contention discipline: each lane a pool worker runs owns a
//! [`SamplerMemo`](crate::mech::SamplerMemo), so concurrent lanes touch the
//! shared [`PolicyIndex`](crate::PolicyIndex) distribution cache at most
//! once per distinct cell each — workers spend their time drawing, not
//! queueing on the cache mutex.

use crossbeam::channel::{bounded, Receiver, Sender};
use panda_obs::{clock, Counter, Gauge, Histogram, Registry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A unit of pool work, type-erased and `'static` (see
/// [`ReleasePool::run_scoped`] for how borrowed jobs get here soundly).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The engine-wide "one lane/worker per hardware thread" default, shared
/// by [`ReleasePool::global`], `ParallelReleaser::new`, and the ingest
/// pipeline's lane default so they can never silently diverge.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Counts outstanding jobs of one `run_scoped` call; the caller parks on it
/// until every job has completed (or panicked).
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn complete_one(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = self.all_done.wait(remaining).expect("latch poisoned");
        }
    }
}

/// A long-lived pool of release workers fed by a bounded MPMC queue.
///
/// Construct one explicitly for an isolated component (tests, a dedicated
/// ingest pipeline), or share the process-wide [`ReleasePool::global`] —
/// the default every [`ParallelReleaser`](super::ParallelReleaser) release
/// goes through.
pub struct ReleasePool {
    /// `Some` for the pool's lifetime; taken in `Drop` to disconnect the
    /// queue so workers drain and exit.
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Workers currently executing a job (each worker's loop brackets the
    /// job with inc/dec on its own clone of this gauge).
    busy_workers: Gauge,
    /// `run_scoped` calls completed.
    bursts: Counter,
    /// Submit-to-drained latency of each `run_scoped` burst, in ns.
    burst_ns: Histogram,
}

impl std::fmt::Debug for ReleasePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleasePool")
            .field("n_workers", &self.workers.len())
            .field("queued", &self.tx.as_ref().map(|tx| tx.len()).unwrap_or(0))
            .finish()
    }
}

impl ReleasePool {
    /// Bounded-queue slots per worker: deep enough that workers never
    /// starve between a caller's submissions, shallow enough that a
    /// runaway producer feels backpressure within a few bursts.
    pub const QUEUE_SLOTS_PER_WORKER: usize = 4;

    /// Spawns a pool of `n_workers` (≥ 1) parked worker threads.
    pub fn new(n_workers: usize) -> Self {
        let n_workers = n_workers.max(1);
        let (tx, rx) = bounded::<Job>(n_workers * Self::QUEUE_SLOTS_PER_WORKER);
        let busy_workers = Gauge::new();
        let workers = (0..n_workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let busy = busy_workers.clone();
                std::thread::Builder::new()
                    .name(format!("panda-release-{i}"))
                    .spawn(move || {
                        // Parked in `recv` between bursts; `Err` means the
                        // queue is drained *and* the pool was dropped.
                        while let Ok(job) = rx.recv() {
                            busy.inc();
                            job();
                            busy.dec();
                        }
                    })
                    .expect("spawn release worker")
            })
            .collect();
        ReleasePool {
            tx: Some(tx),
            workers,
            busy_workers,
            bursts: Counter::new(),
            burst_ns: Histogram::new(),
        }
    }

    /// The process-wide shared pool, spawned on first use with one worker
    /// per hardware thread. Lives for the rest of the process (workers are
    /// parked, not spinning, while idle).
    pub fn global() -> &'static ReleasePool {
        static GLOBAL: OnceLock<ReleasePool> = OnceLock::new();
        GLOBAL.get_or_init(|| ReleasePool::new(default_parallelism()))
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (racy by nature; for monitoring/tests).
    pub fn queued(&self) -> usize {
        self.tx.as_ref().map(|tx| tx.len()).unwrap_or(0)
    }

    /// Adopts the pool's live occupancy/latency handles into `registry`
    /// under `panda_pool_*` names.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_gauge("panda_pool_busy_workers", &self.busy_workers);
        registry.register_counter("panda_pool_bursts_total", &self.bursts);
        registry.register_histogram("panda_pool_burst_ns", &self.burst_ns);
    }

    /// Runs `jobs` on the pool and blocks until **all** of them have
    /// finished — the pool-flavoured crossbeam scope. Jobs may borrow from
    /// the caller's stack (disjoint `&mut` output chunks included).
    ///
    /// Don't call this from *inside* a pool job: the inner call would wait
    /// for workers that may all be parked in outer calls doing the same.
    /// The release paths never nest.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic in the caller) when any job panicked; the
    /// latch still waits for the remaining jobs first, so borrowed data is
    /// never left aliased by a live worker.
    pub fn run_scoped<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let t0 = clock::now();
        let latch = Arc::new(Latch::new(jobs.len()));
        let tx = self.tx.as_ref().expect("pool alive");
        let mut send_failed = false;
        let mut jobs = jobs.into_iter();
        for job in jobs.by_ref() {
            // SAFETY: every exit from this function — success, job panic,
            // or submission failure — first waits on the latch below, and
            // the latch only opens once each submitted job has run to
            // completion (the wrapper decrements on the job's panic path
            // too) and each unsubmitted job has been accounted for. So
            // every `'env` borrow a job captures strictly outlives its
            // execution on the worker.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            let job_latch = Arc::clone(&latch);
            let wrapped: Job = Box::new(move || {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    job_latch.panicked.store(true, Ordering::Release);
                }
                job_latch.complete_one();
            });
            // Blocks when the queue is full: submission backpressure.
            if tx.send(wrapped).is_err() {
                // Workers exited while the pool is alive — a pool-logic
                // bug. Do NOT unwind yet: in-flight jobs still borrow the
                // caller's stack. Account for this job (its wrapper was
                // consumed unsent) and every remaining one so the latch
                // converges, drain it, then surface the bug as a panic.
                latch.complete_one();
                for _ in jobs.by_ref() {
                    latch.complete_one();
                }
                send_failed = true;
                break;
            }
        }
        latch.wait();
        self.burst_ns.record(clock::ns_since(t0));
        self.bursts.inc();
        assert!(!send_failed, "release pool workers exited early");
        if latch.panicked.load(Ordering::Acquire) {
            panic!("release pool job panicked");
        }
    }
}

impl Drop for ReleasePool {
    fn drop(&mut self) {
        // Disconnect the queue; workers drain remaining jobs, then exit.
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            // A worker only panics if a fire-and-forget job panicked (the
            // scoped path catches job panics); surface it here.
            worker.join().expect("release worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_scoped_executes_every_borrowed_job() {
        let pool = ReleasePool::new(4);
        let mut data = vec![0u64; 64];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(8)
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 8 + j) as u64;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(data, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn sequential_run_scoped_calls_reuse_the_same_workers() {
        let pool = ReleasePool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn more_jobs_than_queue_slots_all_complete() {
        // 1 worker → 4 queue slots; 64 jobs exercise submit backpressure.
        let pool = ReleasePool::new(1);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let pool = Arc::new(ReleasePool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let callers: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
                            .map(|_| {
                                let counter = Arc::clone(&counter);
                                Box::new(move || {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                }) as Box<dyn FnOnce() + Send + '_>
                            })
                            .collect();
                        pool.run_scoped(jobs);
                    }
                })
            })
            .collect();
        for c in callers {
            c.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn job_panic_surfaces_after_all_jobs_complete() {
        let pool = ReleasePool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let completed = Arc::clone(&completed);
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
                panic!("job boom");
            })];
            for _ in 0..8 {
                let completed = Arc::clone(&completed);
                jobs.push(Box::new(move || {
                    completed.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.run_scoped(jobs);
        }));
        assert!(result.is_err(), "job panic must re-raise in the caller");
        assert_eq!(completed.load(Ordering::Relaxed), 8, "healthy jobs ran");
        // The pool survives a panicked job.
        let counter = AtomicUsize::new(0);
        pool.run_scoped(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ReleasePool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_hardware() {
        let a = ReleasePool::global();
        let b = ReleasePool::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.n_workers(), default_parallelism());
    }
}
