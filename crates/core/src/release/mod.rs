//! [`ParallelReleaser`]: deterministic multi-threaded bulk release.
//!
//! The PR-1 batch path ([`Mechanism::perturb_batch`]) amortises policy-graph
//! work through the [`PolicyIndex`] but still runs on one thread. This
//! module partitions a report batch into **fixed-size chunks** and fans the
//! chunks out over the persistent [`pool::ReleasePool`], with each chunk's
//! RNG stream split deterministically from one seed:
//!
//! * the chunk grid depends only on the batch length and
//!   [`ParallelReleaser::chunk_size`] — *never* on the thread count, the
//!   pool size, or which worker runs which chunk — so a fixed seed yields
//!   **bit-identical output on 1 thread or 64**;
//! * every chunk seeds its own `StdRng` via a SplitMix64-style mix of
//!   `(seed, chunk index)`, so streams are unrelated across chunks and
//!   reproducible in isolation;
//! * all threads share one [`PolicyIndex`] — its distribution, calibration
//!   and hull caches are concurrent, so the first thread to touch a
//!   `(mechanism, ε, cell)` key builds the table and the rest sample from
//!   it;
//! * chunks are perturbed **in place** into their slot of the output batch
//!   ([`Mechanism::perturb_batch_into`]) — no per-chunk allocation or copy;
//! * work that fits a single lane (one thread requested, or the batch fits
//!   one chunk) runs **inline on the caller thread** — the small-batch
//!   streaming hot path pays neither a spawn nor a queue hand-off.
//!
//! [`ParallelReleaser::release_scoped`] keeps the PR-2 fresh-scope-per-call
//! implementation as the executable reference for the determinism contract:
//! the pooled path must stay byte-identical to it (CI-enforced) and the
//! spawn cost it pays per call is the small-batch baseline
//! `BENCH_release.json` tracks.
//!
//! The surveillance server consumes the output via
//! `Server::receive_batch`, which groups reports by shard before taking any
//! lock — together with the streaming ingest pipeline they form the release
//! engine the experiment binaries and the simulation driver run on.

pub mod pool;

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::{Mechanism, SamplerMemo};
use panda_check::ordered::{rank, OrderedMutex};
use panda_geo::CellId;
use pool::ReleasePool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default chunk size: big enough to amortise thread hand-off, small enough
/// to load-balance a 256k-report batch over many threads.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// One chunk of work: (chunk index, input cells, output slot).
type Chunk<'a> = (usize, &'a [CellId], &'a mut [CellId]);

/// A deterministic parallel bulk-release driver. Cheap to construct; holds
/// no per-policy state (that lives in the [`PolicyIndex`]) and no threads
/// (releases run on the shared [`ReleasePool`], or inline when a single
/// lane suffices).
#[derive(Debug, Clone)]
pub struct ParallelReleaser {
    n_threads: usize,
    chunk_size: usize,
}

impl Default for ParallelReleaser {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelReleaser {
    /// A releaser using all available hardware parallelism.
    pub fn new() -> Self {
        Self::with_threads(pool::default_parallelism())
    }

    /// A releaser with an explicit lane count (≥ 1): the maximum number of
    /// pool workers one release call occupies. The lane count affects
    /// wall-clock only, never the released cells.
    pub fn with_threads(n_threads: usize) -> Self {
        ParallelReleaser {
            n_threads: n_threads.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Overrides the chunk size (≥ 1). Unlike the thread count, the chunk
    /// grid is part of the deterministic stream: changing it changes which
    /// RNG stream covers which report, and therefore the output.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Maximum concurrent lanes per release call.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Reports per deterministic RNG chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Releases `locs` through `mech` under the indexed policy on the
    /// shared [`ReleasePool::global`], using up to
    /// [`ParallelReleaser::n_threads`] lanes. Outputs are positionally
    /// aligned with `locs` and **bit-identical for a fixed `(seed,
    /// chunk_size)` regardless of the lane count, pool size, or
    /// scheduling** — and identical to [`ParallelReleaser::release_scoped`].
    ///
    /// Single-lane work (one thread requested, or `locs` fits one chunk)
    /// runs inline on the caller thread with no hand-off at all.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mechanism::perturb_batch`]. When several
    /// chunks fail, the error of the earliest failing chunk is returned
    /// (deterministic).
    pub fn release(
        &self,
        mech: &(dyn Mechanism + Sync),
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        seed: u64,
    ) -> Result<Vec<CellId>, PglpError> {
        self.release_on(ReleasePool::global(), mech, index, eps, locs, seed)
    }

    /// [`ParallelReleaser::release`] on an explicit pool (a dedicated
    /// ingest pool, a test pool of a fixed size). Output does not depend on
    /// which pool runs the work.
    pub fn release_on(
        &self,
        pool: &ReleasePool,
        mech: &(dyn Mechanism + Sync),
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        seed: u64,
    ) -> Result<Vec<CellId>, PglpError> {
        let mut out = vec![CellId(0); locs.len()];
        if locs.is_empty() {
            return Ok(out);
        }
        let mut lanes = self.lanes(locs, &mut out);
        let failures: Vec<(usize, PglpError)> = if lanes.len() == 1 {
            // Small-batch fast path: one lane has zero exploitable
            // parallelism — run it on the caller thread, skipping the queue
            // hand-off entirely. Byte-identical: same chunk grid, same
            // per-chunk streams.
            run_lane(mech, index, eps, seed, lanes.pop().expect("one lane"))
        } else {
            let failures: OrderedMutex<Vec<(usize, PglpError)>> =
                OrderedMutex::new(rank::RELEASE_FAILURES, Vec::new());
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = lanes
                .into_iter()
                .map(|lane| {
                    let failures = &failures;
                    Box::new(move || {
                        let errs = run_lane(mech, index, eps, seed, lane);
                        if !errs.is_empty() {
                            failures.lock().extend(errs);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs);
            failures.into_inner()
        };
        match failures.into_iter().min_by_key(|&(i, _)| i) {
            Some((_, e)) => Err(e),
            None => Ok(out),
        }
    }

    /// The PR-2 implementation — a fresh crossbeam scope per call — kept as
    /// the executable reference for the determinism contract (the pooled
    /// [`ParallelReleaser::release`] must match it byte for byte; see the
    /// `pooled_release_matches_scoped_reference` test) and as the
    /// spawn-cost baseline the small-batch benchmarks compare against.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ParallelReleaser::release`].
    pub fn release_scoped(
        &self,
        mech: &(dyn Mechanism + Sync),
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        seed: u64,
    ) -> Result<Vec<CellId>, PglpError> {
        let mut out = vec![CellId(0); locs.len()];
        if locs.is_empty() {
            return Ok(out);
        }
        let lanes = self.lanes(locs, &mut out);
        let failures: Vec<(usize, PglpError)> = crossbeam::scope(|scope| {
            let handles: Vec<_> = lanes
                .into_iter()
                .map(|lane| scope.spawn(move |_| run_lane(mech, index, eps, seed, lane)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("release worker panicked"))
                .collect()
        })
        .expect("release scope panicked");
        match failures.into_iter().min_by_key(|&(i, _)| i) {
            Some((_, e)) => Err(e),
            None => Ok(out),
        }
    }

    /// Deals the chunk grid round-robin onto `min(n_threads, n_chunks)`
    /// lanes. The assignment affects only which lane runs which chunk; the
    /// per-chunk RNG stream is a pure function of `(seed, chunk index)`.
    fn lanes<'a>(&self, locs: &'a [CellId], out: &'a mut [CellId]) -> Vec<Vec<Chunk<'a>>> {
        let n_chunks = locs.len().div_ceil(self.chunk_size);
        let n_lanes = self.n_threads.min(n_chunks);
        let mut lanes: Vec<Vec<Chunk<'a>>> = (0..n_lanes).map(|_| Vec::new()).collect();
        for (i, (input, output)) in locs
            .chunks(self.chunk_size)
            .zip(out.chunks_mut(self.chunk_size))
            .enumerate()
        {
            lanes[i % n_lanes].push((i, input, output));
        }
        lanes
    }
}

/// Perturbs every chunk of one lane in place, collecting `(chunk index,
/// error)` pairs. Shared by the pooled, scoped and inline paths — one
/// sampling sequence, three schedulers.
///
/// The lane owns one [`SamplerMemo`]: each distinct cell resolves its
/// [`crate::mech::CellSampler`] once **for the whole lane** (one shared
/// distribution-cache touch), and every chunk then draws lock-free from its
/// own RNG stream. Because resolution consumes no randomness, the output is
/// byte-identical to calling `perturb_batch_into` per chunk.
fn run_lane(
    mech: &(dyn Mechanism + Sync),
    index: &PolicyIndex,
    eps: f64,
    seed: u64,
    lane: Vec<Chunk<'_>>,
) -> Vec<(usize, PglpError)> {
    let mut errs = Vec::new();
    let mut memo = SamplerMemo::new();
    let use_memo = mech.prefers_sampler_memo();
    for (i, input, output) in lane {
        let mut rng = chunk_rng(seed, i as u64);
        let result = if !use_memo || memo.unsupported() {
            // No sampler support, or resolution is declared trivially
            // cheap: the per-chunk batch path (identical draw streams).
            mech.perturb_batch_into(index, eps, input, &mut rng, output)
        } else {
            run_chunk(mech, index, eps, &mut memo, input, &mut rng, output)
        };
        if let Err(e) = result {
            errs.push((i, e));
        }
    }
    errs
}

/// One chunk through the lane memo. On error the chunk aborts at the
/// failing location (later slots unspecified), matching
/// [`Mechanism::perturb_batch_into`].
fn run_chunk<'a>(
    mech: &'a (dyn Mechanism + Sync),
    index: &'a PolicyIndex,
    eps: f64,
    memo: &mut SamplerMemo<'a>,
    input: &[CellId],
    rng: &mut StdRng,
    output: &mut [CellId],
) -> Result<(), PglpError> {
    for pos in 0..input.len() {
        let s = input[pos];
        match memo.resolve(mech, index, eps, s)? {
            Some(sampler) => output[pos] = sampler.draw(rng),
            // Unsupported discovered before any randomness was consumed:
            // hand the whole chunk to the mechanism's own batch path.
            None if pos == 0 => return mech.perturb_batch_into(index, eps, input, rng, output),
            // Cell-dependent support (no in-tree mechanism does this):
            // finish the chunk per report.
            None => output[pos] = mech.perturb(index.policy(), eps, s, rng)?,
        }
    }
    Ok(())
}

/// The SplitMix64 finaliser: a bijective avalanche mix, shared by the
/// chunk-stream derivation here and the server's shard routing so the two
/// never drift apart.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream of chunk `chunk` under `seed`: a SplitMix64-style
/// finaliser over the pair, so nearby chunk indices (and nearby seeds) get
/// unrelated streams.
pub fn chunk_rng(seed: u64, chunk: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::{GraphExponential, UniformComponent};
    use crate::policy::LocationPolicyGraph;
    use panda_geo::GridMap;
    use rand::Rng;

    fn workload(n: usize) -> (PolicyIndex, Vec<CellId>) {
        let grid = GridMap::new(16, 16, 100.0);
        let policy = LocationPolicyGraph::partition(grid.clone(), 4, 4);
        let mut rng = StdRng::seed_from_u64(42);
        let locs: Vec<CellId> = (0..n)
            .map(|_| CellId(rng.gen_range(0..grid.n_cells())))
            .collect();
        (PolicyIndex::new(policy), locs)
    }

    #[test]
    fn output_is_bit_identical_across_thread_counts() {
        let (index, locs) = workload(10_000);
        let reference = ParallelReleaser::with_threads(1)
            .release(&GraphExponential, &index, 1.0, &locs, 7)
            .unwrap();
        for threads in [2, 3, 4, 8, 16] {
            let out = ParallelReleaser::with_threads(threads)
                .release(&GraphExponential, &index, 1.0, &locs, 7)
                .unwrap();
            assert_eq!(out, reference, "thread count {threads} changed output");
        }
    }

    /// The PR-3 contract: the persistent-pool path must be byte-identical
    /// to the PR-2 scoped-spawn reference for every lane count — including
    /// the single-lane inline fast path and batches at/below one chunk.
    #[test]
    fn pooled_release_matches_scoped_reference() {
        for n in [100, DEFAULT_CHUNK_SIZE, 10_000] {
            let (index, locs) = workload(n);
            for threads in [1, 2, 4, 16] {
                let r = ParallelReleaser::with_threads(threads);
                let scoped = r
                    .release_scoped(&GraphExponential, &index, 1.0, &locs, 7)
                    .unwrap();
                let pooled = r.release(&GraphExponential, &index, 1.0, &locs, 7).unwrap();
                assert_eq!(
                    pooled, scoped,
                    "pooled != scoped at batch {n}, {threads} threads"
                );
            }
        }
    }

    /// Output must not depend on the size of the pool running the lanes.
    #[test]
    fn output_is_pool_size_invariant() {
        let (index, locs) = workload(20_000);
        let r = ParallelReleaser::with_threads(4);
        let reference = r
            .release_scoped(&GraphExponential, &index, 1.0, &locs, 3)
            .unwrap();
        for workers in [1, 2, 8] {
            let pool = ReleasePool::new(workers);
            let out = r
                .release_on(&pool, &GraphExponential, &index, 1.0, &locs, 3)
                .unwrap();
            assert_eq!(out, reference, "pool size {workers} changed output");
        }
    }

    #[test]
    fn seed_and_chunk_size_are_part_of_the_stream() {
        let (index, locs) = workload(5_000);
        let r = ParallelReleaser::with_threads(4);
        let a = r.release(&UniformComponent, &index, 1.0, &locs, 1).unwrap();
        let b = r.release(&UniformComponent, &index, 1.0, &locs, 2).unwrap();
        assert_ne!(a, b, "different seeds must differ");
        let c = r
            .clone()
            .with_chunk_size(512)
            .release(&UniformComponent, &index, 1.0, &locs, 1)
            .unwrap();
        assert_ne!(a, c, "chunk size is documented as part of the stream");
    }

    #[test]
    fn matches_sequential_perturb_batch_distribution() {
        // Not bit-equal to a single-rng run (streams differ), but each
        // output must stay in its component and the empirical distribution
        // must match the single-threaded batch path.
        let (index, _) = workload(0);
        let s = CellId(0);
        let locs = vec![s; 40_000];
        let par = ParallelReleaser::with_threads(4)
            .release(&GraphExponential, &index, 1.0, &locs, 11)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let seq = GraphExponential
            .perturb_batch(&index, 1.0, &locs, &mut rng)
            .unwrap();
        let census = |out: &[CellId]| {
            let mut m = std::collections::HashMap::new();
            for &z in out {
                *m.entry(z).or_insert(0usize) += 1;
            }
            m
        };
        let (cp, cs) = (census(&par), census(&seq));
        for (cell, &n_par) in &cp {
            assert!(index.policy().same_component(s, *cell));
            let n_seq = *cs.get(cell).unwrap_or(&0);
            let (fp, fs) = (
                n_par as f64 / locs.len() as f64,
                n_seq as f64 / locs.len() as f64,
            );
            assert!((fp - fs).abs() < 0.015, "cell {cell}: {fp} vs {fs}");
        }
    }

    #[test]
    fn empty_batch_and_error_propagation() {
        let (index, _) = workload(0);
        let r = ParallelReleaser::with_threads(4);
        assert_eq!(
            r.release(&GraphExponential, &index, 1.0, &[], 3).unwrap(),
            Vec::new()
        );
        // Invalid eps fails in every chunk; the error must surface.
        let locs = vec![CellId(0); 100];
        assert!(matches!(
            r.release(&GraphExponential, &index, 0.0, &locs, 3),
            Err(PglpError::InvalidEpsilon(_))
        ));
        // An out-of-domain cell in a late chunk also surfaces — from the
        // pooled and the scoped path alike.
        let mut locs = vec![CellId(0); 9000];
        locs[8999] = CellId(u32::MAX);
        assert!(matches!(
            r.release(&GraphExponential, &index, 1.0, &locs, 3),
            Err(PglpError::LocationOutOfDomain(_))
        ));
        assert!(matches!(
            r.release_scoped(&GraphExponential, &index, 1.0, &locs, 3),
            Err(PglpError::LocationOutOfDomain(_))
        ));
    }

    /// The lane memo: a release touches the shared distribution cache at
    /// most once per distinct cell per lane, no matter how many chunks (or
    /// reports) the lane covers.
    #[test]
    fn release_touches_cache_once_per_distinct_cell_per_lane() {
        let grid = GridMap::new(16, 16, 100.0);
        let policy = LocationPolicyGraph::partition(grid, 4, 4);
        let index = PolicyIndex::new(policy);
        let distinct = 2usize;
        // 40k reports over 2 distinct cells: 10 chunks on 4 lanes.
        let locs: Vec<CellId> = (0..40_000).map(|i| CellId(i % distinct as u32)).collect();
        let releaser = ParallelReleaser::with_threads(4);
        let n_chunks = locs.len().div_ceil(releaser.chunk_size());
        let n_lanes = releaser.n_threads().min(n_chunks);
        let touches0 = index.distribution_cache_touches();
        releaser
            .release(&GraphExponential, &index, 1.0, &locs, 9)
            .unwrap();
        let touches = index.distribution_cache_touches() - touches0;
        let bound = (n_lanes * distinct) as u64;
        assert!(
            touches <= bound,
            "one release: {touches} cache touches; bound is lanes({n_lanes}) × \
             distinct({distinct}) = {bound}"
        );
        assert!(touches >= distinct as u64, "every distinct cell resolves");
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let (index, locs) = workload(10);
        let out = ParallelReleaser::with_threads(64)
            .release(&GraphExponential, &index, 1.0, &locs, 5)
            .unwrap();
        assert_eq!(out.len(), locs.len());
    }
}
