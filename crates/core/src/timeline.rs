//! Location release **over time**: composition, feasibility and repair in
//! one engine.
//!
//! The demo releases one location per epoch for two weeks (§3.2); the
//! companion technical report treats the hard part — *temporal
//! correlations*. An adversary who knows the user's movement constraints
//! (at most `reach` cells per epoch) can intersect each epoch's policy
//! promise with the set of locations reachable from the previous release's
//! plausible set. [`TimelineReleaser`] makes that interaction explicit and
//! safe:
//!
//! 1. each epoch, a [`crate::budget::BudgetAllocator`]
//!    chooses ε from the remaining lifetime budget;
//! 2. the *feasible set* is advanced: the k-hop Chebyshev neighbourhood of
//!    the previous epoch's feasible set (the adversary's knowledge);
//! 3. the policy for the epoch is repaired against the feasible set —
//!    either restricted (honest weakening) or expanded (conservative
//!    strengthening, [`RepairStrategy`]);
//! 4. the mechanism releases under the repaired policy, and the ledger is
//!    charged.
//!
//! The result records everything an auditor needs: per-epoch ε, the
//! repaired policy names, dropped-edge counts and the released cells.

use crate::budget::{BudgetAllocator, BudgetLedger};
use crate::error::PglpError;
use crate::mech::Mechanism;
use crate::policy::LocationPolicyGraph;
use crate::repair;
use panda_geo::{CellId, GridMap};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// How to reconcile a policy with the feasible set each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// Keep only edges inside the feasible set (drops unfulfillable
    /// promises, releases stay sharp).
    Restrict,
    /// Expand the released support to the 1-hop policy closure of the
    /// feasible set (keeps all promises incident to feasible cells).
    Expand,
    /// No repair: trust the policy as-is (the baseline that ignores
    /// temporal correlation — included for the ablation).
    None,
}

/// One epoch's release record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRelease {
    /// Epoch index.
    pub epoch: u32,
    /// ε charged this epoch (0 when nothing was released *or* the release
    /// was a free exact disclosure of an isolated cell).
    pub eps: f64,
    /// Released cell, when the budget allowed a release.
    pub released: Option<CellId>,
    /// Size of the feasible set the adversary could assume.
    pub feasible_size: usize,
    /// Edges dropped by repair this epoch.
    pub dropped_edges: usize,
}

/// Full output of a timeline release.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineResult {
    /// Per-epoch records, one per input location.
    pub releases: Vec<EpochRelease>,
    /// Total ε spent (sequential composition).
    pub total_eps: f64,
}

impl TimelineResult {
    /// The released trajectory with `None` for skipped epochs.
    pub fn released_cells(&self) -> Vec<Option<CellId>> {
        self.releases.iter().map(|r| r.released).collect()
    }

    /// Number of epochs actually released.
    pub fn n_released(&self) -> usize {
        self.releases
            .iter()
            .filter(|r| r.released.is_some())
            .count()
    }
}

/// Releases a trajectory under a policy with budget allocation and
/// temporal-correlation repair.
pub struct TimelineReleaser<'a> {
    grid: &'a GridMap,
    policy: &'a LocationPolicyGraph,
    mechanism: &'a dyn Mechanism,
    allocator: &'a dyn BudgetAllocator,
    /// Chebyshev reach per epoch (adversary's movement model).
    pub reach: u32,
    /// Repair strategy.
    pub strategy: RepairStrategy,
}

impl<'a> TimelineReleaser<'a> {
    /// Creates a releaser. `reach` is the adversary-known maximum movement
    /// (in cells per epoch, Chebyshev).
    pub fn new(
        policy: &'a LocationPolicyGraph,
        mechanism: &'a dyn Mechanism,
        allocator: &'a dyn BudgetAllocator,
        reach: u32,
        strategy: RepairStrategy,
    ) -> Self {
        TimelineReleaser {
            grid: policy.grid(),
            policy,
            mechanism,
            allocator,
            reach,
            strategy,
        }
    }

    /// Advances a feasible set by one epoch of movement.
    fn advance_feasible(&self, feasible: &[CellId]) -> Vec<CellId> {
        let mut out = std::collections::BTreeSet::new();
        for &c in feasible {
            for n in self.grid.chebyshev_ball(c, self.reach) {
                out.insert(n);
            }
        }
        out.into_iter().collect()
    }

    /// Releases `trajectory` against `ledger`, consuming budget.
    ///
    /// The initial feasible set is the whole grid (no prior knowledge).
    /// Epochs whose allocation is zero or unaffordable are skipped (no
    /// release, no charge) — the feasible set still advances, since time
    /// passes for the adversary too.
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors ([`PglpError`]); budget refusals are
    /// handled by skipping, not erroring.
    pub fn release(
        &self,
        trajectory: &[CellId],
        ledger: &mut BudgetLedger,
        rng: &mut dyn RngCore,
    ) -> Result<TimelineResult, PglpError> {
        let mut feasible: Vec<CellId> = self.grid.cells().collect();
        let mut releases = Vec::with_capacity(trajectory.len());
        let horizon = trajectory.len() as u32;
        for (t, &true_cell) in trajectory.iter().enumerate() {
            let t = t as u32;
            // 1. Allocation.
            let eps =
                self.allocator
                    .allocate(t as u64, ledger.remaining(), horizon - t, self.policy);
            // 2-3. Repair policy against the feasible set.
            let (epoch_policy, dropped, support): (LocationPolicyGraph, usize, Vec<CellId>) =
                match self.strategy {
                    RepairStrategy::None => (self.policy.clone(), 0, feasible.clone()),
                    RepairStrategy::Restrict => {
                        let (restricted, summary) = repair::restrict(self.policy, &feasible);
                        (restricted, summary.dropped_edges, feasible.clone())
                    }
                    RepairStrategy::Expand => {
                        let (expanded, _) = repair::repair_by_expansion(self.policy, &feasible);
                        let (restricted, summary) = repair::restrict(self.policy, &expanded);
                        (restricted, summary.dropped_edges, expanded)
                    }
                };
            // 4. Release. Isolated cells release exactly and are free
            // (Lemma 2.1's unconstrained case) — only protected releases
            // charge the ledger.
            let mut charged = 0.0;
            let released = if eps > 0.0 && ledger.can_afford(eps) {
                if !epoch_policy.is_isolated_cell(true_cell) {
                    ledger.charge(t as u64, epoch_policy.name(), eps)?;
                    charged = eps;
                }
                Some(self.mechanism.perturb(&epoch_policy, eps, true_cell, rng)?)
            } else {
                None
            };
            releases.push(EpochRelease {
                epoch: t,
                eps: charged,
                released,
                feasible_size: support.len(),
                dropped_edges: dropped,
            });
            // Advance the adversary's feasible set: from what the release
            // plausibly allows (the released cell's policy component ∪
            // support, to stay conservative), movement expands it.
            let anchor: Vec<CellId> = match released {
                Some(z) => {
                    let comp = epoch_policy.component_cells(z);
                    comp.into_iter()
                        .filter(|c| support.contains(c))
                        .collect::<Vec<_>>()
                }
                None => support,
            };
            let anchor = if anchor.is_empty() {
                vec![true_cell]
            } else {
                anchor
            };
            feasible = self.advance_feasible(&anchor);
        }
        let total_eps = releases.iter().map(|r| r.eps).sum();
        Ok(TimelineResult {
            releases,
            total_eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{EvenSplit, FixedPerEpoch};
    use crate::mech::GraphExponential;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(6, 6, 100.0)
    }

    fn walk(grid: &GridMap, len: usize) -> Vec<CellId> {
        // A serpentine walk with unit Chebyshev steps (stays feasible for
        // a reach-1 adversary).
        (0..len as u32)
            .map(|t| {
                let row = (t / grid.width()) % grid.height();
                let col_raw = t % grid.width();
                let col = if row.is_multiple_of(2) {
                    col_raw
                } else {
                    grid.width() - 1 - col_raw
                };
                grid.cell(col, row)
            })
            .collect()
    }

    #[test]
    fn releases_whole_trajectory_within_budget() {
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let alloc = EvenSplit;
        let releaser = TimelineReleaser::new(
            &policy,
            &GraphExponential,
            &alloc,
            1,
            RepairStrategy::Restrict,
        );
        let mut ledger = BudgetLedger::new(5.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let traj = walk(&g, 10);
        let result = releaser.release(&traj, &mut ledger, &mut rng).unwrap();
        assert_eq!(result.releases.len(), 10);
        assert_eq!(result.n_released(), 10);
        assert!(result.total_eps <= 5.0 + 1e-9);
        assert!((ledger.spent() - result.total_eps).abs() < 1e-9);
    }

    #[test]
    fn fixed_allocator_skips_when_dry() {
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 3, 3);
        let alloc = FixedPerEpoch { eps: 1.0 };
        let releaser = TimelineReleaser::new(
            &policy,
            &GraphExponential,
            &alloc,
            1,
            RepairStrategy::Restrict,
        );
        let mut ledger = BudgetLedger::new(3.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let traj = walk(&g, 8);
        let result = releaser.release(&traj, &mut ledger, &mut rng).unwrap();
        assert_eq!(result.n_released(), 3);
        // Skipped epochs recorded with eps 0.
        assert!(result.releases[5].released.is_none());
        assert_eq!(result.releases[5].eps, 0.0);
    }

    #[test]
    fn feasible_set_shrinks_with_reach() {
        let g = grid();
        let policy = LocationPolicyGraph::g1_geo_indistinguishability(g.clone());
        let alloc = FixedPerEpoch { eps: 1.0 };
        let run = |reach: u32| {
            let releaser = TimelineReleaser::new(
                &policy,
                &GraphExponential,
                &alloc,
                reach,
                RepairStrategy::Restrict,
            );
            let mut ledger = BudgetLedger::new(100.0);
            let mut rng = SmallRng::seed_from_u64(3);
            let traj = vec![g.cell(3, 3); 6];
            releaser.release(&traj, &mut ledger, &mut rng).unwrap()
        };
        let tight = run(1);
        let loose = run(3);
        // After the first epoch the tight adversary pins the user harder.
        assert!(
            tight.releases[2].feasible_size <= loose.releases[2].feasible_size,
            "tight {} vs loose {}",
            tight.releases[2].feasible_size,
            loose.releases[2].feasible_size
        );
        // The first epoch has no constraint: whole grid.
        assert_eq!(tight.releases[0].feasible_size, 36);
    }

    #[test]
    fn restrict_drops_edges_but_none_keeps_all() {
        // A partition policy has small components, so after the first
        // release the adversary's feasible set shrinks to a neighbourhood
        // of one block and restriction must drop the other blocks' edges.
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let alloc = FixedPerEpoch { eps: 1.0 };
        let run = |strategy: RepairStrategy| {
            let releaser = TimelineReleaser::new(&policy, &GraphExponential, &alloc, 1, strategy);
            let mut ledger = BudgetLedger::new(100.0);
            let mut rng = SmallRng::seed_from_u64(4);
            let traj = vec![g.cell(0, 0); 5];
            releaser.release(&traj, &mut ledger, &mut rng).unwrap()
        };
        let restricted = run(RepairStrategy::Restrict);
        let unrepaired = run(RepairStrategy::None);
        assert!(
            restricted.releases[2].dropped_edges > 0,
            "releases: {:?}",
            restricted.releases
        );
        // Feasible set shrank below the full grid after the first epoch.
        assert!(restricted.releases[2].feasible_size < 36);
        assert!(unrepaired.releases.iter().all(|r| r.dropped_edges == 0));
    }

    #[test]
    fn expand_strategy_protects_original_promises() {
        let g = grid();
        let policy = LocationPolicyGraph::grid4(g.clone());
        let alloc = FixedPerEpoch { eps: 1.0 };
        let releaser = TimelineReleaser::new(
            &policy,
            &GraphExponential,
            &alloc,
            1,
            RepairStrategy::Expand,
        );
        let mut ledger = BudgetLedger::new(100.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let traj = vec![g.cell(2, 2); 4];
        let result = releaser.release(&traj, &mut ledger, &mut rng).unwrap();
        // Expansion keeps the feasible support at least as large as the
        // plain Chebyshev ball.
        for r in &result.releases[1..] {
            assert!(r.feasible_size >= 9);
        }
    }

    #[test]
    fn released_cells_stay_in_repaired_support() {
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let alloc = FixedPerEpoch { eps: 0.5 };
        let releaser = TimelineReleaser::new(
            &policy,
            &GraphExponential,
            &alloc,
            1,
            RepairStrategy::Restrict,
        );
        let mut ledger = BudgetLedger::new(50.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let traj = walk(&g, 12);
        let result = releaser.release(&traj, &mut ledger, &mut rng).unwrap();
        for (r, &truth) in result.releases.iter().zip(traj.iter()) {
            if let Some(z) = r.released {
                // Released cell shares the (base) policy component or is the
                // truth itself (isolated after restriction).
                assert!(policy.same_component(truth, z) || z == truth);
            }
        }
    }
}
