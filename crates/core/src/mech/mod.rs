//! Mechanisms satisfying {ε, G}-location privacy.
//!
//! The demo paper (§1, §3.1) relies on the mechanisms of the companion
//! technical report: a Laplace-style mechanism and the Planar Isotropic
//! Mechanism, both *adapted to a policy graph*. This module implements:
//!
//! * [`GraphExponential`] — the reference PGLP mechanism. Releases cell `z`
//!   with probability ∝ `exp(−ε·d_G(s,z)/2)` over the component of the true
//!   location `s`. Its {ε,G} guarantee is exact and auditable cell-by-cell.
//! * [`GraphCalibratedLaplace`] — continuous planar Laplace noise calibrated
//!   to the policy component's edge geometry, snapped back onto the
//!   component (the report's Laplace adaptation).
//! * [`PlanarIsotropic`] — the PIM of Xiao & Xiong (CCS'15) over the
//!   component's sensitivity hull: K-norm noise, optional isotropic
//!   transform, snapped onto the component.
//! * [`PlanarLaplace`] — the Geo-Indistinguishability baseline (ignores the
//!   policy graph entirely; included for the paper's comparisons).
//! * [`IdentityMechanism`] / [`UniformComponent`] — the two utility/privacy
//!   extremes, used as experiment reference points.
//!
//! All mechanisms release *grid cells*; isolated policy nodes are released
//! exactly (Lemma 2.1's unconstrained case).

mod euclidean_exponential;
mod graph_exponential;
mod graph_laplace;
mod noise;
pub(crate) mod pim;
mod planar_laplace;
mod sampler;

pub use euclidean_exponential::EuclideanExponential;
pub use graph_exponential::GraphExponential;
pub use graph_laplace::GraphCalibratedLaplace;
pub use noise::{gamma_int, laplace_1d, planar_laplace_noise};
pub use pim::PlanarIsotropic;
pub use planar_laplace::PlanarLaplace;
pub use sampler::{snap_to_cells, CellSampler, SamplerMemo};

use crate::error::{check_epsilon, PglpError};
use crate::index::{PolicyIndex, SamplingTable};
use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use rand::Rng;
use rand::RngCore;
use std::sync::Arc;

/// A randomized location-release mechanism `A : S → S` (Def. 2.4).
///
/// Implementations must guarantee {ε,G}-location privacy for every policy
/// graph `G`: for each policy edge `(s, s′)` and every output `z`,
/// `Pr[A(s) = z] ≤ e^ε · Pr[A(s′) = z]`.
///
/// The trait is object-safe (`&mut dyn RngCore`) so experiment harnesses can
/// sweep mechanisms generically.
pub trait Mechanism {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Releases a perturbed location for true location `true_loc`.
    ///
    /// # Errors
    ///
    /// [`PglpError::InvalidEpsilon`] for non-positive ε;
    /// [`PglpError::LocationOutOfDomain`] when `true_loc` is foreign to the
    /// policy's grid.
    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError>;

    /// Exact output distribution `Pr[A(s) = ·]` as `(cell, probability)`
    /// pairs over the support, when the mechanism can compute it in closed
    /// form. Used by the privacy auditor; `None` means "audit by sampling".
    fn output_distribution(
        &self,
        _policy: &LocationPolicyGraph,
        _eps: f64,
        _true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        None
    }

    /// Releases perturbed locations for a batch of true locations (e.g. a
    /// whole trajectory window), amortising all policy-graph work through
    /// the [`PolicyIndex`].
    ///
    /// The default allocates the output and delegates to
    /// [`Mechanism::perturb_batch_into`] — override *that* method, not this
    /// one, so both the allocating and the in-place path share one sampling
    /// sequence.
    ///
    /// Outputs are positionally aligned with `locs`. Distributionally
    /// identical to calling [`Mechanism::perturb`] in a loop.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mechanism::perturb`]; the first failing
    /// location aborts the batch.
    fn perturb_batch(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<CellId>, PglpError> {
        let mut out = vec![CellId(0); locs.len()];
        self.perturb_batch_into(index, eps, locs, rng, &mut out)?;
        Ok(out)
    }

    /// Like [`Mechanism::perturb_batch`], but writes the released cells into
    /// a caller-provided slice — the hot path of the release engine, which
    /// perturbs each chunk straight into its slot of the output batch with
    /// no intermediate allocation.
    ///
    /// Consumes exactly the same RNG sequence as [`Mechanism::perturb_batch`]
    /// (which is implemented on top of this method), so for a fixed `rng`
    /// state the two paths are byte-identical. On error `out` may be
    /// partially written; positions at and after the failing location are
    /// unspecified.
    ///
    /// The default resolves one [`CellSampler`] per **distinct** cell
    /// (batch-local [`SamplerMemo`] — one shared-cache touch per distinct
    /// `(ε, cell)` pair) and draws per report: O(1)–O(log k) per report
    /// after each cell's first occurrence. Mechanisms customise the batch
    /// path by overriding [`Mechanism::sampler`], not this method.
    /// Mechanisms without sampler support fall back to
    /// [`Mechanism::perturb`] per location, preserving their historical RNG
    /// streams.
    ///
    /// # Panics
    ///
    /// When `out.len() != locs.len()` — a caller bug, not a data error.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mechanism::perturb`]; the first failing
    /// location aborts the batch.
    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        check_out_len(locs, out);
        check_epsilon(eps)?;
        // Streaming fast path: a single-report batch (the per-report
        // reference path) resolves without the memo allocation.
        if let [s] = *locs {
            match self.sampler(index, eps, s) {
                Ok(sampler) => out[0] = sampler.draw(rng),
                Err(PglpError::SamplerUnsupported(_)) => {
                    out[0] = self.perturb(index.policy(), eps, s, rng)?;
                }
                Err(e) => return Err(e),
            }
            return Ok(());
        }
        if !self.prefers_sampler_memo() {
            // Resolution is declared trivially cheap: skip the memo's
            // per-report map lookup (same draw sequence either way).
            for (slot, &s) in out.iter_mut().zip(locs) {
                *slot = self.perturb(index.policy(), eps, s, rng)?;
            }
            return Ok(());
        }
        let mut memo = SamplerMemo::new();
        for (slot, &s) in out.iter_mut().zip(locs) {
            match memo.resolve(self, index, eps, s)? {
                Some(sampler) => *slot = sampler.draw(rng),
                // No sampler support: the pre-handle per-report path, same
                // RNG stream as the historical default.
                None => *slot = self.perturb(index.policy(), eps, s, rng)?,
            }
        }
        Ok(())
    }

    /// Whether the release engine's lanes should route this mechanism's
    /// reports through a per-lane memoised [`CellSampler`] (the default).
    ///
    /// The memo trades one map lookup per report for skipping all shared
    /// cache traffic — a clear win whenever resolution touches a lock or
    /// builds state. Mechanisms whose resolution is trivially cheap *and*
    /// whose [`Mechanism::perturb_batch_into`] override is tighter than a
    /// per-report map lookup (identity's memcpy, uniform's bare
    /// `gen_range` loop) return `false`; lanes then hand whole chunks to
    /// the batch override directly. Purely a cost hint: both routes
    /// consume identical RNG sequences.
    fn prefers_sampler_memo(&self) -> bool {
        true
    }

    /// Resolves a [`CellSampler`] — a cheaply-clonable draw handle carrying
    /// everything a release for `(ε, cell)` needs (compiled sampling table
    /// `Arc`, calibration scale plus component slice, prepared PIM hull) —
    /// so callers touch the shared [`PolicyIndex`] caches **once per
    /// distinct cell** and then draw lock-free per report.
    ///
    /// [`CellSampler::draw`] consumes exactly the RNG sequence of
    /// [`Mechanism::perturb_batch_into`] on a single-report batch: the
    /// streaming engine relies on this to keep per-lane memoised release
    /// byte-identical to per-report release.
    ///
    /// The default compiles the mechanism's closed-form
    /// [`Mechanism::output_distribution`] into an **uncached** table (never
    /// keyed into the shared cache, where a non-unique [`Mechanism::name`]
    /// could collide). Mechanisms with per-policy state override this to
    /// serve handles from the index's caches.
    ///
    /// **Stream note for external implementors:** because the batch and
    /// streaming engines release through this handle, a mechanism that
    /// provides `output_distribution` but overrides neither this method nor
    /// [`Mechanism::perturb_batch_into`] gets table-sampled batch draws —
    /// distributionally identical to, but a *different RNG sequence* than,
    /// calling [`Mechanism::perturb`] in a loop (and the table is rebuilt
    /// per resolution). Override `sampler` to control both the stream and
    /// the cost; mechanisms with no closed form keep their historical
    /// per-`perturb` streams.
    ///
    /// # Errors
    ///
    /// [`PglpError::InvalidEpsilon`] / [`PglpError::LocationOutOfDomain`]
    /// on invalid inputs; [`PglpError::SamplerUnsupported`] when the
    /// mechanism has no closed form and no override (callers should then
    /// release per report via [`Mechanism::perturb`]).
    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        match self.output_distribution(index.policy(), eps, cell) {
            Some(dist) if !dist.is_empty() => Ok(CellSampler::table(Arc::new(
                SamplingTable::from_weights(dist),
            ))),
            _ => Err(PglpError::SamplerUnsupported(self.name())),
        }
    }
}

/// Shared length check for [`Mechanism::perturb_batch_into`] overrides.
pub(crate) fn check_out_len(locs: &[CellId], out: &[CellId]) {
    assert_eq!(
        locs.len(),
        out.len(),
        "perturb_batch_into: output slice length must match input"
    );
}

/// Shared input validation for all mechanisms.
pub(crate) fn validate(
    policy: &LocationPolicyGraph,
    eps: f64,
    true_loc: CellId,
) -> Result<(), PglpError> {
    check_epsilon(eps)?;
    policy.check_cell(true_loc)
}

/// Releases the true location unchanged. **No privacy** — the lower bound
/// for utility experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMechanism;

impl Mechanism for IdentityMechanism {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        _rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        Ok(true_loc)
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        validate(policy, eps, true_loc).ok()?;
        Some(vec![(true_loc, 1.0)])
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        // Exact release; like `perturb`, draws consume no randomness.
        Ok(CellSampler::exact(cell))
    }

    /// Resolution is free here (see [`Mechanism::prefers_sampler_memo`]).
    fn prefers_sampler_memo(&self) -> bool {
        false
    }

    /// Resolution is free here, so the memoised default would only add a
    /// per-report map lookup to what is a bounds check plus a memcpy.
    /// Stream-equivalent to the default: no randomness is consumed either
    /// way.
    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        _rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        check_out_len(locs, out);
        check_epsilon(eps)?;
        for &s in locs {
            index.policy().check_cell(s)?;
        }
        out.copy_from_slice(locs);
        Ok(())
    }
}

/// Releases a uniform cell from the component of the true location
/// (isolated cells are released exactly).
///
/// Satisfies {ε,G}-location privacy for **every** ε: 1-neighbours share a
/// component, hence share this uniform distribution exactly. Maximal privacy
/// within the policy's support, worst utility — the other experiment
/// extreme.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformComponent;

impl Mechanism for UniformComponent {
    fn name(&self) -> &'static str {
        "uniform-component"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let cells = policy.component_slice(true_loc);
        // gen_range uses rejection sampling: uniform with no modulo bias
        // (`next_u64() % len` would overweight low indices).
        Ok(cells[rng.gen_range(0..cells.len())])
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        validate(policy, eps, true_loc).ok()?;
        let cells = policy.component_cells(true_loc);
        let p = 1.0 / cells.len() as f64;
        Some(cells.into_iter().map(|c| (c, p)).collect())
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        // Same rejection-sampled `gen_range` draw as `perturb`, from the
        // interned component slice.
        Ok(CellSampler::uniform(index.component_slice(cell)))
    }

    /// Resolution is a lock-free interned-slice lookup (see
    /// [`Mechanism::prefers_sampler_memo`]).
    fn prefers_sampler_memo(&self) -> bool {
        false
    }

    /// Resolution is a lock-free interned-slice lookup, so the memoised
    /// default would only add a per-report map lookup to a draw that is a
    /// single `gen_range`. Byte-identical to the default: the per-report
    /// draw sequence is the same `gen_range` either way.
    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        check_out_len(locs, out);
        check_epsilon(eps)?;
        let policy = index.policy();
        for (slot, &s) in out.iter_mut().zip(locs) {
            policy.check_cell(s)?;
            let cells = index.component_slice(s);
            *slot = cells[rng.gen_range(0..cells.len())];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> LocationPolicyGraph {
        LocationPolicyGraph::partition(GridMap::new(4, 4, 50.0), 2, 2)
    }

    #[test]
    fn identity_returns_input() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = IdentityMechanism
            .perturb(&p, 1.0, CellId(5), &mut rng)
            .unwrap();
        assert_eq!(out, CellId(5));
        let dist = IdentityMechanism
            .output_distribution(&p, 1.0, CellId(5))
            .unwrap();
        assert_eq!(dist, vec![(CellId(5), 1.0)]);
    }

    #[test]
    fn uniform_component_stays_in_component() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let out = UniformComponent
                .perturb(&p, 1.0, CellId(0), &mut rng)
                .unwrap();
            assert!(p.same_component(CellId(0), out));
        }
    }

    #[test]
    fn uniform_component_distribution_sums_to_one() {
        let p = policy();
        let dist = UniformComponent
            .output_distribution(&p, 1.0, CellId(0))
            .unwrap();
        assert_eq!(dist.len(), 4);
        let total: f64 = dist.iter().map(|&(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(matches!(
            IdentityMechanism.perturb(&p, 0.0, CellId(0), &mut rng),
            Err(PglpError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            UniformComponent.perturb(&p, 1.0, CellId(99), &mut rng),
            Err(PglpError::LocationOutOfDomain(_))
        ));
    }

    #[test]
    fn mechanisms_are_object_safe() {
        let mechs: Vec<Box<dyn Mechanism>> =
            vec![Box::new(IdentityMechanism), Box::new(UniformComponent)];
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(4);
        for m in &mechs {
            assert!(m.perturb(&p, 0.5, CellId(3), &mut rng).is_ok());
            assert!(!m.name().is_empty());
        }
    }
}
