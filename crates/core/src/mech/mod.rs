//! Mechanisms satisfying {ε, G}-location privacy.
//!
//! The demo paper (§1, §3.1) relies on the mechanisms of the companion
//! technical report: a Laplace-style mechanism and the Planar Isotropic
//! Mechanism, both *adapted to a policy graph*. This module implements:
//!
//! * [`GraphExponential`] — the reference PGLP mechanism. Releases cell `z`
//!   with probability ∝ `exp(−ε·d_G(s,z)/2)` over the component of the true
//!   location `s`. Its {ε,G} guarantee is exact and auditable cell-by-cell.
//! * [`GraphCalibratedLaplace`] — continuous planar Laplace noise calibrated
//!   to the policy component's edge geometry, snapped back onto the
//!   component (the report's Laplace adaptation).
//! * [`PlanarIsotropic`] — the PIM of Xiao & Xiong (CCS'15) over the
//!   component's sensitivity hull: K-norm noise, optional isotropic
//!   transform, snapped onto the component.
//! * [`PlanarLaplace`] — the Geo-Indistinguishability baseline (ignores the
//!   policy graph entirely; included for the paper's comparisons).
//! * [`IdentityMechanism`] / [`UniformComponent`] — the two utility/privacy
//!   extremes, used as experiment reference points.
//!
//! All mechanisms release *grid cells*; isolated policy nodes are released
//! exactly (Lemma 2.1's unconstrained case).

mod euclidean_exponential;
mod graph_exponential;
mod graph_laplace;
mod noise;
pub(crate) mod pim;
mod planar_laplace;

pub use euclidean_exponential::EuclideanExponential;
pub use graph_exponential::GraphExponential;
pub use graph_laplace::GraphCalibratedLaplace;
pub use noise::{gamma_int, laplace_1d, planar_laplace_noise};
pub use pim::PlanarIsotropic;
pub use planar_laplace::PlanarLaplace;

use crate::error::{check_epsilon, PglpError};
use crate::index::PolicyIndex;
use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use rand::Rng;
use rand::RngCore;

/// A randomized location-release mechanism `A : S → S` (Def. 2.4).
///
/// Implementations must guarantee {ε,G}-location privacy for every policy
/// graph `G`: for each policy edge `(s, s′)` and every output `z`,
/// `Pr[A(s) = z] ≤ e^ε · Pr[A(s′) = z]`.
///
/// The trait is object-safe (`&mut dyn RngCore`) so experiment harnesses can
/// sweep mechanisms generically.
pub trait Mechanism {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Releases a perturbed location for true location `true_loc`.
    ///
    /// # Errors
    ///
    /// [`PglpError::InvalidEpsilon`] for non-positive ε;
    /// [`PglpError::LocationOutOfDomain`] when `true_loc` is foreign to the
    /// policy's grid.
    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError>;

    /// Exact output distribution `Pr[A(s) = ·]` as `(cell, probability)`
    /// pairs over the support, when the mechanism can compute it in closed
    /// form. Used by the privacy auditor; `None` means "audit by sampling".
    fn output_distribution(
        &self,
        _policy: &LocationPolicyGraph,
        _eps: f64,
        _true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        None
    }

    /// Releases perturbed locations for a batch of true locations (e.g. a
    /// whole trajectory window), amortising all policy-graph work through
    /// the [`PolicyIndex`].
    ///
    /// The default allocates the output and delegates to
    /// [`Mechanism::perturb_batch_into`] — override *that* method, not this
    /// one, so both the allocating and the in-place path share one sampling
    /// sequence.
    ///
    /// Outputs are positionally aligned with `locs`. Distributionally
    /// identical to calling [`Mechanism::perturb`] in a loop.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mechanism::perturb`]; the first failing
    /// location aborts the batch.
    fn perturb_batch(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<CellId>, PglpError> {
        let mut out = vec![CellId(0); locs.len()];
        self.perturb_batch_into(index, eps, locs, rng, &mut out)?;
        Ok(out)
    }

    /// Like [`Mechanism::perturb_batch`], but writes the released cells into
    /// a caller-provided slice — the hot path of the release engine, which
    /// perturbs each chunk straight into its slot of the output batch with
    /// no intermediate allocation.
    ///
    /// Consumes exactly the same RNG sequence as [`Mechanism::perturb_batch`]
    /// (which is implemented on top of this method), so for a fixed `rng`
    /// state the two paths are byte-identical. On error `out` may be
    /// partially written; positions at and after the failing location are
    /// unspecified.
    ///
    /// The default delegates to [`Mechanism::perturb`] per location —
    /// already BFS-free thanks to the policy's precomputed distance tables.
    /// Closed-form mechanisms override this to sample from cached sampling
    /// tables: O(1)–O(log k) per report after the first occurrence of each
    /// `(ε, cell)` pair.
    ///
    /// # Panics
    ///
    /// When `out.len() != locs.len()` — a caller bug, not a data error.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mechanism::perturb`]; the first failing
    /// location aborts the batch.
    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        check_out_len(locs, out);
        for (slot, &s) in out.iter_mut().zip(locs) {
            *slot = self.perturb(index.policy(), eps, s, rng)?;
        }
        Ok(())
    }
}

/// Shared length check for [`Mechanism::perturb_batch_into`] overrides.
pub(crate) fn check_out_len(locs: &[CellId], out: &[CellId]) {
    assert_eq!(
        locs.len(),
        out.len(),
        "perturb_batch_into: output slice length must match input"
    );
}

/// Shared input validation for all mechanisms.
pub(crate) fn validate(
    policy: &LocationPolicyGraph,
    eps: f64,
    true_loc: CellId,
) -> Result<(), PglpError> {
    check_epsilon(eps)?;
    policy.check_cell(true_loc)
}

/// Releases the true location unchanged. **No privacy** — the lower bound
/// for utility experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMechanism;

impl Mechanism for IdentityMechanism {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        _rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        Ok(true_loc)
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        validate(policy, eps, true_loc).ok()?;
        Some(vec![(true_loc, 1.0)])
    }

    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        _rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        check_out_len(locs, out);
        check_epsilon(eps)?;
        for &s in locs {
            index.policy().check_cell(s)?;
        }
        out.copy_from_slice(locs);
        Ok(())
    }
}

/// Releases a uniform cell from the component of the true location
/// (isolated cells are released exactly).
///
/// Satisfies {ε,G}-location privacy for **every** ε: 1-neighbours share a
/// component, hence share this uniform distribution exactly. Maximal privacy
/// within the policy's support, worst utility — the other experiment
/// extreme.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformComponent;

impl Mechanism for UniformComponent {
    fn name(&self) -> &'static str {
        "uniform-component"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let cells = policy.component_slice(true_loc);
        // gen_range uses rejection sampling: uniform with no modulo bias
        // (`next_u64() % len` would overweight low indices).
        Ok(cells[rng.gen_range(0..cells.len())])
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        validate(policy, eps, true_loc).ok()?;
        let cells = policy.component_cells(true_loc);
        let p = 1.0 / cells.len() as f64;
        Some(cells.into_iter().map(|c| (c, p)).collect())
    }

    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        check_out_len(locs, out);
        check_epsilon(eps)?;
        let policy = index.policy();
        for (slot, &s) in out.iter_mut().zip(locs) {
            policy.check_cell(s)?;
            let cells = index.component_slice(s);
            *slot = cells[rng.gen_range(0..cells.len())];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> LocationPolicyGraph {
        LocationPolicyGraph::partition(GridMap::new(4, 4, 50.0), 2, 2)
    }

    #[test]
    fn identity_returns_input() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = IdentityMechanism
            .perturb(&p, 1.0, CellId(5), &mut rng)
            .unwrap();
        assert_eq!(out, CellId(5));
        let dist = IdentityMechanism
            .output_distribution(&p, 1.0, CellId(5))
            .unwrap();
        assert_eq!(dist, vec![(CellId(5), 1.0)]);
    }

    #[test]
    fn uniform_component_stays_in_component() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let out = UniformComponent
                .perturb(&p, 1.0, CellId(0), &mut rng)
                .unwrap();
            assert!(p.same_component(CellId(0), out));
        }
    }

    #[test]
    fn uniform_component_distribution_sums_to_one() {
        let p = policy();
        let dist = UniformComponent
            .output_distribution(&p, 1.0, CellId(0))
            .unwrap();
        assert_eq!(dist.len(), 4);
        let total: f64 = dist.iter().map(|&(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(matches!(
            IdentityMechanism.perturb(&p, 0.0, CellId(0), &mut rng),
            Err(PglpError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            UniformComponent.perturb(&p, 1.0, CellId(99), &mut rng),
            Err(PglpError::LocationOutOfDomain(_))
        ));
    }

    #[test]
    fn mechanisms_are_object_safe() {
        let mechs: Vec<Box<dyn Mechanism>> =
            vec![Box::new(IdentityMechanism), Box::new(UniformComponent)];
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(4);
        for m in &mechs {
            assert!(m.perturb(&p, 0.5, CellId(3), &mut rng).is_ok());
            assert!(!m.name().is_empty());
        }
    }
}
