//! The graph-exponential mechanism — the reference PGLP mechanism.
//!
//! For true location `s` with policy component `C(s)`, release `z ∈ C(s)`
//! with probability
//!
//! ```text
//! Pr[A(s) = z] = exp(−ε·d_G(s, z)/2) / Σ_{w ∈ C(s)} exp(−ε·d_G(s, w)/2)
//! ```
//!
//! **Privacy proof sketch.** Let `(s, s′)` be a policy edge, so
//! `d_G(s, s′) = 1` and `C(s) = C(s′)`. By the triangle inequality of `d_G`,
//! `|d_G(s, z) − d_G(s′, z)| ≤ 1` for every `z`, hence the unnormalised
//! weights differ by a factor ≤ `e^{ε/2}`; the normalisers likewise differ
//! by ≤ `e^{ε/2}`. Multiplying the two bounds gives `Pr[A(s)=z] ≤
//! e^ε·Pr[A(s′)=z]` — exactly Def. 2.4. Lemma 2.1 then lifts the guarantee
//! to `ε·d_G` for arbitrary `∞`-neighbours. Isolated nodes form singleton
//! components and are released exactly, as the paper prescribes.

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::{validate, Mechanism};
use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use rand::Rng;
use rand::RngCore;

/// Graph-exponential PGLP mechanism. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphExponential;

impl GraphExponential {
    /// Unnormalised log-weights `−ε·d_G(s,z)/2` over the component of `s`,
    /// paired with the cells, sorted by cell id.
    fn log_weights(policy: &LocationPolicyGraph, eps: f64, s: CellId) -> Vec<(CellId, f64)> {
        policy
            .component_distances(s)
            .into_iter()
            .map(|(c, d)| (c, -eps * d as f64 / 2.0))
            .collect()
    }

    /// The cached sampling table for `(ε, s)` via the index's LRU.
    /// Unnormalised weights suffice for sampling; the max log-weight is 0
    /// (at `s` itself), so `exp()` is stable.
    ///
    /// Weights come from the index's *cached distance row* for `s`, so an
    /// ε schedule over one cell derives distances once and only re-runs the
    /// cheap `exp()` shaping per step — on a 50k-cell oracle-backed
    /// component that turns per-step table builds from one label join each
    /// into row-cache hits. The arithmetic is kept bit-identical to the
    /// closed-form path (`exp(−ε·d/2)` over the same integer distances), so
    /// released databases do not depend on which path built the table.
    fn table(
        &self,
        index: &PolicyIndex,
        eps: f64,
        s: CellId,
    ) -> std::sync::Arc<crate::SamplingTable> {
        index.distribution(self.name(), eps, s, |p| match index.distance_row(s) {
            Some(row) => p
                .component_slice(s)
                .iter()
                .zip(row.iter())
                .map(|(&c, &d)| (c, (-eps * f64::from(d) / 2.0).exp()))
                .collect(),
            None => Self::log_weights(p, eps, s)
                .into_iter()
                .map(|(c, lw)| (c, lw.exp()))
                .collect(),
        })
    }

    /// Exact log-probabilities `ln Pr[A(s) = ·]` over the support.
    /// Numerically stable (log-sum-exp); used by the privacy auditor so
    /// ratios can be checked in log space even when probabilities underflow.
    pub fn log_output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        s: CellId,
    ) -> Result<Vec<(CellId, f64)>, PglpError> {
        validate(policy, eps, s)?;
        let lw = Self::log_weights(policy, eps, s);
        let max = lw.iter().map(|&(_, w)| w).fold(f64::NEG_INFINITY, f64::max);
        let log_z = max + lw.iter().map(|&(_, w)| (w - max).exp()).sum::<f64>().ln();
        Ok(lw.into_iter().map(|(c, w)| (c, w - log_z)).collect())
    }
}

impl Mechanism for GraphExponential {
    fn name(&self) -> &'static str {
        "graph-exponential"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        if policy.is_isolated_cell(true_loc) {
            return Ok(true_loc);
        }
        let lw = Self::log_weights(policy, eps, true_loc);
        // Stable categorical sampling: shift by max log-weight (= 0 at s
        // itself, but kept general), accumulate, then inverse-CDF.
        let max = lw.iter().map(|&(_, w)| w).fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = lw.iter().map(|&(_, w)| (w - max).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return Ok(lw[i].0);
            }
            u -= w;
        }
        // Floating-point tail: return the last support cell.
        Ok(lw.last().expect("component is never empty").0)
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        let log_dist = self.log_output_distribution(policy, eps, true_loc).ok()?;
        Some(log_dist.into_iter().map(|(c, l)| (c, l.exp())).collect())
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<crate::mech::CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        if index.policy().is_isolated_cell(cell) {
            // Singleton component: exact release, no randomness consumed.
            return Ok(crate::mech::CellSampler::exact(cell));
        }
        // One shared-LRU touch here; every draw is then lock-free.
        Ok(crate::mech::CellSampler::table(
            self.table(index, eps, cell),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    #[test]
    fn distribution_sums_to_one() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let dist = GraphExponential
            .output_distribution(&p, 1.0, CellId(5))
            .unwrap();
        assert_eq!(dist.len(), 16);
        let total: f64 = dist.iter().map(|&(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn truth_is_the_mode() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let s = CellId(5);
        let dist = GraphExponential.output_distribution(&p, 2.0, s).unwrap();
        let (mode, _) = dist
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(mode, s);
    }

    #[test]
    fn weights_decay_exponentially_with_distance() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let s = p.grid().cell(0, 0);
        let eps = 1.5;
        let dist = GraphExponential.output_distribution(&p, eps, s).unwrap();
        let pr = |c: CellId| dist.iter().find(|&&(d, _)| d == c).unwrap().1;
        // d_G(s, (1,1)) = 1 and d_G(s, (2,2)) = 2 in G1.
        let ratio = pr(p.grid().cell(1, 1)) / pr(p.grid().cell(2, 2));
        assert!((ratio - (eps / 2.0).exp()).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn isolated_cell_released_exactly() {
        let p = LocationPolicyGraph::isolated(grid());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(
                GraphExponential
                    .perturb(&p, 0.5, CellId(7), &mut rng)
                    .unwrap(),
                CellId(7)
            );
        }
    }

    #[test]
    fn samples_match_exact_distribution() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let s = CellId(0);
        let eps = 1.0;
        let exact = GraphExponential.output_distribution(&p, eps, s).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        const N: usize = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..N {
            let z = GraphExponential.perturb(&p, eps, s, &mut rng).unwrap();
            *counts.entry(z).or_insert(0usize) += 1;
        }
        for (c, pr) in exact {
            let emp = *counts.get(&c).unwrap_or(&0) as f64 / N as f64;
            assert!(
                (emp - pr).abs() < 0.01,
                "cell {c}: empirical {emp} vs exact {pr}"
            );
        }
    }

    #[test]
    fn samples_stay_in_component() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let z = GraphExponential
                .perturb(&p, 0.7, CellId(0), &mut rng)
                .unwrap();
            assert!(p.same_component(CellId(0), z));
        }
    }

    #[test]
    fn log_distribution_is_stable_for_tiny_eps_large_graph() {
        // Large component + small eps: probabilities are tiny but finite.
        let p = LocationPolicyGraph::g1_geo_indistinguishability(GridMap::new(20, 20, 10.0));
        let log_dist = GraphExponential
            .log_output_distribution(&p, 0.01, CellId(0))
            .unwrap();
        assert!(log_dist.iter().all(|&(_, l)| l.is_finite() && l < 0.0));
        // Log-probs must normalise.
        let total: f64 = log_dist.iter().map(|&(_, l)| l.exp()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_pglp_ratio_on_every_edge() {
        // The defining property, checked directly on a non-trivial policy.
        let mut rng = SmallRng::seed_from_u64(4);
        let p = LocationPolicyGraph::random(grid(), 10, 0.4, &mut rng);
        let eps = 1.2;
        for (a, b) in p.graph().edges().collect::<Vec<_>>() {
            let (sa, sb) = (CellId(a), CellId(b));
            let da = GraphExponential
                .log_output_distribution(&p, eps, sa)
                .unwrap();
            let db = GraphExponential
                .log_output_distribution(&p, eps, sb)
                .unwrap();
            assert_eq!(da.len(), db.len());
            for (&(ca, la), &(cb, lb)) in da.iter().zip(db.iter()) {
                assert_eq!(ca, cb);
                assert!(
                    (la - lb).abs() <= eps + 1e-9,
                    "edge ({a},{b}) output {ca}: log ratio {}",
                    la - lb
                );
            }
        }
    }
}
