//! Noise primitives, implemented from first principles.
//!
//! Privacy-critical sampling is kept in-repo (rather than delegated to
//! `rand_distr`) so the exact distributions are visible and testable:
//!
//! * [`laplace_1d`] — classic inverse-CDF Laplace noise.
//! * [`gamma_int`] — Gamma with integer shape as a sum of exponentials
//!   (exact). The planar Laplace radius is `Γ(2, 1/ε)`, the 2-D K-norm
//!   radius is `Γ(3, 1/ε)`.
//! * [`planar_laplace_noise`] — the polar-form planar Laplace vector of
//!   Geo-Indistinguishability (Andrés et al., CCS'13): density
//!   `∝ ε² e^{−ε‖z‖}`, sampled as radius `Γ(2, 1/ε)` times a uniform
//!   direction.

use panda_geo::{sample, Point};
use rand::Rng;

/// Samples standard Laplace noise with the given `scale` (mean 0):
/// density `1/(2b)·e^{−|x|/b}`.
pub fn laplace_1d<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0);
    // Inverse CDF on u ∈ (-1/2, 1/2): x = -b·sgn(u)·ln(1-2|u|).
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Samples an exponential with the given `scale` (mean = scale).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0);
    // 1 - U ∈ (0, 1] avoids ln(0).
    -scale * (1.0 - rng.gen::<f64>()).ln()
}

/// Samples `Γ(shape, scale)` for **integer** shape as a sum of `shape`
/// independent exponentials — exact, no rejection step.
pub fn gamma_int<R: Rng + ?Sized>(rng: &mut R, shape: u32, scale: f64) -> f64 {
    debug_assert!(shape > 0);
    (0..shape).map(|_| exponential(rng, scale)).sum()
}

/// Samples a planar Laplace noise vector with parameter `eps` (per length
/// unit): density `p(z) ∝ e^{−ε‖z‖₂}`.
///
/// Polar decomposition: the radius has density `∝ r·e^{−εr}` — that is
/// `Γ(2, 1/ε)` — and the angle is uniform.
pub fn planar_laplace_noise<R: Rng + ?Sized>(rng: &mut R, eps: f64) -> Point {
    debug_assert!(eps > 0.0);
    let r = gamma_int(rng, 2, 1.0 / eps);
    sample::uniform_direction(rng) * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_mean_and_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        const N: usize = 200_000;
        let b = 2.0;
        let (mut mean, mut mean_abs) = (0.0, 0.0);
        for _ in 0..N {
            let x = laplace_1d(&mut rng, b);
            mean += x / N as f64;
            mean_abs += x.abs() / N as f64;
        }
        assert!(mean.abs() < 0.03, "mean {mean}");
        // E|X| = b for Laplace(b).
        assert!((mean_abs - b).abs() < 0.03, "mean abs {mean_abs}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        const N: usize = 100_000;
        let mean: f64 = (0..N).map(|_| exponential(&mut rng, 3.0)).sum::<f64>() / N as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gamma_mean_and_variance() {
        // Γ(3, 2): mean 6, variance 12.
        let mut rng = SmallRng::seed_from_u64(3);
        const N: usize = 100_000;
        let samples: Vec<f64> = (0..N).map(|_| gamma_int(&mut rng, 3, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gamma_is_positive() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(gamma_int(&mut rng, 2, 0.5) > 0.0);
        }
    }

    #[test]
    fn planar_laplace_radius_mean() {
        // E‖z‖ = 2/ε for the planar Laplace.
        let mut rng = SmallRng::seed_from_u64(5);
        const N: usize = 100_000;
        let eps = 0.8;
        let mean_r: f64 = (0..N)
            .map(|_| planar_laplace_noise(&mut rng, eps).norm())
            .sum::<f64>()
            / N as f64;
        assert!((mean_r - 2.0 / eps).abs() < 0.03, "mean radius {mean_r}");
    }

    #[test]
    fn planar_laplace_is_isotropic() {
        let mut rng = SmallRng::seed_from_u64(6);
        const N: usize = 50_000;
        let mut mean = Point::ORIGIN;
        for _ in 0..N {
            mean += planar_laplace_noise(&mut rng, 1.0) / N as f64;
        }
        assert!(mean.norm() < 0.03, "mean {mean:?}");
    }
}
