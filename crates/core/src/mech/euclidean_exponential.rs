//! Euclidean-scored exponential mechanism over policy components.
//!
//! A hybrid between [`crate::mech::GraphExponential`] (hop-count scoring,
//! exact, but blind to geography inside a hop) and
//! [`crate::mech::GraphCalibratedLaplace`] (geographic noise, but only
//! Monte-Carlo auditable): release `z ∈ C(s)` with probability
//!
//! ```text
//! Pr[A(s) = z] ∝ exp( −ε · d_E(s, z) / (2·L) )
//! ```
//!
//! where `L` is the longest policy edge in the component (the same
//! calibration length as the graph-calibrated Laplace).
//!
//! **Privacy.** For a policy edge `(s, s′)`: `d_E(s, s′) ≤ L`, and by the
//! triangle inequality `|d_E(s, z) − d_E(s′, z)| ≤ d_E(s, s′) ≤ L`, so the
//! unnormalised weights differ by ≤ `e^{ε/2}` and the normalisers by
//! ≤ `e^{ε/2}`: the `e^ε` bound of Def. 2.4 holds exactly. Like GEM, the
//! output distribution is closed-form, so the exact auditor covers it.
//!
//! Compared to GEM it prefers geographically-near cells even when the
//! policy graph makes them several hops away (e.g. sparse random policies
//! whose edges zig-zag), which is usually what utility metrics reward.

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::{validate, Mechanism};
use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use rand::Rng;
use rand::RngCore;

/// Euclidean-scored exponential mechanism. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanExponential;

impl EuclideanExponential {
    /// Longest policy edge in the component of `s` (the score scale `L`),
    /// or `None` when `s` is isolated.
    fn calibration_length(policy: &LocationPolicyGraph, s: CellId) -> Option<f64> {
        crate::mech::GraphCalibratedLaplace::calibration_length(policy, s)
    }

    fn weights(
        policy: &LocationPolicyGraph,
        eps: f64,
        s: CellId,
    ) -> Option<(Vec<CellId>, Vec<f64>)> {
        Self::weights_with_len(policy, eps, s, Self::calibration_length(policy, s)?)
    }

    fn weights_with_len(
        policy: &LocationPolicyGraph,
        eps: f64,
        s: CellId,
        len: f64,
    ) -> Option<(Vec<CellId>, Vec<f64>)> {
        let grid = policy.grid();
        let cells = policy.component_slice(s);
        let center = grid.center(s);
        let weights = cells
            .iter()
            .map(|&c| (-eps * grid.center(c).distance(center) / (2.0 * len)).exp())
            .collect();
        Some((cells.to_vec(), weights))
    }

    /// The cached sampling table for `(ε, s)` via the index's LRU.
    fn table(
        &self,
        index: &PolicyIndex,
        eps: f64,
        s: CellId,
        len: f64,
    ) -> std::sync::Arc<crate::SamplingTable> {
        index.distribution(self.name(), eps, s, |p| {
            let (cells, weights) = Self::weights_with_len(p, eps, s, len).expect("non-isolated");
            cells.into_iter().zip(weights).collect()
        })
    }
}

impl Mechanism for EuclideanExponential {
    fn name(&self) -> &'static str {
        "euclidean-exponential"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let Some((cells, weights)) = Self::weights(policy, eps, true_loc) else {
            return Ok(true_loc); // isolated: exact release
        };
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (cell, w) in cells.iter().zip(weights.iter()) {
            if u < *w {
                return Ok(*cell);
            }
            u -= w;
        }
        Ok(*cells.last().expect("component is never empty"))
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        validate(policy, eps, true_loc).ok()?;
        match Self::weights(policy, eps, true_loc) {
            None => Some(vec![(true_loc, 1.0)]),
            Some((cells, weights)) => {
                let total: f64 = weights.iter().sum();
                Some(
                    cells
                        .into_iter()
                        .zip(weights)
                        .map(|(c, w)| (c, w / total))
                        .collect(),
                )
            }
        }
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<crate::mech::CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        match index.calibration_length(cell) {
            None => Ok(crate::mech::CellSampler::exact(cell)), // isolated
            Some(len) => Ok(crate::mech::CellSampler::table(
                self.table(index, eps, cell, len),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::audit_pglp;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(5, 5, 100.0)
    }

    #[test]
    fn passes_exact_audit_on_presets() {
        for eps in [0.5, 1.0, 3.0] {
            for policy in [
                LocationPolicyGraph::g1_geo_indistinguishability(grid()),
                LocationPolicyGraph::partition(grid(), 2, 2),
                LocationPolicyGraph::complete(grid()),
            ] {
                let report = audit_pglp(&EuclideanExponential, &policy, eps).unwrap();
                assert!(report.exact);
                assert!(report.satisfied, "{}: {report:?}", policy.name());
            }
        }
    }

    #[test]
    fn passes_exact_audit_on_random_policies() {
        let mut rng = SmallRng::seed_from_u64(1);
        for seed in 0..6 {
            let policy = LocationPolicyGraph::random(grid(), 12, 0.3 + 0.1 * seed as f64, &mut rng);
            let report = audit_pglp(&EuclideanExponential, &policy, 1.0).unwrap();
            assert!(report.satisfied, "{}: {report:?}", policy.name());
        }
    }

    #[test]
    fn distribution_normalises_and_peaks_at_truth() {
        let policy = LocationPolicyGraph::complete(grid());
        let s = CellId(12);
        let dist = EuclideanExponential
            .output_distribution(&policy, 2.0, s)
            .unwrap();
        let total: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let (mode, _) = dist
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(mode, s);
    }

    #[test]
    fn prefers_geographically_close_cells() {
        // On a complete policy, GEM is uniform over non-truth cells (all
        // 1 hop) while the Euclidean scoring still ranks by distance.
        let policy = LocationPolicyGraph::complete(grid());
        let g = policy.grid().clone();
        let s = g.cell(0, 0);
        let dist = EuclideanExponential
            .output_distribution(&policy, 2.0, s)
            .unwrap();
        let pr = |c: CellId| dist.iter().find(|&&(d, _)| d == c).unwrap().1;
        assert!(pr(g.cell(1, 0)) > pr(g.cell(4, 4)));
        let gem = crate::mech::GraphExponential
            .output_distribution(&policy, 2.0, s)
            .unwrap();
        let gpr = |c: CellId| gem.iter().find(|&&(d, _)| d == c).unwrap().1;
        assert!((gpr(g.cell(1, 0)) - gpr(g.cell(4, 4))).abs() < 1e-12);
    }

    #[test]
    fn isolated_cells_exact_and_samples_match_distribution() {
        let policy = LocationPolicyGraph::isolated(grid());
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(
            EuclideanExponential
                .perturb(&policy, 1.0, CellId(3), &mut rng)
                .unwrap(),
            CellId(3)
        );
        let policy = LocationPolicyGraph::partition(grid(), 2, 2);
        let exact = EuclideanExponential
            .output_distribution(&policy, 1.0, CellId(0))
            .unwrap();
        let mut counts = std::collections::HashMap::new();
        const N: usize = 60_000;
        for _ in 0..N {
            let z = EuclideanExponential
                .perturb(&policy, 1.0, CellId(0), &mut rng)
                .unwrap();
            *counts.entry(z).or_insert(0usize) += 1;
        }
        for (c, p) in exact {
            let emp = *counts.get(&c).unwrap_or(&0) as f64 / N as f64;
            assert!((emp - p).abs() < 0.01, "{c}: {emp} vs {p}");
        }
    }
}
